//! The profiler: an implementation of [`ProfSink`] that builds per-rank,
//! per-section, per-call ledgers, mirroring what the IPM monitoring
//! framework collects on real runs (hash of MPI calls by size bucket,
//! per-region wallclock, communication and compute split).

use sim_des::SimTime;
use sim_mpi::{JobMeta, MpiKind, ProfEvent, ProfSink, SectionId};
use std::collections::HashMap;

/// Aggregate for one (MPI call, size bucket) cell — IPM's call hash.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CallAgg {
    pub count: u64,
    pub time: f64,
    pub bytes: u64,
}

/// Accumulated time ledger for one rank within one region.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    /// Region wallclock (sum of enter→exit intervals).
    pub wall: f64,
    pub comp: f64,
    pub comm: f64,
    pub io: f64,
    /// Time lost to faults: crash stalls (with retries) and kill-to-relaunch
    /// restart gaps. This is IPM's FAULT/RESTART accounting; zero on
    /// fault-free runs.
    pub fault: f64,
    /// Time inside ABFT verification cuts (barrier + checksum pass). An
    /// *overlay*: the same span is already split into `comm`/`comp` by the
    /// underlying events, so `verify` is not added to the conservation sum.
    pub verify: f64,
    /// Time inside shrink-and-spare recoveries. Overlays `fault` (the
    /// same gap arrives as a restart event), split out so reports can tell
    /// communicator repairs from full relaunches.
    pub shrink: f64,
    /// Silent corruptions adjudicated as detected in this region.
    pub sdc_detected: u64,
    /// Silent corruptions that escaped detection in this region.
    pub sdc_undetected: u64,
    /// MPI call hash: (call, log2-size bucket) → aggregate.
    pub calls: HashMap<(MpiKind, u8), CallAgg>,
}

impl Ledger {
    fn add_mpi(&mut self, kind: MpiKind, bytes: u64, secs: f64) {
        self.comm += secs;
        let bucket = size_bucket(bytes);
        let agg = self.calls.entry((kind, bucket)).or_default();
        agg.count += 1;
        agg.time += secs;
        agg.bytes += bytes;
    }
}

/// log2 size bucket of a payload (0 for empty, else floor(log2(bytes)) + 1).
pub fn size_bucket(bytes: u64) -> u8 {
    if bytes == 0 {
        0
    } else {
        (64 - bytes.leading_zeros()) as u8
    }
}

/// Lower bound in bytes of a bucket returned by [`size_bucket`].
pub fn bucket_floor(bucket: u8) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

#[derive(Debug, Clone)]
struct RankProf {
    stack: Vec<(SectionId, SimTime)>,
    global: Ledger,
    sections: Vec<Ledger>,
    last_event: SimTime,
}

/// IPM-style profiler; feed it to [`sim_mpi::run_job`], then call
/// [`crate::report::IpmReport::from_profiler`].
#[derive(Debug, Clone)]
pub struct IpmProfiler {
    pub(crate) section_names: Vec<&'static str>,
    pub(crate) ranks: Vec<RankProfPublic>,
}

/// Public view of one rank's profile.
#[derive(Debug, Clone)]
pub struct RankProfPublic {
    pub global: Ledger,
    pub sections: Vec<Ledger>,
    pub last_event: SimTime,
}

/// Builder state while the simulation runs.
#[derive(Debug)]
pub struct IpmCollector {
    section_names: Vec<&'static str>,
    ranks: Vec<RankProf>,
}

impl IpmCollector {
    /// Prepare a collector for a job. Only the metadata is needed — the
    /// profiler never looks at the op streams, so streamed jobs profile
    /// without materializing anything.
    pub fn new(meta: &JobMeta) -> Self {
        let nsec = meta.section_names.len();
        IpmCollector {
            section_names: meta.section_names.clone(),
            ranks: (0..meta.np)
                .map(|_| RankProf {
                    stack: Vec::new(),
                    global: Ledger::default(),
                    sections: vec![Ledger::default(); nsec],
                    last_event: SimTime::ZERO,
                })
                .collect(),
        }
    }

    /// Consume the collector once the run finishes.
    pub fn finish(self) -> IpmProfiler {
        IpmProfiler {
            section_names: self.section_names,
            ranks: self
                .ranks
                .into_iter()
                .map(|r| {
                    assert!(
                        r.stack.is_empty(),
                        "unbalanced sections left open at end of run"
                    );
                    RankProfPublic {
                        global: r.global,
                        sections: r.sections,
                        last_event: r.last_event,
                    }
                })
                .collect(),
        }
    }

    fn attribute(&mut self, rank: usize, f: impl Fn(&mut Ledger)) {
        let rp = &mut self.ranks[rank];
        f(&mut rp.global);
        if let Some((sec, _)) = rp.stack.last() {
            f(&mut rp.sections[*sec as usize]);
        }
    }
}

impl ProfSink for IpmCollector {
    fn on_event(&mut self, rank: usize, ev: ProfEvent) {
        match ev {
            ProfEvent::SectionEnter { id, t } => {
                self.ranks[rank].stack.push((id, t));
                self.ranks[rank].last_event = t;
            }
            ProfEvent::SectionExit { id, t } => {
                let (open_id, entered) = self.ranks[rank]
                    .stack
                    .pop()
                    .expect("section exit without enter");
                assert_eq!(open_id, id, "mismatched section nesting");
                self.ranks[rank].sections[id as usize].wall += t.since(entered).as_secs_f64();
                self.ranks[rank].last_event = t;
            }
            ProfEvent::Compute { start, end } => {
                let d = end.since(start).as_secs_f64();
                self.attribute(rank, |l| l.comp += d);
                let rp = &mut self.ranks[rank];
                rp.global.wall = end.since(SimTime::ZERO).as_secs_f64();
                rp.last_event = end;
            }
            ProfEvent::Mpi {
                kind,
                bytes,
                start,
                end,
            } => {
                let d = end.since(start).as_secs_f64();
                self.attribute(rank, |l| l.add_mpi(kind, bytes, d));
                let rp = &mut self.ranks[rank];
                rp.global.wall = end.since(SimTime::ZERO).as_secs_f64();
                rp.last_event = end;
            }
            ProfEvent::Io {
                bytes: _,
                kind: _,
                start,
                end,
            } => {
                let d = end.since(start).as_secs_f64();
                self.attribute(rank, |l| l.io += d);
                let rp = &mut self.ranks[rank];
                rp.global.wall = end.since(SimTime::ZERO).as_secs_f64();
                rp.last_event = end;
            }
            ProfEvent::Fault { start, end } => {
                // A transient stall charges the open section like any other
                // timed activity — the section was live while the node hung.
                let d = end.since(start).as_secs_f64();
                self.attribute(rank, |l| l.fault += d);
                let rp = &mut self.ranks[rank];
                rp.global.wall = end.since(SimTime::ZERO).as_secs_f64();
                rp.last_event = end;
            }
            ProfEvent::Restart { start, end } => {
                // The job died: whatever sections were open were aborted,
                // never exited. Their partial wallclock is dropped (the rank
                // will re-enter them as it replays) and the kill-to-relaunch
                // gap lands in the global FAULT/RESTART ledger only.
                let d = end.since(start).as_secs_f64();
                let rp = &mut self.ranks[rank];
                rp.stack.clear();
                rp.global.fault += d;
                rp.global.wall = end.since(SimTime::ZERO).as_secs_f64();
                rp.last_event = end;
            }
            ProfEvent::Verify { start, end } => {
                // Overlay: the span's time already arrived as barrier +
                // compute events, so only the verify column moves.
                let d = end.since(start).as_secs_f64();
                self.attribute(rank, |l| l.verify += d);
            }
            ProfEvent::Shrink { start, end } => {
                // Overlay of the restart event carrying the same gap (which
                // already cleared the stack): global column only.
                let d = end.since(start).as_secs_f64();
                self.ranks[rank].global.shrink += d;
            }
            ProfEvent::Sdc { t: _, detected } => {
                self.attribute(rank, |l| {
                    if detected {
                        l.sdc_detected += 1;
                    } else {
                        l.sdc_undetected += 1;
                    }
                });
            }
        }
    }
}

impl IpmProfiler {
    pub fn np(&self) -> usize {
        self.ranks.len()
    }

    pub fn section_names(&self) -> &[&'static str] {
        &self.section_names
    }

    /// Per-rank global ledgers.
    pub fn rank_globals(&self) -> impl Iterator<Item = &Ledger> {
        self.ranks.iter().map(|r| &r.global)
    }

    /// Per-rank ledger of one section.
    pub fn rank_sections(&self, sec: SectionId) -> impl Iterator<Item = &Ledger> {
        self.ranks.iter().map(move |r| &r.sections[sec as usize])
    }

    /// Find a section id by name.
    pub fn section_id(&self, name: &str) -> Option<SectionId> {
        self.section_names
            .iter()
            .position(|n| *n == name)
            .map(|i| i as SectionId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_buckets() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(1), 1);
        assert_eq!(size_bucket(2), 2);
        assert_eq!(size_bucket(3), 2);
        assert_eq!(size_bucket(4), 3);
        assert_eq!(size_bucket(1024), 11);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(11), 1024);
        // floor(bucket(x)) <= x for a spread of sizes.
        for x in [1u64, 5, 100, 4096, 1 << 20] {
            assert!(bucket_floor(size_bucket(x)) <= x);
            assert!(x < bucket_floor(size_bucket(x)) * 2);
        }
    }

    #[test]
    fn events_attribute_to_open_section() {
        let meta = JobMeta {
            name: "t".into(),
            np: 1,
            section_names: vec!["a", "b"],
        };
        let mut c = IpmCollector::new(&meta);
        c.on_event(
            0,
            ProfEvent::SectionEnter {
                id: 0,
                t: SimTime(0),
            },
        );
        c.on_event(
            0,
            ProfEvent::Compute {
                start: SimTime(0),
                end: SimTime(1_000_000_000),
            },
        );
        c.on_event(
            0,
            ProfEvent::SectionExit {
                id: 0,
                t: SimTime(1_000_000_000),
            },
        );
        c.on_event(
            0,
            ProfEvent::Mpi {
                kind: MpiKind::Allreduce,
                bytes: 4,
                start: SimTime(1_000_000_000),
                end: SimTime(2_000_000_000),
            },
        );
        let p = c.finish();
        let sec_a = &p.ranks[0].sections[0];
        assert!((sec_a.comp - 1.0).abs() < 1e-9);
        assert!((sec_a.wall - 1.0).abs() < 1e-9);
        assert_eq!(sec_a.comm, 0.0);
        // The allreduce happened outside any section: global only.
        assert!((p.ranks[0].global.comm - 1.0).abs() < 1e-9);
        let agg = p.ranks[0].global.calls[&(MpiKind::Allreduce, size_bucket(4))];
        assert_eq!(agg.count, 1);
    }

    #[test]
    fn overlay_events_move_only_their_own_columns() {
        let meta = JobMeta {
            name: "t".into(),
            np: 1,
            section_names: vec!["solve"],
        };
        let mut c = IpmCollector::new(&meta);
        c.on_event(
            0,
            ProfEvent::SectionEnter {
                id: 0,
                t: SimTime(0),
            },
        );
        c.on_event(
            0,
            ProfEvent::Verify {
                start: SimTime(0),
                end: SimTime(500_000_000),
            },
        );
        c.on_event(
            0,
            ProfEvent::Sdc {
                t: SimTime(250_000_000),
                detected: true,
            },
        );
        c.on_event(
            0,
            ProfEvent::SectionExit {
                id: 0,
                t: SimTime(500_000_000),
            },
        );
        c.on_event(
            0,
            ProfEvent::Sdc {
                t: SimTime(600_000_000),
                detected: false,
            },
        );
        c.on_event(
            0,
            ProfEvent::Shrink {
                start: SimTime(600_000_000),
                end: SimTime(700_000_000),
            },
        );
        let p = c.finish();
        let g = &p.ranks[0].global;
        // Overlays: comm/comp/fault untouched.
        assert_eq!(g.comm, 0.0);
        assert_eq!(g.comp, 0.0);
        assert_eq!(g.fault, 0.0);
        assert!((g.verify - 0.5).abs() < 1e-9);
        assert!((g.shrink - 0.1).abs() < 1e-9);
        assert_eq!(g.sdc_detected, 1);
        assert_eq!(g.sdc_undetected, 1);
        // In-section events attributed to the open section too.
        let s = &p.ranks[0].sections[0];
        assert!((s.verify - 0.5).abs() < 1e-9);
        assert_eq!(s.sdc_detected, 1);
        assert_eq!(s.sdc_undetected, 0);
    }

    #[test]
    #[should_panic(expected = "unbalanced sections")]
    fn unbalanced_sections_panic_at_finish() {
        let meta = JobMeta {
            name: "t".into(),
            np: 1,
            section_names: vec!["a"],
        };
        let mut c = IpmCollector::new(&meta);
        c.on_event(
            0,
            ProfEvent::SectionEnter {
                id: 0,
                t: SimTime(0),
            },
        );
        let _ = c.finish();
    }
}
