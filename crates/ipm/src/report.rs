//! IPM-style reports: cross-rank aggregation and the text banner.

use crate::profiler::{bucket_floor, CallAgg, IpmProfiler};
use sim_des::Summary;
use sim_mpi::MpiKind;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Cross-rank statistics for one region (a named section or the whole run).
#[derive(Debug, Clone)]
pub struct SectionReport {
    pub name: String,
    /// Per-rank wallclock of the region.
    pub wall: Summary,
    /// Per-rank compute time.
    pub comp: Summary,
    /// Per-rank MPI time.
    pub comm: Summary,
    /// Per-rank I/O time.
    pub io: Summary,
    /// Per-rank fault/recovery time (crash stalls and restart gaps);
    /// all-zero on fault-free runs.
    pub fault: Summary,
    /// Per-rank time inside ABFT verification cuts. An overlay of
    /// comm/comp — not added to the conservation sum.
    pub verify: Summary,
    /// Per-rank time inside shrink-and-spare recoveries (overlay of fault).
    pub shrink: Summary,
    /// Silent corruptions adjudicated as detected, summed over ranks.
    pub sdc_detected: u64,
    /// Silent corruptions that escaped detection, summed over ranks.
    pub sdc_undetected: u64,
    /// MPI call table, sorted by time descending.
    pub calls: Vec<CallRow>,
}

/// One row of the MPI call table.
#[derive(Debug, Clone, PartialEq)]
pub struct CallRow {
    pub call: MpiKind,
    /// Lower bound of the log2 size bucket, bytes.
    pub bucket_bytes: u64,
    pub count: u64,
    pub time: f64,
}

impl SectionReport {
    /// Percentage of region wallclock spent in MPI, averaged over ranks —
    /// the "%comm" the paper's Table II and Table III report.
    pub fn comm_pct(&self) -> f64 {
        let wall = self.wall.mean * self.wall.n as f64;
        if wall <= 0.0 {
            0.0
        } else {
            100.0 * self.comm.mean * self.comm.n as f64 / wall
        }
    }

    /// Percentage of region wallclock spent in I/O, averaged over ranks.
    pub fn io_pct(&self) -> f64 {
        let wall = self.wall.mean * self.wall.n as f64;
        if wall <= 0.0 {
            0.0
        } else {
            100.0 * self.io.mean * self.io.n as f64 / wall
        }
    }

    /// Percentage of region wallclock lost to faults and restarts.
    pub fn fault_pct(&self) -> f64 {
        let wall = self.wall.mean * self.wall.n as f64;
        if wall <= 0.0 {
            0.0
        } else {
            100.0 * self.fault.mean * self.fault.n as f64 / wall
        }
    }

    /// Percentage of region wallclock spent in ABFT verification cuts.
    pub fn verify_pct(&self) -> f64 {
        let wall = self.wall.mean * self.wall.n as f64;
        if wall <= 0.0 {
            0.0
        } else {
            100.0 * self.verify.mean * self.verify.n as f64 / wall
        }
    }

    /// Load imbalance of the region's compute time, IPM-style:
    /// `(max - mean) / max` of per-rank compute, in percent.
    pub fn imbalance_pct(&self) -> f64 {
        self.comp.imbalance_pct()
    }

    /// Fraction of MPI time spent in collective calls.
    pub fn collective_frac(&self) -> f64 {
        let total: f64 = self.calls.iter().map(|c| c.time).sum();
        if total <= 0.0 {
            return 0.0;
        }
        let coll: f64 = self
            .calls
            .iter()
            .filter(|c| c.call.is_collective())
            .map(|c| c.time)
            .sum();
        coll / total
    }
}

/// A full report for one run.
#[derive(Debug, Clone)]
pub struct IpmReport {
    pub job: String,
    pub cluster: String,
    pub np: usize,
    /// Job wallclock (max rank).
    pub elapsed: f64,
    /// Whole-run statistics.
    pub global: SectionReport,
    /// Named-section statistics, in section-table order.
    pub sections: Vec<SectionReport>,
    /// Per-rank (compute, comm) pairs for the whole run — the data behind
    /// the paper's Figure 7 load-balance plots.
    pub rank_breakdown: Vec<(f64, f64)>,
    /// Per-section per-rank (compute, comm) pairs.
    pub section_rank_breakdown: Vec<Vec<(f64, f64)>>,
}

impl IpmReport {
    /// Build a report from a finished profiler.
    pub fn from_profiler(job: &str, cluster: &str, elapsed: f64, p: &IpmProfiler) -> IpmReport {
        let np = p.np();
        let global = section_report("<global>", p.rank_globals().collect::<Vec<_>>());
        let sections = p
            .section_names()
            .iter()
            .enumerate()
            .map(|(i, name)| section_report(name, p.rank_sections(i as u16).collect::<Vec<_>>()))
            .collect();
        let rank_breakdown = p.rank_globals().map(|l| (l.comp, l.comm)).collect();
        let section_rank_breakdown = (0..p.section_names().len())
            .map(|i| {
                p.rank_sections(i as u16)
                    .map(|l| (l.comp, l.comm))
                    .collect()
            })
            .collect();
        IpmReport {
            job: job.to_string(),
            cluster: cluster.to_string(),
            np,
            elapsed,
            global,
            sections,
            rank_breakdown,
            section_rank_breakdown,
        }
    }

    /// Find a named section.
    pub fn section(&self, name: &str) -> Option<&SectionReport> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// IPM-like text banner.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "##IPM-sim{}", "#".repeat(64));
        let _ = writeln!(out, "# command   : {}", self.job);
        let _ = writeln!(
            out,
            "# host      : {:<12} mpi_tasks : {}",
            self.cluster, self.np
        );
        let _ = writeln!(
            out,
            "# wallclock : {:<12.4} %comm     : {:.2}",
            self.elapsed,
            self.global.comm_pct()
        );
        let _ = writeln!(
            out,
            "# %comp-imbal : {:<9.2} collectives: {:.1}% of MPI",
            self.global.imbalance_pct(),
            100.0 * self.global.collective_frac()
        );
        if self.global.fault.max > 0.0 {
            let _ = writeln!(
                out,
                "# FAULT/RESTART : {:.4}s mean/rank ({:.2}% of wallclock)",
                self.global.fault.mean,
                self.global.fault_pct()
            );
        }
        if self.global.shrink.max > 0.0 {
            let _ = writeln!(
                out,
                "# SHRINK/SPARE  : {:.4}s mean/rank (communicator repairs, no relaunch)",
                self.global.shrink.mean
            );
        }
        if self.global.verify.max > 0.0 {
            let _ = writeln!(
                out,
                "# VERIFY (ABFT) : {:.4}s mean/rank ({:.2}% of wallclock)",
                self.global.verify.mean,
                self.global.verify_pct()
            );
        }
        if self.global.sdc_detected + self.global.sdc_undetected > 0 {
            let _ = writeln!(
                out,
                "# SDC           : {} detected, {} undetected",
                self.global.sdc_detected, self.global.sdc_undetected
            );
        }
        let _ = writeln!(out, "#");
        let _ = writeln!(
            out,
            "# region               wall(mean)   comp      comm      io     %comm  %imbal"
        );
        let mut rows: Vec<&SectionReport> = Vec::with_capacity(1 + self.sections.len());
        rows.push(&self.global);
        rows.extend(self.sections.iter());
        for s in rows {
            let _ = writeln!(
                out,
                "# {:<20} {:>9.4} {:>9.4} {:>9.4} {:>7.4} {:>6.1} {:>7.1}",
                s.name,
                s.wall.mean,
                s.comp.mean,
                s.comm.mean,
                s.io.mean,
                s.comm_pct(),
                s.imbalance_pct()
            );
        }
        let _ = writeln!(out, "#");
        let _ = writeln!(
            out,
            "# MPI call           bucket(B)      count      time(s)"
        );
        for c in self.global.calls.iter().take(16) {
            let _ = writeln!(
                out,
                "# {:<18} {:>9} {:>10} {:>12.4}",
                c.call.name(),
                c.bucket_bytes,
                c.count,
                c.time
            );
        }
        let _ = writeln!(out, "{}", "#".repeat(72));
        out
    }
}

fn section_report(name: &str, ledgers: Vec<&crate::profiler::Ledger>) -> SectionReport {
    let walls: Vec<f64> = ledgers.iter().map(|l| l.wall).collect();
    let comps: Vec<f64> = ledgers.iter().map(|l| l.comp).collect();
    let comms: Vec<f64> = ledgers.iter().map(|l| l.comm).collect();
    let ios: Vec<f64> = ledgers.iter().map(|l| l.io).collect();
    let faults: Vec<f64> = ledgers.iter().map(|l| l.fault).collect();
    let verifies: Vec<f64> = ledgers.iter().map(|l| l.verify).collect();
    let shrinks: Vec<f64> = ledgers.iter().map(|l| l.shrink).collect();
    let sdc_detected: u64 = ledgers.iter().map(|l| l.sdc_detected).sum();
    let sdc_undetected: u64 = ledgers.iter().map(|l| l.sdc_undetected).sum();
    let mut merged: HashMap<(MpiKind, u8), CallAgg> = HashMap::new();
    for l in &ledgers {
        for (k, v) in &l.calls {
            let e = merged.entry(*k).or_default();
            e.count += v.count;
            e.time += v.time;
            e.bytes += v.bytes;
        }
    }
    let mut calls: Vec<CallRow> = merged
        .into_iter()
        .map(|((call, bucket), agg)| CallRow {
            call,
            bucket_bytes: bucket_floor(bucket),
            count: agg.count,
            time: agg.time,
        })
        .collect();
    calls.sort_by(|a, b| b.time.partial_cmp(&a.time).expect("finite times"));
    SectionReport {
        name: name.to_string(),
        wall: Summary::of(&walls).expect("at least one rank"),
        comp: Summary::of(&comps).expect("at least one rank"),
        comm: Summary::of(&comms).expect("at least one rank"),
        io: Summary::of(&ios).expect("at least one rank"),
        fault: Summary::of(&faults).expect("at least one rank"),
        verify: Summary::of(&verifies).expect("at least one rank"),
        shrink: Summary::of(&shrinks).expect("at least one rank"),
        sdc_detected,
        sdc_undetected,
        calls,
    }
}

/// Run a job with IPM profiling attached: convenience wrapper returning both
/// the engine result and the report. The job is rewound by the engine, so
/// the same `JobSpec` can be profiled repeatedly (e.g. across repeats).
pub fn profile_run(
    job: &mut sim_mpi::JobSpec,
    cluster: &sim_platform::ClusterSpec,
    cfg: &sim_mpi::SimConfig,
) -> Result<(sim_mpi::SimResult, IpmReport), sim_mpi::SimError> {
    let mut collector = crate::profiler::IpmCollector::new(&job.meta);
    let result = sim_mpi::run_job(job, cluster, cfg, &mut collector)?;
    let profiler = collector.finish();
    let report = IpmReport::from_profiler(
        &result.job,
        result.cluster,
        result.elapsed_secs(),
        &profiler,
    );
    Ok((result, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mpi::{CollOp, JobSpec, Op, SimConfig};
    use sim_platform::presets;

    fn demo_job(np: usize) -> JobSpec {
        let programs = (0..np)
            .map(|_| {
                vec![
                    Op::SectionEnter(0),
                    Op::Compute {
                        flops: 1e8,
                        bytes: 0.0,
                    },
                    Op::Coll(CollOp::Allreduce { bytes: 4 }),
                    Op::SectionExit(0),
                    Op::SectionEnter(1),
                    Op::Compute {
                        flops: 5e7,
                        bytes: 0.0,
                    },
                    Op::SectionExit(1),
                ]
            })
            .collect();
        JobSpec::from_programs("demo", programs, vec!["solve", "post"])
    }

    #[test]
    fn profile_run_builds_consistent_report() {
        let (res, rep) =
            profile_run(&mut demo_job(16), &presets::vayu(), &SimConfig::default()).unwrap();
        assert_eq!(rep.np, 16);
        assert!((rep.elapsed - res.elapsed_secs()).abs() < 1e-12);
        // Section accounting: solve contains all the comm.
        let solve = rep.section("solve").unwrap();
        let post = rep.section("post").unwrap();
        assert!(solve.comm.mean > 0.0);
        assert_eq!(post.comm.mean, 0.0);
        // Global = sum of both sections here (no out-of-section work).
        let total = solve.comp.mean + post.comp.mean;
        assert!((rep.global.comp.mean - total).abs() < 1e-9);
    }

    #[test]
    fn call_table_contains_the_allreduce() {
        let (_, rep) =
            profile_run(&mut demo_job(8), &presets::dcc(), &SimConfig::default()).unwrap();
        let row = rep
            .global
            .calls
            .iter()
            .find(|c| c.call == MpiKind::Allreduce)
            .expect("allreduce row");
        assert_eq!(row.count, 8); // one per rank
        assert_eq!(row.bucket_bytes, 4);
    }

    #[test]
    fn comm_pct_between_0_and_100() {
        let (_, rep) =
            profile_run(&mut demo_job(32), &presets::dcc(), &SimConfig::default()).unwrap();
        let pct = rep.global.comm_pct();
        assert!((0.0..=100.0).contains(&pct), "{pct}");
        assert!(pct > 0.0);
    }

    #[test]
    fn text_banner_mentions_everything() {
        let (_, rep) =
            profile_run(&mut demo_job(8), &presets::ec2(), &SimConfig::default()).unwrap();
        let text = rep.to_text();
        assert!(text.contains("mpi_tasks : 8"));
        assert!(text.contains("solve"));
        assert!(text.contains("MPI_Allreduce"));
        assert!(text.contains("ec2"));
    }

    #[test]
    fn verify_cuts_show_in_report_as_overlay() {
        let programs = (0..8)
            .map(|_| {
                vec![
                    Op::Compute {
                        flops: 1e8,
                        bytes: 0.0,
                    },
                    Op::Coll(CollOp::Allreduce { bytes: 8 }),
                    Op::Verify {
                        flops: 1e7,
                        state_bytes: 1 << 20,
                    },
                ]
            })
            .collect();
        let mut job = JobSpec::from_programs("abft-demo", programs, vec![]);
        let (res, rep) = profile_run(&mut job, &presets::vayu(), &SimConfig::default()).unwrap();
        assert!(rep.global.verify.max > 0.0);
        // Overlay: the verify span is already split into comm/comp, so the
        // conservation sum covers the whole run without a verify term.
        let r0 = &res.ranks[0];
        assert_eq!(r0.other(), sim_des::SimDur::ZERO);
        let text = rep.to_text();
        assert!(text.contains("VERIFY (ABFT)"), "{text}");
        assert!(!text.contains("SDC"), "fault-free run: {text}");
        assert!(!text.contains("SHRINK/SPARE"), "{text}");
    }

    #[test]
    fn collective_fraction_is_one_for_collective_only_job() {
        let (_, rep) =
            profile_run(&mut demo_job(8), &presets::vayu(), &SimConfig::default()).unwrap();
        assert!((rep.global.collective_frac() - 1.0).abs() < 1e-12);
    }
}
