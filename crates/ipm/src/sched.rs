//! Scheduler-level attribution report: what each job's turnaround was
//! spent on — queue wait, useful runtime, contention inflation, work lost
//! to preemptions. The scheduler crate (`sim-sched`) builds these; this
//! module is pure data + formatting, mirroring [`crate::IpmReport`]'s
//! banner style so batch reports and per-run reports read alike.

use std::fmt::Write as _;

/// Attribution for one scheduled job.
#[derive(Debug, Clone)]
pub struct SchedJobRow {
    pub id: usize,
    pub name: String,
    /// Job class for attribution: "batch", "resv" (advance reservation),
    /// "mold" (moldable), "dep" (dependency-gated), "p<N>" (project-billed),
    /// or "home"/"cloud" for multi-site rows.
    pub kind: String,
    pub nodes: usize,
    /// Seconds between submission and (final) start.
    pub wait: f64,
    /// Actual elapsed seconds of the completed run.
    pub runtime: f64,
    /// Seconds of the run added by link contention.
    pub contention_inflation: f64,
    /// Nominal seconds of completed work destroyed by preemptions.
    pub preempt_loss: f64,
    pub completed: bool,
}

/// One scheduler-visible fault event, for the resilience attribution
/// section: a node crash killing a job (KILL), a killed job re-entering
/// the queue after backoff (REQUEUE), a fail-slow node drained under its
/// running job (DRAIN), or a crashed node returning to service (REPAIR).
#[derive(Debug, Clone)]
pub struct SchedEventRow {
    /// Simulation time of the event, seconds.
    pub t: f64,
    /// "KILL", "REQUEUE", "DRAIN" or "REPAIR".
    pub action: String,
    pub node: usize,
    /// Affected job id, when the action has one (REPAIR does not).
    pub job: Option<usize>,
}

/// A batch-level report over one site's (or one multi-site run's) jobs.
#[derive(Debug, Clone)]
pub struct SchedReport {
    pub site: String,
    pub rows: Vec<SchedJobRow>,
    /// Fault timeline (KILL/REQUEUE/DRAIN/REPAIR), in event order. Empty
    /// for fault-free runs — and the banner then omits the section, so
    /// zero-fault report text is byte-identical to the pre-fault format.
    pub events: Vec<SchedEventRow>,
}

impl SchedReport {
    pub fn mean_wait(&self) -> f64 {
        let n = self.rows.len().max(1) as f64;
        self.rows.iter().map(|r| r.wait).sum::<f64>() / n
    }

    pub fn total_inflation(&self) -> f64 {
        self.rows.iter().map(|r| r.contention_inflation).sum()
    }

    pub fn total_preempt_loss(&self) -> f64 {
        self.rows.iter().map(|r| r.preempt_loss).sum()
    }

    /// IPM-like text banner: one row per job, then the batch totals.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "##IPM-sched{}", "#".repeat(61));
        let _ = writeln!(out, "# site      : {}", self.site);
        let _ = writeln!(out, "# jobs      : {}", self.rows.len());
        let _ = writeln!(
            out,
            "# mean wait : {:.2} s   contention loss: {:.2} s   preempt loss: {:.2} s",
            self.mean_wait(),
            self.total_inflation(),
            self.total_preempt_loss()
        );
        let _ = writeln!(out, "#");
        let _ = writeln!(
            out,
            "# {:>5} {:<18} {:<6} {:>5} {:>12} {:>12} {:>12} {:>12}  state",
            "job", "name", "class", "nodes", "wait_s", "run_s", "contention_s", "preempt_s"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "# {:>5} {:<18} {:<6} {:>5} {:>12.2} {:>12.2} {:>12.2} {:>12.2}  {}",
                r.id,
                r.name,
                r.kind,
                r.nodes,
                r.wait,
                r.runtime,
                r.contention_inflation,
                r.preempt_loss,
                if r.completed { "done" } else { "killed" }
            );
        }
        if !self.events.is_empty() {
            let _ = writeln!(out, "#");
            let _ = writeln!(out, "# fault events : {}", self.events.len());
            let _ = writeln!(out, "# {:>12} {:<8} {:>5}  job", "t_s", "action", "node");
            for e in &self.events {
                let _ = writeln!(
                    out,
                    "# {:>12.2} {:<8} {:>5}  {}",
                    e.t,
                    e.action,
                    e.node,
                    e.job.map_or("-".to_string(), |j| j.to_string())
                );
            }
        }
        let _ = writeln!(out, "{}", "#".repeat(72));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SchedReport {
        SchedReport {
            site: "dcc".into(),
            rows: vec![
                SchedJobRow {
                    id: 0,
                    name: "cg.A".into(),
                    kind: "batch".into(),
                    nodes: 2,
                    wait: 10.0,
                    runtime: 130.0,
                    contention_inflation: 30.0,
                    preempt_loss: 0.0,
                    completed: true,
                },
                SchedJobRow {
                    id: 1,
                    name: "ep.A".into(),
                    kind: "resv".into(),
                    nodes: 4,
                    wait: 30.0,
                    runtime: 50.0,
                    contention_inflation: 0.0,
                    preempt_loss: 25.0,
                    completed: true,
                },
            ],
            events: vec![],
        }
    }

    #[test]
    fn totals_aggregate_rows() {
        let r = report();
        assert!((r.mean_wait() - 20.0).abs() < 1e-12);
        assert!((r.total_inflation() - 30.0).abs() < 1e-12);
        assert!((r.total_preempt_loss() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn fault_section_appears_only_with_events() {
        let clean = report();
        assert!(!clean.to_text().contains("fault events"));
        let mut faulty = report();
        faulty.events.push(SchedEventRow {
            t: 120.5,
            action: "KILL".into(),
            node: 3,
            job: Some(1),
        });
        faulty.events.push(SchedEventRow {
            t: 1020.5,
            action: "REPAIR".into(),
            node: 3,
            job: None,
        });
        let text = faulty.to_text();
        assert!(text.contains("fault events : 2"), "{text}");
        assert!(text.contains("KILL"), "{text}");
        assert!(text.contains("REPAIR"), "{text}");
        // REPAIR has no job column entry.
        assert!(
            text.lines()
                .any(|l| l.contains("REPAIR") && l.ends_with('-')),
            "{text}"
        );
    }

    #[test]
    fn banner_mentions_the_attribution_columns() {
        let text = report().to_text();
        for needle in [
            "IPM-sched",
            "mean wait",
            "class",
            "contention_s",
            "preempt_s",
            "cg.A",
            "resv",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
    }
}
