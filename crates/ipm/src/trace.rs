//! Chrome-trace timeline export.
//!
//! Captures every profile event of a run as a timeline and serialises it in
//! the Chrome tracing JSON format (`chrome://tracing`, Perfetto, Speedscope
//! all read it). One "process" per simulation, one "thread" per rank;
//! compute, MPI and I/O intervals become duration events with their
//! category, so the banded imbalance of the paper's Figure 7 is literally
//! visible as a waterfall.
//!
//! JSON is emitted by hand — the format is trivial and this keeps the
//! dependency set unchanged.

use sim_des::SimTime;
use sim_mpi::{IoKind, ProfEvent, ProfSink, SectionId};
use std::fmt::Write as _;

/// One timeline interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub rank: usize,
    /// Event name ("compute", "MPI_Allreduce", "read", section name...).
    pub name: String,
    /// Category: "comp" | "mpi" | "io" | "section" | "fault" | "verify".
    pub cat: &'static str,
    pub start: SimTime,
    pub end: SimTime,
    /// Payload bytes for MPI/IO events (0 otherwise).
    pub bytes: u64,
}

/// A [`ProfSink`] that records every event as a [`Span`].
#[derive(Debug, Default)]
pub struct TraceCollector {
    section_names: Vec<&'static str>,
    spans: Vec<Span>,
    open_sections: Vec<Vec<(SectionId, SimTime)>>,
}

impl TraceCollector {
    /// Prepare a collector from job metadata; the op streams are never read.
    pub fn new(meta: &sim_mpi::JobMeta) -> Self {
        TraceCollector {
            section_names: meta.section_names.clone(),
            spans: Vec::new(),
            open_sections: vec![Vec::new(); meta.np],
        }
    }

    /// The recorded spans, in arrival order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Finish and build the trace.
    pub fn finish(self) -> Trace {
        Trace { spans: self.spans }
    }
}

impl ProfSink for TraceCollector {
    fn on_event(&mut self, rank: usize, ev: ProfEvent) {
        match ev {
            ProfEvent::SectionEnter { id, t } => {
                if self.open_sections.len() <= rank {
                    self.open_sections.resize(rank + 1, Vec::new());
                }
                self.open_sections[rank].push((id, t));
            }
            ProfEvent::SectionExit { id, t } => {
                if let Some((open, start)) = self.open_sections[rank].pop() {
                    debug_assert_eq!(open, id);
                    self.spans.push(Span {
                        rank,
                        name: self
                            .section_names
                            .get(id as usize)
                            .copied()
                            .unwrap_or("section")
                            .to_string(),
                        cat: "section",
                        start,
                        end: t,
                        bytes: 0,
                    });
                }
            }
            ProfEvent::Compute { start, end } => self.spans.push(Span {
                rank,
                name: "compute".to_string(),
                cat: "comp",
                start,
                end,
                bytes: 0,
            }),
            ProfEvent::Mpi {
                kind,
                bytes,
                start,
                end,
            } => self.spans.push(Span {
                rank,
                name: kind.name().to_string(),
                cat: "mpi",
                start,
                end,
                bytes,
            }),
            ProfEvent::Io {
                kind,
                bytes,
                start,
                end,
            } => self.spans.push(Span {
                rank,
                name: match kind {
                    IoKind::Read => "read",
                    IoKind::Write => "write",
                }
                .to_string(),
                cat: "io",
                start,
                end,
                bytes,
            }),
            ProfEvent::Fault { start, end } => self.spans.push(Span {
                rank,
                name: "fault-stall".to_string(),
                cat: "fault",
                start,
                end,
                bytes: 0,
            }),
            ProfEvent::Restart { start, end } => {
                // The job was killed: any open sections were aborted, so
                // drop them (the rank re-enters them as it replays).
                self.open_sections[rank].clear();
                self.spans.push(Span {
                    rank,
                    name: "restart".to_string(),
                    cat: "fault",
                    start,
                    end,
                    bytes: 0,
                });
            }
            ProfEvent::Verify { start, end } => self.spans.push(Span {
                rank,
                name: "abft-verify".to_string(),
                cat: "verify",
                start,
                end,
                bytes: 0,
            }),
            ProfEvent::Shrink { start, end } => self.spans.push(Span {
                rank,
                name: "shrink-spare".to_string(),
                cat: "fault",
                start,
                end,
                bytes: 0,
            }),
            ProfEvent::Sdc { t, detected } => self.spans.push(Span {
                rank,
                name: if detected {
                    "sdc-detected".to_string()
                } else {
                    "sdc-undetected".to_string()
                },
                cat: "fault",
                start: t,
                end: t,
                bytes: 0,
            }),
        }
    }
}

/// A finished timeline.
#[derive(Debug, Clone)]
pub struct Trace {
    pub spans: Vec<Span>,
}

impl Trace {
    /// Total span count.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans of one rank, in start order.
    pub fn rank_spans(&self, rank: usize) -> Vec<&Span> {
        let mut v: Vec<&Span> = self.spans.iter().filter(|s| s.rank == rank).collect();
        v.sort_by_key(|s| s.start);
        v
    }

    /// Serialise as Chrome tracing JSON (array-of-events form).
    /// Timestamps are microseconds as the format requires.
    pub fn to_chrome_json(&self, process_name: &str) -> String {
        let mut out = String::from("[\n");
        let _ = write!(
            out,
            "  {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":{}}}}}",
            json_str(process_name)
        );
        for s in &self.spans {
            let dur = s.end.since(s.start).as_micros_f64();
            let _ = write!(
                out,
                ",\n  {{\"name\":{},\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"bytes\":{}}}}}",
                json_str(&s.name),
                s.cat,
                s.rank,
                s.start.as_micros_f64(),
                dur.max(0.001),
                s.bytes
            );
        }
        out.push_str("\n]\n");
        out
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Run a job with timeline capture, returning the result and the trace.
/// The job is rewound by the engine, so it can be traced repeatedly.
pub fn trace_run(
    job: &mut sim_mpi::JobSpec,
    cluster: &sim_platform::ClusterSpec,
    cfg: &sim_mpi::SimConfig,
) -> Result<(sim_mpi::SimResult, Trace), sim_mpi::SimError> {
    let mut collector = TraceCollector::new(&job.meta);
    let result = sim_mpi::run_job(job, cluster, cfg, &mut collector)?;
    Ok((result, collector.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mpi::{CollOp, JobSpec, Op, SimConfig};
    use sim_platform::presets;

    fn demo() -> JobSpec {
        JobSpec::from_programs(
            "trace-demo",
            (0..4)
                .map(|_| {
                    vec![
                        Op::SectionEnter(0),
                        Op::Compute {
                            flops: 1e7,
                            bytes: 0.0,
                        },
                        Op::Coll(CollOp::Allreduce { bytes: 8 }),
                        Op::SectionExit(0),
                        Op::FileRead { bytes: 1_000_000 },
                    ]
                })
                .collect(),
            vec!["step"],
        )
    }

    #[test]
    fn captures_all_event_categories() {
        let (_, trace) = trace_run(&mut demo(), &presets::vayu(), &SimConfig::default()).unwrap();
        let cats: std::collections::HashSet<&str> = trace.spans.iter().map(|s| s.cat).collect();
        assert!(cats.contains("comp"));
        assert!(cats.contains("mpi"));
        assert!(cats.contains("io"));
        assert!(cats.contains("section"));
        // 4 ranks x (1 compute + 1 mpi + 1 section + 1 io).
        assert_eq!(trace.len(), 16);
    }

    #[test]
    fn rank_spans_are_ordered_and_non_overlapping() {
        let (_, trace) = trace_run(&mut demo(), &presets::dcc(), &SimConfig::default()).unwrap();
        for rank in 0..4 {
            let spans = trace.rank_spans(rank);
            assert!(!spans.is_empty());
            for w in spans.windows(2) {
                // Sections envelop their contents; skip those pairs.
                if w[0].cat == "section" || w[1].cat == "section" {
                    continue;
                }
                assert!(w[0].end <= w[1].start, "{:?} then {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn chrome_json_is_well_formed_enough() {
        let (_, trace) = trace_run(&mut demo(), &presets::ec2(), &SimConfig::default()).unwrap();
        let json = trace.to_chrome_json("demo");
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), trace.len());
        assert!(json.contains("\"MPI_Allreduce\""));
        // Balanced braces/brackets (cheap structural check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_str("tab\there"), "\"tab\\there\"");
    }
}
