//! `sim-ipm` — an IPM-like performance monitor for simulated MPI runs.
//!
//! The real study instruments MetUM, Chaste and the NPB suite with the IPM
//! monitoring framework, which hashes every MPI call by (call, buffer-size
//! bucket, region) and reports per-region wallclock, %comm and load balance.
//! This crate reimplements that measurement layer on top of the `sim-mpi`
//! profile-event stream:
//!
//! * [`IpmCollector`] — the [`sim_mpi::ProfSink`] that ingests events,
//! * [`IpmProfiler`] — the frozen per-rank/per-section/per-call ledgers,
//! * [`IpmReport`] — cross-rank aggregation plus the text banner,
//! * [`profile_run`] — one-call convenience wrapper.

pub mod profiler;
pub mod report;
pub mod sched;
pub mod trace;

pub use profiler::{bucket_floor, size_bucket, CallAgg, IpmCollector, IpmProfiler, Ledger};
pub use report::{profile_run, CallRow, IpmReport, SectionReport};
pub use sched::{SchedEventRow, SchedJobRow, SchedReport};
pub use trace::{trace_run, Span, Trace, TraceCollector};

#[cfg(test)]
mod proptests {
    //! Randomized invariant sweeps driven by a seeded `DetRng` —
    //! deterministic and dependency-free.
    use super::*;
    use sim_des::DetRng;
    use sim_mpi::{CollOp, JobSpec, Op, SimConfig};
    use sim_platform::presets;

    /// Time conservation through the profiler: for every rank,
    /// comp + comm + io <= wall (+epsilon), and the global ledger's
    /// components match the engine's own totals.
    #[test]
    fn profiler_conserves_time() {
        let mut rng = DetRng::new(0x19A_0001, 0);
        for np in [1usize, 2, 4, 8, 16, 32] {
            let mut job = JobSpec::from_programs(
                "pt",
                (0..np)
                    .map(|_| {
                        vec![
                            Op::SectionEnter(0),
                            Op::Compute {
                                flops: 1e7,
                                bytes: 1e6,
                            },
                            Op::Coll(CollOp::Allreduce { bytes: 8 }),
                            Op::SectionExit(0),
                        ]
                    })
                    .collect(),
                vec!["step"],
            );
            for _ in 0..4 {
                let cfg = SimConfig {
                    seed: rng.next_u64(),
                    ..Default::default()
                };
                let (res, rep) = profile_run(&mut job, &presets::dcc(), &cfg).unwrap();
                for (i, (comp, comm)) in rep.rank_breakdown.iter().enumerate() {
                    let wall = res.ranks[i].wall.as_secs_f64();
                    assert!(comp + comm <= wall + 1e-9);
                    assert!((comp - res.ranks[i].comp.as_secs_f64()).abs() < 1e-9);
                    assert!((comm - res.ranks[i].comm.as_secs_f64()).abs() < 1e-9);
                }
            }
        }
    }

    /// Size-bucket floor/ceiling relationship holds for all sizes.
    #[test]
    fn bucket_brackets_size() {
        let mut rng = DetRng::new(0x19A_0002, 0);
        for _ in 0..512 {
            let bytes = 1 + rng.next_u64() % (u64::MAX / 2 - 1);
            let b = size_bucket(bytes);
            assert!(bucket_floor(b) <= bytes);
            assert!(bytes < bucket_floor(b).saturating_mul(2));
        }
    }

    /// Bucketing is monotone.
    #[test]
    fn bucket_monotone() {
        let mut rng = DetRng::new(0x19A_0003, 0);
        for _ in 0..512 {
            let a = rng.index(1_000_000) as u64;
            let b = rng.index(1_000_000) as u64;
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            assert!(size_bucket(lo) <= size_bucket(hi));
        }
    }
}
