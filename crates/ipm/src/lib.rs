//! `sim-ipm` — an IPM-like performance monitor for simulated MPI runs.
//!
//! The real study instruments MetUM, Chaste and the NPB suite with the IPM
//! monitoring framework, which hashes every MPI call by (call, buffer-size
//! bucket, region) and reports per-region wallclock, %comm and load balance.
//! This crate reimplements that measurement layer on top of the `sim-mpi`
//! profile-event stream:
//!
//! * [`IpmCollector`] — the [`sim_mpi::ProfSink`] that ingests events,
//! * [`IpmProfiler`] — the frozen per-rank/per-section/per-call ledgers,
//! * [`IpmReport`] — cross-rank aggregation plus the text banner,
//! * [`profile_run`] — one-call convenience wrapper.

pub mod profiler;
pub mod report;
pub mod trace;

pub use profiler::{bucket_floor, size_bucket, CallAgg, IpmCollector, IpmProfiler, Ledger};
pub use report::{profile_run, CallRow, IpmReport, SectionReport};
pub use trace::{trace_run, Span, Trace, TraceCollector};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sim_mpi::{CollOp, JobSpec, Op, SimConfig};
    use sim_platform::presets;

    fn arb_np() -> impl Strategy<Value = usize> {
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(16), Just(32)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Time conservation through the profiler: for every rank,
        /// comp + comm + io <= wall (+epsilon), and the global ledger's
        /// components match the engine's own totals.
        #[test]
        fn profiler_conserves_time(np in arb_np(), seed in any::<u64>()) {
            let job = JobSpec {
                name: "pt".into(),
                programs: (0..np).map(|_| vec![
                    Op::SectionEnter(0),
                    Op::Compute { flops: 1e7, bytes: 1e6 },
                    Op::Coll(CollOp::Allreduce { bytes: 8 }),
                    Op::SectionExit(0),
                ]).collect(),
                section_names: vec!["step"],
            };
            let cfg = SimConfig { seed, ..Default::default() };
            let (res, rep) = profile_run(&job, &presets::dcc(), &cfg).unwrap();
            for (i, (comp, comm)) in rep.rank_breakdown.iter().enumerate() {
                let wall = res.ranks[i].wall.as_secs_f64();
                prop_assert!(comp + comm <= wall + 1e-9);
                prop_assert!((comp - res.ranks[i].comp.as_secs_f64()).abs() < 1e-9);
                prop_assert!((comm - res.ranks[i].comm.as_secs_f64()).abs() < 1e-9);
            }
        }

        /// Size-bucket floor/ceiling relationship holds for all sizes.
        #[test]
        fn bucket_brackets_size(bytes in 1u64..u64::MAX / 2) {
            let b = size_bucket(bytes);
            prop_assert!(bucket_floor(b) <= bytes);
            prop_assert!(bytes < bucket_floor(b).saturating_mul(2));
        }

        /// Bucketing is monotone.
        #[test]
        fn bucket_monotone(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(size_bucket(lo) <= size_bucket(hi));
        }
    }
}
