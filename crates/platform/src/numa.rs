//! NUMA placement model.
//!
//! Both Xeon parts in the study are two-socket NUMA nodes. On bare metal
//! (Vayu) the OpenMPI build enforces memory/thread affinity, so nearly all
//! accesses are socket-local. Under VMware ESX and Xen the guest cannot see
//! the NUMA topology — the paper calls this out explicitly ("an underlying
//! hardware platform has characteristics (eg. NUMA) that "are hidden owing
//! to virtualization" — so allocations scatter and a large fraction of
//! traffic crosses the inter-socket link at reduced bandwidth and higher
//! latency.

/// How much of a rank's memory traffic is socket-remote, and what that costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumaModel {
    /// Fraction of memory traffic that is remote when affinity is enforced.
    pub exposed_remote_frac: f64,
    /// Fraction of memory traffic that is remote when the topology is
    /// masked by the hypervisor (allocations round-robin across sockets).
    pub masked_remote_frac: f64,
    /// Slowdown ratio of a remote access relative to a local one (QPI hop).
    pub remote_penalty: f64,
}

impl Default for NumaModel {
    fn default() -> Self {
        Self::nehalem()
    }
}

impl NumaModel {
    /// Nehalem-EP two-socket QPI characteristics.
    pub fn nehalem() -> Self {
        NumaModel {
            exposed_remote_frac: 0.04,
            masked_remote_frac: 0.32,
            remote_penalty: 1.8,
        }
    }

    /// Effective memory-bandwidth multiplier in `(0, 1]` for a rank, given
    /// whether NUMA is masked and whether the job actually spans sockets.
    /// Jobs narrow enough to fit one socket never pay a penalty (`spans ==
    /// false`), which is why small DCC runs look fine and the CG drop only
    /// appears from 8 processes (paper §V-B).
    pub fn bandwidth_factor(&self, masked: bool, spans_sockets: bool) -> f64 {
        if !spans_sockets {
            return 1.0;
        }
        let remote_frac = if masked {
            self.masked_remote_frac
        } else {
            self.exposed_remote_frac
        };
        // Mean cost per access: (1 - f) local + f remote at `penalty` cost.
        1.0 / ((1.0 - remote_frac) + remote_frac * self.remote_penalty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_penalty_within_one_socket() {
        let m = NumaModel::nehalem();
        assert_eq!(m.bandwidth_factor(true, false), 1.0);
        assert_eq!(m.bandwidth_factor(false, false), 1.0);
    }

    #[test]
    fn masked_numa_hurts_more_than_exposed() {
        let m = NumaModel::nehalem();
        let masked = m.bandwidth_factor(true, true);
        let exposed = m.bandwidth_factor(false, true);
        assert!(masked < exposed);
        assert!(exposed > 0.95, "affinity keeps bare metal near-ideal");
        // Masked NUMA costs a noticeable double-digit percentage.
        assert!((0.6..0.85).contains(&masked), "masked factor {masked}");
    }

    #[test]
    fn factor_bounded() {
        let m = NumaModel::nehalem();
        for masked in [false, true] {
            let f = m.bandwidth_factor(masked, true);
            assert!(f > 0.0 && f <= 1.0);
        }
    }
}
