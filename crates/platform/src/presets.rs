//! The three experimental platforms of the paper's Table I.
//!
//! | | DCC | EC2 | Vayu |
//! |---|---|---|---|
//! | Nodes | 8 | 4 | 1492 |
//! | CPU | Xeon E5520 2.27 GHz | Xeon X5570 2.93 GHz (HT on) | Xeon X5570 2.93 GHz |
//! | Cores/node | 8 | 16 logical (8 physical) | 8 |
//! | Memory/node | 40 GB | 20 GB | 24 GB |
//! | Hypervisor | VMware ESX 4.0 | Xen | none |
//! | Interconnect | GigE (vSwitch, E1000 vNIC) | 10 GigE (placement group) | QDR IB fat tree |
//! | Filesystem | NFS | NFS | Lustre |

use crate::cluster::ClusterSpec;
use crate::cpu::CpuSpec;
use crate::fs::FsModel;
use crate::hypervisor::HypervisorModel;
use crate::node::NodeSpec;
use sim_net::{FabricParams, JitterDist, JitterParams, Topology};

/// DCC: the private VMware cloud at NCI-NF. Eight Dell M610 blades, one
/// guest VM per blade owning all eight cores, E1000 vNICs through the ESX
/// vSwitch, NFS filesystems.
pub fn dcc() -> ClusterSpec {
    let hypervisor = HypervisorModel::vmware_esx();
    let intra = FabricParams::shared_memory_virt(
        0.4e-6,
        JitterParams {
            prob: 0.01,
            dist: JitterDist::Exponential { mean: 20.0e-6 },
        },
    );
    ClusterSpec {
        name: "dcc",
        nodes: 8,
        node: NodeSpec::new(CpuSpec::xeon_e5520(), hypervisor, 40.0),
        topology: Topology::single_switch(FabricParams::gige_vswitch(), intra),
        fs: FsModel::nfs_dcc(),
    }
}

/// EC2: four cc1.4xlarge instances in a cluster placement group, launched by
/// StarCluster in us-east-1. Xen, HyperThreading enabled (16 logical cores),
/// virtualized 10 GigE, NFS from the master instance.
pub fn ec2() -> ClusterSpec {
    let hypervisor = HypervisorModel::xen();
    let intra = FabricParams::shared_memory_virt(
        0.6e-6,
        JitterParams {
            prob: 0.015,
            dist: JitterDist::Exponential { mean: 30.0e-6 },
        },
    );
    ClusterSpec {
        name: "ec2",
        nodes: 4,
        node: NodeSpec::new(CpuSpec::xeon_x5570(true), hypervisor, 20.0),
        topology: Topology::single_switch(FabricParams::ten_gige_virt(), intra),
        fs: FsModel::nfs_ec2(),
    }
}

/// Vayu: the NCI-NF Sun Oracle blade supercomputer (#64 on the June 2011
/// Top500). 1492 nodes, QDR IB fat tree over four DS648 switches, Lustre.
pub fn vayu() -> ClusterSpec {
    ClusterSpec {
        name: "vayu",
        nodes: 1492,
        node: NodeSpec::new(
            CpuSpec::xeon_x5570(false),
            HypervisorModel::bare_metal(),
            24.0,
        ),
        topology: Topology::fat_tree(
            FabricParams::qdr_infiniband(),
            FabricParams::shared_memory(),
            16,
            0.3e-6,
        ),
        fs: FsModel::lustre_vayu(),
    }
}

/// The OpenStack private cloud of the paper's future work ("we are also
/// planning to cloud burst onto OpenStack based cloud resources locally"):
/// the same class of blades as DCC but under KVM with virtio 10 GigE —
/// a what-if platform, not part of Table I.
pub fn openstack() -> ClusterSpec {
    let hypervisor = HypervisorModel::kvm();
    let intra = FabricParams::shared_memory_virt(
        0.4e-6,
        JitterParams {
            prob: 0.008,
            dist: JitterDist::Exponential { mean: 15.0e-6 },
        },
    );
    // virtio 10GigE: better per-byte path than Xen netfront, worse than
    // hardware RDMA.
    let mut inter = FabricParams::ten_gige_virt();
    inter.name = "10GigE (KVM virtio)";
    inter.latency = 38.0e-6;
    inter.per_byte_cpu = 1.2e-9;
    ClusterSpec {
        name: "openstack",
        nodes: 8,
        node: NodeSpec::new(CpuSpec::xeon_e5520(), hypervisor, 40.0),
        topology: Topology::single_switch(inter, intra),
        fs: FsModel::nfs_ec2(),
    }
}

/// All three platforms in the order the paper tabulates them.
pub fn all() -> Vec<ClusterSpec> {
    vec![dcc(), ec2(), vayu()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        let d = dcc();
        let e = ec2();
        let v = vayu();
        assert_eq!(d.nodes, 8);
        assert_eq!(e.nodes, 4);
        assert_eq!(v.nodes, 1492);
        assert_eq!(d.total_logical_cores(), 64);
        assert_eq!(e.total_logical_cores(), 64);
        assert_eq!(d.node.logical_cores(), 8);
        assert_eq!(e.node.logical_cores(), 16);
        assert_eq!(v.node.logical_cores(), 8);
    }

    #[test]
    fn serial_compute_ratio_tracks_clocks() {
        // Fig 3 / Table III: DCC serial compute is ~1.3-1.4x Vayu.
        let v = vayu();
        let d = dcc();
        let pv = v.place(1, crate::placement::Strategy::Block).unwrap();
        let pd = d.place(1, crate::placement::Strategy::Block).unwrap();
        let rv = v.rank_rates(&pv)[0].flops_rate;
        let rd = d.rank_rates(&pd)[0].flops_rate;
        let ratio = rv / rd;
        assert!((1.25..1.45).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn ec2_serial_close_to_vayu() {
        // Same X5570 silicon; Xen adds a few percent.
        let v = vayu();
        let e = ec2();
        let pv = v.place(1, crate::placement::Strategy::Block).unwrap();
        let pe = e.place(1, crate::placement::Strategy::Block).unwrap();
        let ratio = v.rank_rates(&pv)[0].flops_rate / e.rank_rates(&pe)[0].flops_rate;
        assert!((1.0..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn openstack_sits_between_dcc_and_vayu() {
        use crate::placement::Strategy;
        let o = openstack();
        assert_eq!(o.nodes, 8);
        // Same silicon as DCC, lighter virtualization: single-rank compute
        // rate strictly between DCC's and bare metal's.
        let po = o.place(1, Strategy::Block).unwrap();
        let ro = o.rank_rates(&po)[0].flops_rate;
        let d = dcc();
        let pd = d.place(1, Strategy::Block).unwrap();
        let rd = d.rank_rates(&pd)[0].flops_rate;
        assert!(ro > rd);
        // And its fabric latency is below both cloud fabrics of Table I.
        assert!(o.topology.inter.latency < dcc().topology.inter.latency);
        assert!(o.topology.inter.latency < ec2().topology.inter.latency);
    }

    #[test]
    fn interconnect_identity() {
        assert_eq!(vayu().topology.inter.name, "QDR InfiniBand");
        assert_eq!(ec2().topology.inter.name, "10GigE (Xen virtualized)");
        assert_eq!(dcc().topology.inter.name, "GigE (VMware vSwitch)");
    }
}
