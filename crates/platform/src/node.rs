//! Node model: a processor complex plus memory under a hypervisor.

use crate::cpu::CpuSpec;
use crate::hypervisor::HypervisorModel;
use crate::numa::NumaModel;

/// One compute node of a cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    pub cpu: CpuSpec,
    pub hypervisor: HypervisorModel,
    pub numa: NumaModel,
    /// Usable guest memory, bytes (Table I "Memory per node").
    pub mem_bytes: u64,
}

impl NodeSpec {
    pub fn new(cpu: CpuSpec, hypervisor: HypervisorModel, mem_gb: f64) -> Self {
        NodeSpec {
            cpu,
            hypervisor,
            numa: NumaModel::nehalem(),
            mem_bytes: (mem_gb * 1e9) as u64,
        }
    }

    /// Schedulable cores the job scheduler sees on this node.
    pub fn logical_cores(&self) -> usize {
        self.cpu.logical_cores()
    }

    /// Effective flops rate (flops/s) for a rank whose physical core is
    /// shared by `sharers_on_core` ranks, including hypervisor overhead.
    pub fn flops_rate(&self, sharers_on_core: usize) -> f64 {
        self.cpu.flops_rate(sharers_on_core) / self.hypervisor.compute_factor()
    }

    /// Effective memory bandwidth (bytes/s) for a rank given socket
    /// occupancy and whether the job's footprint spans both sockets.
    pub fn mem_rate(&self, ranks_on_socket: usize, spans_sockets: bool) -> f64 {
        self.cpu.mem_rate(ranks_on_socket)
            * self
                .numa
                .bandwidth_factor(self.hypervisor.numa_masked, spans_sockets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypervisor::HypervisorModel;

    #[test]
    fn hypervisor_overhead_applies_to_flops() {
        let bare = NodeSpec::new(
            CpuSpec::xeon_x5570(false),
            HypervisorModel::bare_metal(),
            24.0,
        );
        let xen = NodeSpec::new(CpuSpec::xeon_x5570(true), HypervisorModel::xen(), 20.0);
        assert!(bare.flops_rate(1) > xen.flops_rate(1));
    }

    #[test]
    fn masked_numa_reduces_mem_rate_only_when_spanning() {
        let dcc = NodeSpec::new(CpuSpec::xeon_e5520(), HypervisorModel::vmware_esx(), 40.0);
        let vayu = NodeSpec::new(
            CpuSpec::xeon_x5570(false),
            HypervisorModel::bare_metal(),
            24.0,
        );
        // Within one socket both are full rate.
        assert_eq!(
            dcc.mem_rate(2, false),
            dcc.cpu.mem_rate(2),
            "no spanning, no penalty"
        );
        // Spanning: DCC (masked) loses much more than Vayu (exposed).
        let dcc_loss = dcc.mem_rate(4, true) / dcc.cpu.mem_rate(4);
        let vayu_loss = vayu.mem_rate(4, true) / vayu.cpu.mem_rate(4);
        assert!(dcc_loss < 0.85 && vayu_loss > 0.95);
    }

    #[test]
    fn memory_capacity_from_table1() {
        let dcc = NodeSpec::new(CpuSpec::xeon_e5520(), HypervisorModel::vmware_esx(), 40.0);
        assert_eq!(dcc.mem_bytes, 40_000_000_000);
    }
}
