//! Hypervisor models.
//!
//! The three platforms differ in their virtualization layer: Vayu runs bare
//! metal, DCC's guests run under VMware ESX 4.0, and EC2 cc1.4xlarge
//! instances run under Xen. The model captures the three effects the paper
//! attributes to virtualization:
//!
//! 1. a small constant compute overhead (binary translation / paravirt
//!    hypercalls / timer virtualization),
//! 2. scheduling jitter — the hypervisor occasionally de-schedules a vCPU,
//!    which the paper observes as irregular load imbalance and "system
//!    jitter" on both clouds, and
//! 3. NUMA masking — the guest sees a flat topology, defeating the affinity
//!    logic in OpenMPI and the applications (see [`crate::numa`]).

use sim_net::{JitterDist, JitterParams};

/// Identity of the virtualization layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HypervisorKind {
    BareMetal,
    VmwareEsx,
    Xen,
    /// KVM with virtio paravirtual devices — what the paper's future-work
    /// OpenStack deployment would run.
    Kvm,
}

/// Behavioural parameters of a hypervisor.
#[derive(Debug, Clone, PartialEq)]
pub struct HypervisorModel {
    pub kind: HypervisorKind,
    /// Fractional slowdown applied to all compute (0.02 = 2% slower).
    pub compute_overhead: f64,
    /// Per-compute-chunk scheduling jitter.
    pub compute_jitter: JitterParams,
    /// Whether the guest sees the host NUMA topology.
    pub numa_masked: bool,
}

impl HypervisorModel {
    /// No hypervisor: zero overhead, only faint OS noise, NUMA exposed.
    pub fn bare_metal() -> Self {
        HypervisorModel {
            kind: HypervisorKind::BareMetal,
            compute_overhead: 0.0,
            compute_jitter: JitterParams {
                prob: 0.002,
                dist: JitterDist::Exponential { mean: 15.0e-6 },
            },
            numa_masked: false,
        }
    }

    /// VMware ESX 4.0 as on the DCC blades. The guest owns all physical
    /// cores of its blade, but the ESX scheduler still preempts vCPUs to run
    /// the vSwitch and management world, producing the irregular imbalance
    /// the paper's Figure 7 shows.
    pub fn vmware_esx() -> Self {
        HypervisorModel {
            kind: HypervisorKind::VmwareEsx,
            compute_overhead: 0.03,
            // Heavy-tailed vCPU descheduling stalls: the vSwitch and
            // management worlds preempt guest vCPUs for milliseconds at a
            // time. Individually these cost ~0.2% of serial compute, but at
            // every collective the whole job waits for the unluckiest rank,
            // which is what blows DCC's %comm up in Tables II/III.
            compute_jitter: JitterParams {
                prob: 0.16,
                dist: JitterDist::Pareto {
                    min: 1.2e-3,
                    alpha: 1.5,
                },
            },
            numa_masked: true,
        }
    }

    /// Xen as on EC2 cc1.4xlarge. Slightly higher base overhead than ESX in
    /// this configuration (grant-table copies on every I/O), plus jitter from
    /// dom0 competing for cycles.
    pub fn xen() -> Self {
        HypervisorModel {
            kind: HypervisorKind::Xen,
            compute_overhead: 0.04,
            // dom0 competes for cycles: lighter-tailed than ESX's vSwitch
            // stalls, but still collective-amplified ("system jitter
            // brought on by the use of HyperThreading", paper §V-B).
            compute_jitter: JitterParams {
                prob: 0.06,
                dist: JitterDist::Exponential { mean: 1.0e-3 },
            },
            numa_masked: true,
        }
    }

    /// KVM/virtio, as an OpenStack private cloud would deploy: hardware
    /// virtualization extensions make compute overhead small, and the
    /// virtio path is far better behaved than the emulated E1000.
    pub fn kvm() -> Self {
        HypervisorModel {
            kind: HypervisorKind::Kvm,
            compute_overhead: 0.02,
            compute_jitter: JitterParams {
                prob: 0.04,
                dist: JitterDist::Exponential { mean: 0.6e-3 },
            },
            numa_masked: true,
        }
    }

    /// Multiplier applied to compute durations (>= 1).
    pub fn compute_factor(&self) -> f64 {
        1.0 + self.compute_overhead
    }

    /// True for any kind that interposes a hypervisor between the guest and
    /// the hardware. Used by `sim-faults` to pick a failure profile for
    /// clusters that are not one of the paper's three named platforms.
    pub fn is_virtual(&self) -> bool {
        self.kind != HypervisorKind::BareMetal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_metal_is_cheapest() {
        let bm = HypervisorModel::bare_metal();
        let esx = HypervisorModel::vmware_esx();
        let xen = HypervisorModel::xen();
        assert_eq!(bm.compute_factor(), 1.0);
        assert!(esx.compute_factor() > 1.0);
        assert!(xen.compute_factor() >= esx.compute_factor());
    }

    #[test]
    fn only_bare_metal_sees_numa() {
        assert!(!HypervisorModel::bare_metal().numa_masked);
        assert!(HypervisorModel::vmware_esx().numa_masked);
        assert!(HypervisorModel::xen().numa_masked);
    }

    #[test]
    fn jitter_expectation_ordering() {
        // Virtualized platforms are noisier than bare metal.
        let bm = HypervisorModel::bare_metal().compute_jitter.expected();
        let esx = HypervisorModel::vmware_esx().compute_jitter.expected();
        let xen = HypervisorModel::xen().compute_jitter.expected();
        assert!(bm < esx && bm < xen);
    }
}
