//! Rank-to-core placement.
//!
//! Placement decides which node and logical core each MPI rank occupies, and
//! from that the engine derives the three effects the paper traces back to
//! placement: SMT sibling sharing (EC2 at 16 ranks/node), socket spanning
//! (NUMA), and how many ranks funnel through each node's NIC.

use crate::node::NodeSpec;

/// Where one rank lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    pub node: usize,
    /// Logical core index on the node. With SMT, logical core `l` maps to
    /// physical core `l % physical_cores` (Linux sibling enumeration).
    pub logical_core: usize,
}

/// Placement strategies used by the study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Fill each node's logical cores completely before the next node —
    /// the scheduler default on all three platforms ("processes fully
    /// subscribing each core").
    Block,
    /// Spread ranks evenly over exactly `nodes` nodes (the paper's "EC2-4"
    /// runs: always use 4 nodes regardless of rank count).
    Spread { nodes: usize },
    /// Like [`Strategy::Block`] but stop filling a node when the per-rank
    /// memory demand would exceed node memory (MetUM on EC2 "could not be
    /// run on fewer than 2 nodes; for 24 processes, three nodes had to be
    /// used").
    BlockMemoryAware { per_rank_bytes: u64 },
}

/// A complete placement of `np` ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    pub slots: Vec<Slot>,
    /// Ranks hosted per node (index = node id), for NIC sharing.
    pub ranks_per_node: Vec<usize>,
}

/// Why a placement could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// More ranks than schedulable cores in the whole cluster.
    NotEnoughCores { need: usize, have: usize },
    /// A rank's memory demand exceeds a whole node's memory.
    RankTooLarge {
        per_rank_bytes: u64,
        node_bytes: u64,
    },
    /// Spread over more nodes than the cluster has.
    NotEnoughNodes { need: usize, have: usize },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NotEnoughCores { need, have } => {
                write!(f, "placement needs {need} cores but the cluster has {have}")
            }
            PlacementError::RankTooLarge {
                per_rank_bytes,
                node_bytes,
            } => write!(
                f,
                "a single rank needs {per_rank_bytes} B but a node has only {node_bytes} B"
            ),
            PlacementError::NotEnoughNodes { need, have } => {
                write!(
                    f,
                    "spread over {need} nodes requested but cluster has {have}"
                )
            }
        }
    }
}

impl std::error::Error for PlacementError {}

impl Placement {
    /// Place `np` ranks on a cluster of `nodes` identical `node` specs.
    pub fn place(
        node: &NodeSpec,
        nodes: usize,
        np: usize,
        strategy: Strategy,
    ) -> Result<Placement, PlacementError> {
        assert!(np > 0, "np must be positive");
        let lc = node.logical_cores();
        match strategy {
            Strategy::Block => {
                let have = lc * nodes;
                if np > have {
                    return Err(PlacementError::NotEnoughCores { need: np, have });
                }
                let slots = (0..np)
                    .map(|r| Slot {
                        node: r / lc,
                        logical_core: r % lc,
                    })
                    .collect();
                Ok(Self::from_slots(slots, nodes))
            }
            Strategy::Spread { nodes: want } => {
                if want > nodes {
                    return Err(PlacementError::NotEnoughNodes {
                        need: want,
                        have: nodes,
                    });
                }
                let per = np.div_ceil(want);
                if per > lc {
                    return Err(PlacementError::NotEnoughCores {
                        need: np,
                        have: lc * want,
                    });
                }
                // Even distribution: rank r goes to node r % want, taking the
                // next free logical core there.
                let mut next_core = vec![0usize; want];
                let slots = (0..np)
                    .map(|r| {
                        let n = r % want;
                        let c = next_core[n];
                        next_core[n] += 1;
                        Slot {
                            node: n,
                            logical_core: c,
                        }
                    })
                    .collect();
                Ok(Self::from_slots(slots, nodes))
            }
            Strategy::BlockMemoryAware { per_rank_bytes } => {
                if per_rank_bytes > node.mem_bytes {
                    return Err(PlacementError::RankTooLarge {
                        per_rank_bytes,
                        node_bytes: node.mem_bytes,
                    });
                }
                let per_node_by_mem = node
                    .mem_bytes
                    .checked_div(per_rank_bytes)
                    .map_or(lc, |q| (q as usize).max(1));
                let per_node = per_node_by_mem.min(lc);
                let need_nodes = np.div_ceil(per_node);
                if need_nodes > nodes {
                    return Err(PlacementError::NotEnoughCores {
                        need: np,
                        have: per_node * nodes,
                    });
                }
                // Distribute evenly over the nodes we must use ("processes
                // were evenly distributed across the nodes").
                let used = need_nodes;
                let mut next_core = vec![0usize; used];
                let slots = (0..np)
                    .map(|r| {
                        let n = r % used;
                        let c = next_core[n];
                        next_core[n] += 1;
                        Slot {
                            node: n,
                            logical_core: c,
                        }
                    })
                    .collect();
                Ok(Self::from_slots(slots, nodes))
            }
        }
    }

    fn from_slots(slots: Vec<Slot>, nodes: usize) -> Placement {
        let mut ranks_per_node = vec![0usize; nodes];
        for s in &slots {
            ranks_per_node[s.node] += 1;
        }
        Placement {
            slots,
            ranks_per_node,
        }
    }

    pub fn np(&self) -> usize {
        self.slots.len()
    }

    /// Number of distinct nodes actually hosting ranks.
    pub fn nodes_used(&self) -> usize {
        self.ranks_per_node.iter().filter(|c| **c > 0).count()
    }

    /// Physical core of a slot given the node's physical core count.
    pub fn physical_core(slot: Slot, physical_cores: usize) -> usize {
        slot.logical_core % physical_cores
    }

    /// How many ranks share rank `r`'s physical core (>= 1).
    pub fn core_sharers(&self, r: usize, physical_cores: usize) -> usize {
        let me = self.slots[r];
        let mine = Self::physical_core(me, physical_cores);
        self.slots
            .iter()
            .filter(|s| s.node == me.node && Self::physical_core(**s, physical_cores) == mine)
            .count()
    }

    /// How many ranks live on rank `r`'s socket.
    pub fn socket_occupancy(
        &self,
        r: usize,
        physical_cores: usize,
        cores_per_socket: usize,
    ) -> usize {
        let me = self.slots[r];
        let my_socket = Self::physical_core(me, physical_cores) / cores_per_socket;
        self.slots
            .iter()
            .filter(|s| {
                s.node == me.node
                    && Self::physical_core(**s, physical_cores) / cores_per_socket == my_socket
            })
            .count()
    }

    /// Whether the ranks on rank `r`'s node occupy more than one socket.
    pub fn spans_sockets(&self, r: usize, physical_cores: usize, cores_per_socket: usize) -> bool {
        let me = self.slots[r];
        let mut seen = [false; 64];
        let mut count = 0;
        for s in self.slots.iter().filter(|s| s.node == me.node) {
            let sock = Self::physical_core(*s, physical_cores) / cores_per_socket;
            if !seen[sock] {
                seen[sock] = true;
                count += 1;
            }
        }
        count > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuSpec;
    use crate::hypervisor::HypervisorModel;

    fn ec2_node() -> NodeSpec {
        NodeSpec::new(CpuSpec::xeon_x5570(true), HypervisorModel::xen(), 20.0)
    }
    fn vayu_node() -> NodeSpec {
        NodeSpec::new(
            CpuSpec::xeon_x5570(false),
            HypervisorModel::bare_metal(),
            24.0,
        )
    }

    #[test]
    fn block_fills_nodes_in_order() {
        let p = Placement::place(&vayu_node(), 4, 12, Strategy::Block).unwrap();
        assert_eq!(p.nodes_used(), 2);
        assert_eq!(p.ranks_per_node[0], 8);
        assert_eq!(p.ranks_per_node[1], 4);
        assert_eq!(
            p.slots[8],
            Slot {
                node: 1,
                logical_core: 0
            }
        );
    }

    #[test]
    fn block_rejects_oversubscription() {
        let err = Placement::place(&vayu_node(), 2, 17, Strategy::Block).unwrap_err();
        assert_eq!(err, PlacementError::NotEnoughCores { need: 17, have: 16 });
    }

    #[test]
    fn ec2_block_at_16_ranks_shares_smt_siblings() {
        // 16 ranks block-placed on EC2 land on one node; logical cores 0..16
        // pair up on 8 physical cores — the paper's explanation for the
        // speedup drop at 16 cores.
        let p = Placement::place(&ec2_node(), 4, 16, Strategy::Block).unwrap();
        assert_eq!(p.nodes_used(), 1);
        for r in 0..16 {
            assert_eq!(p.core_sharers(r, 8), 2, "rank {r} should share its core");
        }
        // 8 ranks: no sharing.
        let p8 = Placement::place(&ec2_node(), 4, 8, Strategy::Block).unwrap();
        for r in 0..8 {
            assert_eq!(p8.core_sharers(r, 8), 1);
        }
    }

    #[test]
    fn spread_uses_all_requested_nodes() {
        // EC2-4: 32 ranks over 4 nodes = 8 per node, no SMT sharing.
        let p = Placement::place(&ec2_node(), 4, 32, Strategy::Spread { nodes: 4 }).unwrap();
        assert_eq!(p.nodes_used(), 4);
        assert!(p.ranks_per_node.iter().all(|c| *c == 8));
        for r in 0..32 {
            assert_eq!(p.core_sharers(r, 8), 1);
        }
    }

    #[test]
    fn spread_too_many_nodes_errors() {
        let err = Placement::place(&ec2_node(), 4, 8, Strategy::Spread { nodes: 5 }).unwrap_err();
        assert_eq!(err, PlacementError::NotEnoughNodes { need: 5, have: 4 });
    }

    #[test]
    fn memory_aware_reproduces_metum_ec2_node_counts() {
        // MetUM per-rank footprint model: 0.7 GB + 28 GB / np (see the
        // workloads crate). At np=24 a 20 GB EC2 node only fits 9 ranks,
        // forcing 3 nodes — matching the paper.
        let node = ec2_node();
        let per_rank = |np: u64| 700_000_000 + 28_000_000_000 / np;
        let p8 = Placement::place(
            &node,
            4,
            8,
            Strategy::BlockMemoryAware {
                per_rank_bytes: per_rank(8),
            },
        )
        .unwrap();
        assert_eq!(p8.nodes_used(), 2, "8 ranks cannot fit one node");
        let p16 = Placement::place(
            &node,
            4,
            16,
            Strategy::BlockMemoryAware {
                per_rank_bytes: per_rank(16),
            },
        )
        .unwrap();
        assert_eq!(p16.nodes_used(), 2);
        let p24 = Placement::place(
            &node,
            4,
            24,
            Strategy::BlockMemoryAware {
                per_rank_bytes: per_rank(24),
            },
        )
        .unwrap();
        assert_eq!(p24.nodes_used(), 3, "24 ranks need three nodes");
    }

    #[test]
    fn socket_and_span_queries() {
        let p = Placement::place(&vayu_node(), 2, 4, Strategy::Block).unwrap();
        // 4 ranks on logical cores 0..4 all sit on socket 0: no spanning.
        assert!(!p.spans_sockets(0, 8, 4));
        assert_eq!(p.socket_occupancy(0, 8, 4), 4);
        let p8 = Placement::place(&vayu_node(), 2, 8, Strategy::Block).unwrap();
        assert!(p8.spans_sockets(0, 8, 4));
        assert_eq!(p8.socket_occupancy(0, 8, 4), 4);
    }
}
