//! `sim-platform` — node, hypervisor, filesystem and cluster models.
//!
//! Composes the network models of `sim-net` with CPU/NUMA/SMT models, the
//! three hypervisor behaviours (bare metal, VMware ESX, Xen) and shared
//! filesystem models into full [`ClusterSpec`] platforms. The presets in
//! [`presets`] reproduce the paper's Table I.

pub mod cluster;
pub mod cpu;
pub mod fs;
pub mod hypervisor;
pub mod node;
pub mod numa;
pub mod placement;
pub mod presets;

pub use cluster::{ClusterSpec, RankRates};
pub use cpu::CpuSpec;
pub use fs::{FsKind, FsModel};
pub use hypervisor::{HypervisorKind, HypervisorModel};
pub use node::NodeSpec;
pub use numa::NumaModel;
pub use placement::{Placement, PlacementError, Slot, Strategy};

#[cfg(test)]
mod proptests {
    //! Exhaustive small-space sweeps over the three platform presets —
    //! deterministic and dependency-free.
    use super::*;
    use crate::placement::Strategy as Place;

    fn clusters() -> [ClusterSpec; 3] {
        [presets::dcc(), presets::ec2(), presets::vayu()]
    }

    /// Block placement accounts for every rank exactly once and never
    /// exceeds per-node core counts.
    #[test]
    fn block_placement_well_formed() {
        for c in clusters() {
            for np in 1usize..64 {
                if np > c.total_logical_cores() {
                    continue;
                }
                let p = c.place(np, Place::Block).unwrap();
                assert_eq!(p.np(), np);
                assert_eq!(p.ranks_per_node.iter().sum::<usize>(), np);
                let lc = c.node.logical_cores();
                assert!(p.ranks_per_node.iter().all(|r| *r <= lc));
            }
        }
    }

    /// Spread placement balances within one rank.
    #[test]
    fn spread_is_balanced() {
        let c = presets::ec2();
        for np in 1usize..64 {
            if np.div_ceil(4) > c.node.logical_cores() {
                continue;
            }
            let p = c.place(np, Place::Spread { nodes: 4 }).unwrap();
            let used: Vec<usize> = p
                .ranks_per_node
                .iter()
                .copied()
                .filter(|x| *x > 0)
                .collect();
            let max = used.iter().max().unwrap();
            let min = used.iter().min().unwrap();
            assert!(max - min <= 1);
        }
    }

    /// Effective rates are positive and bounded by the hardware roofs.
    #[test]
    fn rates_bounded() {
        for c in clusters() {
            for np in 1usize..64 {
                if np > c.total_logical_cores() {
                    continue;
                }
                let p = c.place(np, Place::Block).unwrap();
                for r in c.rank_rates(&p) {
                    assert!(r.flops_rate > 0.0);
                    assert!(r.flops_rate <= c.node.cpu.core_flops_rate() + 1.0);
                    assert!(r.mem_rate > 0.0);
                    assert!(r.mem_rate <= c.node.cpu.mem_bw_per_socket + 1.0);
                }
            }
        }
    }

    /// Adding ranks to a node never increases any rank's memory rate.
    #[test]
    fn mem_rate_monotone_in_occupancy() {
        let c = presets::vayu();
        for np in 2usize..8 {
            let p_small = c.place(np - 1, Place::Block).unwrap();
            let p_big = c.place(np, Place::Block).unwrap();
            let r_small = c.rank_rates(&p_small)[0].mem_rate;
            let r_big = c.rank_rates(&p_big)[0].mem_rate;
            assert!(r_big <= r_small + 1.0);
        }
    }
}
