//! CPU and socket model.
//!
//! A [`CpuSpec`] captures the per-node processor resources that matter for
//! the study's workloads: clock rate and achievable flops per cycle (compute
//! roof), per-socket memory bandwidth (bandwidth roof), core/socket layout,
//! and whether the part exposes SMT ("HyperThreading") logical cores.
//!
//! Ranks placed on the node receive *effective* compute and memory rates via
//! [`CpuSpec::flops_rate`] and the NUMA model in [`crate::numa`]; both feed
//! the roofline compute-time formula in the MPI engine.

/// Description of one node's processor complex.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Marketing name, for reports ("Intel Xeon X5570").
    pub model: &'static str,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Sustained floating-point operations per cycle per core for the study's
    /// Fortran/C++ codes (well below the SIMD peak; these are memory-heavy,
    /// compiler-vectorized codes).
    pub flops_per_cycle: f64,
    /// Number of sockets.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Whether SMT/HyperThreading is enabled, doubling the logical core
    /// count (EC2 cc1.4xlarge exposes 16 logical cores on 8 physical).
    pub smt: bool,
    /// Throughput retained by EACH of two SMT siblings sharing a physical
    /// core, relative to owning the core alone. Table III shows MetUM gained
    /// essentially nothing from HyperThreading (rcomp 2.39 vs 1.17), so two
    /// siblings together deliver only ~1.04x one thread.
    pub smt_yield: f64,
    /// Sustained memory bandwidth per socket, bytes/second.
    pub mem_bw_per_socket: f64,
    /// Shared last-level cache per socket, bytes (8 MB on both Xeon parts).
    pub llc_bytes: u64,
}

impl CpuSpec {
    /// Intel Xeon X5570 (Nehalem-EP, 2.93 GHz) — Vayu and EC2 cc1.4xlarge.
    pub fn xeon_x5570(smt: bool) -> Self {
        CpuSpec {
            model: "Intel Xeon X5570",
            clock_ghz: 2.93,
            flops_per_cycle: 0.85,
            sockets: 2,
            cores_per_socket: 4,
            smt,
            smt_yield: 0.48,
            mem_bw_per_socket: 16.0e9,
            llc_bytes: 8 << 20,
        }
    }

    /// Intel Xeon E5520 (Nehalem-EP, 2.27 GHz) — the DCC blades.
    pub fn xeon_e5520() -> Self {
        CpuSpec {
            model: "Intel Xeon E5520",
            clock_ghz: 2.27,
            flops_per_cycle: 0.85,
            sockets: 2,
            cores_per_socket: 4,
            smt: false,
            smt_yield: 0.48,
            mem_bw_per_socket: 12.8e9,
            llc_bytes: 8 << 20,
        }
    }

    /// Physical cores on the node.
    pub fn physical_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Schedulable (logical) cores on the node.
    pub fn logical_cores(&self) -> usize {
        self.physical_cores() * if self.smt { 2 } else { 1 }
    }

    /// Peak flops rate of one core owning its physical core (flops/second).
    pub fn core_flops_rate(&self) -> f64 {
        self.clock_ghz * 1e9 * self.flops_per_cycle
    }

    /// Effective flops rate for a rank given how many ranks share its
    /// physical core (1 = exclusive, 2 = SMT siblings).
    pub fn flops_rate(&self, sharers_on_core: usize) -> f64 {
        match sharers_on_core {
            0 | 1 => self.core_flops_rate(),
            _ => self.core_flops_rate() * self.smt_yield,
        }
    }

    /// Effective per-rank memory bandwidth when `ranks_on_socket` ranks
    /// stream from the same socket's controllers: a single rank cannot
    /// saturate the socket (it reaches `single_rank_frac`), and multiple
    /// ranks share the socket bandwidth fairly.
    pub fn mem_rate(&self, ranks_on_socket: usize) -> f64 {
        const SINGLE_RANK_FRAC: f64 = 0.55;
        let ranks = ranks_on_socket.max(1) as f64;
        let aggregate = self.mem_bw_per_socket;
        let single = aggregate * SINGLE_RANK_FRAC;
        (aggregate / ranks).min(single)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_core_counts() {
        // Table I: 8 cores per node on Vayu/DCC; EC2 shows 16 logical.
        assert_eq!(CpuSpec::xeon_x5570(false).logical_cores(), 8);
        assert_eq!(CpuSpec::xeon_x5570(true).logical_cores(), 16);
        assert_eq!(CpuSpec::xeon_x5570(true).physical_cores(), 8);
        assert_eq!(CpuSpec::xeon_e5520().logical_cores(), 8);
    }

    #[test]
    fn clock_ratio_matches_paper() {
        // Paper: "the ratio of cycle times on the nodes of 1.3".
        let ratio = CpuSpec::xeon_x5570(false).clock_ghz / CpuSpec::xeon_e5520().clock_ghz;
        assert!((1.25..1.35).contains(&ratio));
    }

    #[test]
    fn smt_sharing_cuts_throughput() {
        let cpu = CpuSpec::xeon_x5570(true);
        let solo = cpu.flops_rate(1);
        let shared = cpu.flops_rate(2);
        assert!(shared < solo);
        // Table III: two siblings together deliver about what one thread
        // does alone ("little benefit was gained from hyperthreading").
        let combined = 2.0 * shared / solo;
        assert!((0.9..1.2).contains(&combined), "combined {combined}");
    }

    #[test]
    fn mem_rate_shares_fairly() {
        let cpu = CpuSpec::xeon_e5520();
        let one = cpu.mem_rate(1);
        let four = cpu.mem_rate(4);
        assert!(
            one < cpu.mem_bw_per_socket,
            "one rank can't saturate a socket"
        );
        assert!((four - cpu.mem_bw_per_socket / 4.0).abs() < 1.0);
        assert!(one > four);
        // Zero clamps to one.
        assert_eq!(cpu.mem_rate(0), one);
    }
}
