//! Shared filesystem models.
//!
//! Both applications read a large input at startup (1.6 GB MetUM dump,
//! 1.4 GB Chaste mesh) and the paper finds the filesystem matters: the same
//! read costs 4.5 s on Vayu's Lustre, 9.1 s on EC2's NFS and 37.8 s on DCC's
//! NFS (Table III). The model is a fair-share server pool plus a per-request
//! metadata latency.

use sim_net::FairShareResource;

/// Filesystem family, for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsKind {
    Nfs,
    Lustre,
    Local,
}

/// A shared filesystem seen by every node of a cluster.
#[derive(Debug, Clone)]
pub struct FsModel {
    pub kind: FsKind,
    pub name: &'static str,
    /// Read path capacity.
    pub read: FairShareResource,
    /// Write path capacity.
    pub write: FairShareResource,
    /// Per-operation metadata/RPC latency (seconds).
    pub open_latency: f64,
}

impl FsModel {
    /// DCC's NFS mount: all VM filesystems served from one external storage
    /// cluster through the vSwitch — the slowest path in the study
    /// (~42 MB/s effective single-stream read).
    pub fn nfs_dcc() -> Self {
        FsModel {
            kind: FsKind::Nfs,
            name: "NFS (DCC storage cluster)",
            read: FairShareResource::new(42.0e6, 1),
            write: FairShareResource::new(30.0e6, 1),
            open_latency: 2.0e-3,
        }
    }

    /// The StarCluster-provisioned NFS share on EC2: master instance exports
    /// over virtualized 10 GigE (~175 MB/s single stream).
    pub fn nfs_ec2() -> Self {
        FsModel {
            kind: FsKind::Nfs,
            name: "NFS (EC2 StarCluster master)",
            read: FairShareResource::new(175.0e6, 1),
            write: FairShareResource::new(120.0e6, 1),
            open_latency: 1.0e-3,
        }
    }

    /// Vayu's Lustre over the same QDR IB fabric: striped across OSTs, a
    /// single client stream sustains ~360 MB/s and multiple clients scale.
    pub fn lustre_vayu() -> Self {
        FsModel {
            kind: FsKind::Lustre,
            name: "Lustre (Vayu, QDR IB)",
            read: FairShareResource::new(2.88e9, 8),
            write: FairShareResource::new(2.0e9, 8),
            open_latency: 0.3e-3,
        }
    }

    /// Time for `clients` concurrent readers to each pull `bytes`.
    pub fn read_time(&self, bytes: u64, clients: usize) -> f64 {
        self.open_latency + self.read.transfer_time(bytes, clients)
    }

    /// Time for `clients` concurrent writers to each push `bytes`.
    pub fn write_time(&self, bytes: u64, clients: usize) -> f64 {
        self.open_latency + self.write.transfer_time(bytes, clients)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB_1_6: u64 = 1_600_000_000;

    #[test]
    fn dump_read_times_match_table3() {
        // Table III I/O row: Vayu 4.5 s, DCC 37.8 s, EC2 9.1 s for the
        // MetUM startup read (single reader).
        let vayu = FsModel::lustre_vayu().read_time(GB_1_6, 1);
        let dcc = FsModel::nfs_dcc().read_time(GB_1_6, 1);
        let ec2 = FsModel::nfs_ec2().read_time(GB_1_6, 1);
        assert!((3.5..6.0).contains(&vayu), "vayu {vayu}s");
        assert!((33.0..43.0).contains(&dcc), "dcc {dcc}s");
        assert!((7.5..11.0).contains(&ec2), "ec2 {ec2}s");
    }

    #[test]
    fn nfs_degrades_with_clients_lustre_scales() {
        let nfs = FsModel::nfs_dcc();
        let lustre = FsModel::lustre_vayu();
        let one = nfs.read_time(1 << 30, 1);
        let eight = nfs.read_time(1 << 30, 8);
        assert!(eight > one * 7.0, "NFS single server divides");
        let l1 = lustre.read_time(1 << 30, 1);
        let l8 = lustre.read_time(1 << 30, 8);
        assert!(l8 < l1 * 1.2, "Lustre stripes absorb 8 clients");
    }

    #[test]
    fn write_path_slower_than_read() {
        for fs in [
            FsModel::nfs_dcc(),
            FsModel::nfs_ec2(),
            FsModel::lustre_vayu(),
        ] {
            assert!(fs.write_time(1 << 28, 1) >= fs.read_time(1 << 28, 1));
        }
    }
}
