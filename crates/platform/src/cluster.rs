//! Cluster specification and per-rank effective rates.

use crate::fs::FsModel;
use crate::node::NodeSpec;
use crate::placement::{Placement, PlacementError, Strategy};
use sim_net::{JitterParams, Topology};

/// A complete platform: homogeneous nodes, an interconnect and a filesystem.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Short name used in every report ("vayu", "dcc", "ec2").
    pub name: &'static str,
    /// Number of nodes available to the job.
    pub nodes: usize,
    pub node: NodeSpec,
    pub topology: Topology,
    pub fs: FsModel,
}

/// Precomputed per-rank rates for one placement on one cluster: everything
/// the engine needs to turn a `Compute { flops, bytes }` op into time.
#[derive(Debug, Clone)]
pub struct RankRates {
    /// Effective floating-point rate, flops/s.
    pub flops_rate: f64,
    /// Effective memory streaming rate, bytes/s.
    pub mem_rate: f64,
    /// Node hosting the rank.
    pub node: usize,
    /// Compute-jitter model of the node's hypervisor.
    pub jitter: JitterParams,
}

impl ClusterSpec {
    /// Schedulable cores in the whole cluster.
    pub fn total_logical_cores(&self) -> usize {
        self.nodes * self.node.logical_cores()
    }

    /// Place `np` ranks using `strategy`.
    pub fn place(&self, np: usize, strategy: Strategy) -> Result<Placement, PlacementError> {
        Placement::place(&self.node, self.nodes, np, strategy)
    }

    /// Effective rates for every rank of a placement.
    pub fn rank_rates(&self, placement: &Placement) -> Vec<RankRates> {
        let pc = self.node.cpu.physical_cores();
        let cps = self.node.cpu.cores_per_socket;
        (0..placement.np())
            .map(|r| {
                let sharers = placement.core_sharers(r, pc);
                let socket_occ = placement.socket_occupancy(r, pc, cps);
                let spans = placement.spans_sockets(r, pc, cps);
                RankRates {
                    flops_rate: self.node.flops_rate(sharers),
                    mem_rate: self.node.mem_rate(socket_occ, spans),
                    node: placement.slots[r].node,
                    jitter: self.node.hypervisor.compute_jitter,
                }
            })
            .collect()
    }
}

impl RankRates {
    /// Roofline compute time for a chunk of work: bounded by the compute
    /// roof or the memory roof, whichever binds.
    pub fn compute_time(&self, flops: f64, bytes: f64) -> f64 {
        (flops / self.flops_rate).max(bytes / self.mem_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn rates_cover_every_rank() {
        let c = presets::vayu();
        let p = c.place(12, Strategy::Block).unwrap();
        let rates = c.rank_rates(&p);
        assert_eq!(rates.len(), 12);
        assert!(rates.iter().all(|r| r.flops_rate > 0.0 && r.mem_rate > 0.0));
    }

    #[test]
    fn ec2_smt_halves_flops_rate_at_full_subscription() {
        let c = presets::ec2();
        let p8 = c.place(8, Strategy::Block).unwrap();
        let p16 = c.place(16, Strategy::Block).unwrap();
        let r8 = c.rank_rates(&p8)[0].flops_rate;
        let r16 = c.rank_rates(&p16)[0].flops_rate;
        assert!((r16 / r8 - c.node.cpu.smt_yield).abs() < 1e-9);
    }

    #[test]
    fn roofline_picks_the_binding_roof() {
        let rates = RankRates {
            flops_rate: 1e9,
            mem_rate: 1e10,
            node: 0,
            jitter: JitterParams::NONE,
        };
        // Compute-bound chunk.
        assert_eq!(rates.compute_time(1e9, 1e3), 1.0);
        // Memory-bound chunk.
        assert_eq!(rates.compute_time(1e3, 1e10), 1.0);
    }
}
