//! The canonical query type and its content address.
//!
//! A [`Query`] is everything that determines a simulation outcome:
//! workload × platform × rank count × placement policy × noise seed. Two
//! queries that encode to the same bytes *are* the same question, so the
//! cache is keyed on a hash of a **canonical byte encoding** — fixed tag
//! bytes plus little-endian fields, no `serde`, no platform-dependent
//! layout. The encoding is versioned ([`QUERY_ENCODING_VERSION`]) and
//! decodable, which is what lets snapshots ship query records verbatim.
//!
//! The content address is 128 bits: an FNV-1a 64 stream hash and an
//! independent splitmix64-chained hash over the same bytes. Either half
//! colliding is plausible at fleet scale (birthday bound ~2^32); both
//! halves colliding at once is not. On top of that the cache stores the
//! decoded [`Query`] in every entry and compares it on lookup, so even a
//! full 128-bit collision degrades to a miss, never to a wrong answer.

use crate::error::AdvisorError;
use sim_des::splitmix64;
use sim_platform::{presets, ClusterSpec, Strategy};
use sim_sweep::fnv64;
use workloads::{Chaste, Class, Kernel, MetUm, Npb, Workload};

/// Bumped whenever the canonical byte encoding changes shape. Baked into
/// every encoding (and therefore every content hash and snapshot record):
/// old snapshots simply fail to match.
pub const QUERY_ENCODING_VERSION: u8 = 1;

/// The seed queries default to — the same base seed
/// `cloudsim::Experiment` uses, so a default-seed query reproduces the
/// legacy `advise()` numbers bit for bit.
pub const DEFAULT_QUERY_SEED: u64 = 0x5EED_0000;

/// Which workload a query asks about, in canonical (buildable) form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// A NAS Parallel Benchmark kernel at a problem class.
    Npb { kernel: Kernel, class: Class },
    /// The MetUM atmosphere benchmark at a timestep count.
    MetUm { timesteps: u32 },
    /// The Chaste cardiac benchmark.
    Chaste { timesteps: u32, cg_iters: u32 },
}

impl From<workloads::WorkloadDesc> for WorkloadId {
    fn from(d: workloads::WorkloadDesc) -> WorkloadId {
        match d {
            workloads::WorkloadDesc::Npb { kernel, class } => WorkloadId::Npb { kernel, class },
            workloads::WorkloadDesc::MetUm { timesteps } => WorkloadId::MetUm { timesteps },
            workloads::WorkloadDesc::Chaste {
                timesteps,
                cg_iters,
            } => WorkloadId::Chaste {
                timesteps,
                cg_iters,
            },
        }
    }
}

impl WorkloadId {
    /// Build the op programs for `np` ranks.
    pub fn build(&self, np: usize) -> sim_mpi::JobSpec {
        match *self {
            WorkloadId::Npb { kernel, class } => Npb::new(kernel, class).build(np),
            WorkloadId::MetUm { timesteps } => MetUm {
                timesteps: timesteps as usize,
            }
            .build(np),
            WorkloadId::Chaste {
                timesteps,
                cg_iters,
            } => Chaste {
                timesteps: timesteps as usize,
                cg_iters: cg_iters as usize,
            }
            .build(np),
        }
    }

    /// Resident memory per rank (drives memory-aware placement on EC2).
    pub fn memory_per_rank_bytes(&self, np: usize) -> u64 {
        match *self {
            WorkloadId::Npb { kernel, class } => Npb::new(kernel, class).memory_per_rank_bytes(np),
            WorkloadId::MetUm { timesteps } => MetUm {
                timesteps: timesteps as usize,
            }
            .memory_per_rank_bytes(np),
            WorkloadId::Chaste {
                timesteps,
                cg_iters,
            } => Chaste {
                timesteps: timesteps as usize,
                cg_iters: cg_iters as usize,
            }
            .memory_per_rank_bytes(np),
        }
    }

    /// Report name ("cg.A", "metum.n320l70.18steps", ...).
    pub fn name(&self) -> String {
        match *self {
            WorkloadId::Npb { kernel, class } => Npb::new(kernel, class).name(),
            WorkloadId::MetUm { timesteps } => MetUm {
                timesteps: timesteps as usize,
            }
            .name(),
            WorkloadId::Chaste {
                timesteps,
                cg_iters,
            } => Chaste {
                timesteps: timesteps as usize,
                cg_iters: cg_iters as usize,
            }
            .name(),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            WorkloadId::Npb { kernel, class } => {
                out.push(0x01);
                out.push(kernel_tag(kernel));
                out.push(class_tag(class));
            }
            WorkloadId::MetUm { timesteps } => {
                out.push(0x02);
                out.extend_from_slice(&timesteps.to_le_bytes());
            }
            WorkloadId::Chaste {
                timesteps,
                cg_iters,
            } => {
                out.push(0x03);
                out.extend_from_slice(&timesteps.to_le_bytes());
                out.extend_from_slice(&cg_iters.to_le_bytes());
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<WorkloadId, AdvisorError> {
        match r.u8()? {
            0x01 => Ok(WorkloadId::Npb {
                kernel: kernel_from_tag(r.u8()?)?,
                class: class_from_tag(r.u8()?)?,
            }),
            0x02 => Ok(WorkloadId::MetUm {
                timesteps: r.u32()?,
            }),
            0x03 => Ok(WorkloadId::Chaste {
                timesteps: r.u32()?,
                cg_iters: r.u32()?,
            }),
            t => Err(AdvisorError::SnapshotCorrupt(format!(
                "unknown workload tag {t:#x}"
            ))),
        }
    }
}

/// Explicit tag tables: the canonical encoding must not shift if someone
/// reorders the upstream enums.
fn kernel_tag(k: Kernel) -> u8 {
    match k {
        Kernel::Bt => 0,
        Kernel::Cg => 1,
        Kernel::Ep => 2,
        Kernel::Ft => 3,
        Kernel::Is => 4,
        Kernel::Lu => 5,
        Kernel::Mg => 6,
        Kernel::Sp => 7,
    }
}

fn kernel_from_tag(t: u8) -> Result<Kernel, AdvisorError> {
    Ok(match t {
        0 => Kernel::Bt,
        1 => Kernel::Cg,
        2 => Kernel::Ep,
        3 => Kernel::Ft,
        4 => Kernel::Is,
        5 => Kernel::Lu,
        6 => Kernel::Mg,
        7 => Kernel::Sp,
        _ => {
            return Err(AdvisorError::SnapshotCorrupt(format!(
                "unknown kernel tag {t}"
            )))
        }
    })
}

fn class_tag(c: Class) -> u8 {
    match c {
        Class::S => 0,
        Class::W => 1,
        Class::A => 2,
        Class::B => 3,
        Class::C => 4,
    }
}

fn class_from_tag(t: u8) -> Result<Class, AdvisorError> {
    Ok(match t {
        0 => Class::S,
        1 => Class::W,
        2 => Class::A,
        3 => Class::B,
        4 => Class::C,
        _ => {
            return Err(AdvisorError::SnapshotCorrupt(format!(
                "unknown class tag {t}"
            )))
        }
    })
}

/// The three platforms of the study (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformId {
    /// Vayu — the NCI supercomputer.
    Vayu,
    /// DCC — the private cloud.
    Dcc,
    /// EC2 — the public cloud (cc1.4xlarge cluster instances).
    Ec2,
}

impl PlatformId {
    /// All platforms, in the canonical report order.
    pub const ALL: [PlatformId; 3] = [PlatformId::Vayu, PlatformId::Dcc, PlatformId::Ec2];

    /// The platform's `ClusterSpec`.
    pub fn cluster(&self) -> ClusterSpec {
        match self {
            PlatformId::Vayu => presets::vayu(),
            PlatformId::Dcc => presets::dcc(),
            PlatformId::Ec2 => presets::ec2(),
        }
    }

    /// Short report name.
    pub fn name(&self) -> &'static str {
        match self {
            PlatformId::Vayu => "vayu",
            PlatformId::Dcc => "dcc",
            PlatformId::Ec2 => "ec2",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            PlatformId::Vayu => 0,
            PlatformId::Dcc => 1,
            PlatformId::Ec2 => 2,
        }
    }

    fn from_tag(t: u8) -> Result<PlatformId, AdvisorError> {
        Ok(match t {
            0 => PlatformId::Vayu,
            1 => PlatformId::Dcc,
            2 => PlatformId::Ec2,
            _ => {
                return Err(AdvisorError::SnapshotCorrupt(format!(
                    "unknown platform tag {t}"
                )))
            }
        })
    }
}

/// How ranks are placed for the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryPolicy {
    /// The legacy `advise()` policy: memory-aware block packing on EC2
    /// when the workload declares a footprint, plain block otherwise.
    Auto,
    /// Plain block packing everywhere.
    Block,
    /// Spread over exactly `nodes` nodes (the paper's "EC2-4" runs).
    Spread { nodes: u32 },
}

impl QueryPolicy {
    /// Resolve to the engine's placement strategy for a concrete
    /// workload/platform/np.
    pub fn strategy(&self, workload: &WorkloadId, platform: PlatformId, np: usize) -> Strategy {
        match *self {
            QueryPolicy::Auto => {
                let mem = workload.memory_per_rank_bytes(np);
                if mem > 0 && platform == PlatformId::Ec2 {
                    Strategy::BlockMemoryAware {
                        per_rank_bytes: mem,
                    }
                } else {
                    Strategy::Block
                }
            }
            QueryPolicy::Block => Strategy::Block,
            QueryPolicy::Spread { nodes } => Strategy::Spread {
                nodes: nodes as usize,
            },
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            QueryPolicy::Auto => out.push(0x00),
            QueryPolicy::Block => out.push(0x01),
            QueryPolicy::Spread { nodes } => {
                out.push(0x02);
                out.extend_from_slice(&nodes.to_le_bytes());
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<QueryPolicy, AdvisorError> {
        match r.u8()? {
            0x00 => Ok(QueryPolicy::Auto),
            0x01 => Ok(QueryPolicy::Block),
            0x02 => Ok(QueryPolicy::Spread { nodes: r.u32()? }),
            t => Err(AdvisorError::SnapshotCorrupt(format!(
                "unknown policy tag {t:#x}"
            ))),
        }
    }
}

/// One capacity-planning question: workload × platform × ranks × policy ×
/// seed. Everything else about a simulation is derived from these five.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Query {
    pub workload: WorkloadId,
    pub platform: PlatformId,
    pub np: u32,
    pub policy: QueryPolicy,
    pub seed: u64,
}

/// The 128-bit content address of a query's canonical encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryKey(pub u128);

impl QueryKey {
    /// The 64 bits the cache uses for shard selection.
    pub fn shard_bits(&self) -> u64 {
        (self.0 >> 64) as u64
    }
}

impl Query {
    /// A query with the legacy advisor's defaults (auto policy, the
    /// `Experiment` base seed).
    pub fn new(workload: WorkloadId, platform: PlatformId, np: u32) -> Query {
        Query {
            workload,
            platform,
            np,
            policy: QueryPolicy::Auto,
            seed: DEFAULT_QUERY_SEED,
        }
    }

    pub fn with_policy(mut self, policy: QueryPolicy) -> Query {
        self.policy = policy;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Query {
        self.seed = seed;
        self
    }

    /// Cheap structural validation; full program validation happens in the
    /// engine on first build.
    pub fn validate(&self) -> Result<(), AdvisorError> {
        if self.np == 0 {
            return Err(AdvisorError::InvalidQuery("np must be >= 1".into()));
        }
        if let QueryPolicy::Spread { nodes: 0 } = self.policy {
            return Err(AdvisorError::InvalidQuery(
                "Spread policy needs >= 1 node".into(),
            ));
        }
        Ok(())
    }

    /// The canonical byte encoding: version, workload, platform, np,
    /// policy, seed — fixed tags, little-endian fields.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.push(QUERY_ENCODING_VERSION);
        self.workload.encode(&mut out);
        out.push(self.platform.tag());
        out.extend_from_slice(&self.np.to_le_bytes());
        self.policy.encode(&mut out);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out
    }

    /// Decode a canonical encoding (snapshot records). Rejects trailing
    /// garbage: a record is exactly one query.
    pub fn decode_canonical(bytes: &[u8]) -> Result<Query, AdvisorError> {
        let mut r = Reader { bytes, pos: 0 };
        let ver = r.u8()?;
        if ver != QUERY_ENCODING_VERSION {
            return Err(AdvisorError::SnapshotCorrupt(format!(
                "query encoding version {ver} (expected {QUERY_ENCODING_VERSION})"
            )));
        }
        let workload = WorkloadId::decode(&mut r)?;
        let platform = PlatformId::from_tag(r.u8()?)?;
        let np = r.u32()?;
        let policy = QueryPolicy::decode(&mut r)?;
        let seed = r.u64()?;
        if r.pos != bytes.len() {
            return Err(AdvisorError::SnapshotCorrupt(format!(
                "{} trailing bytes after query record",
                bytes.len() - r.pos
            )));
        }
        Ok(Query {
            workload,
            platform,
            np,
            policy,
            seed,
        })
    }

    /// The content address: two independent 64-bit hashes of the
    /// canonical bytes (FNV-1a and a splitmix64 chain).
    pub fn key(&self) -> QueryKey {
        let bytes = self.canonical_bytes();
        let fnv = fnv64(&bytes);
        let mut mix = 0x9E37_79B9_7F4A_7C15u64;
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            word[7] ^= chunk.len() as u8; // length-bind the final partial word
            mix = splitmix64(mix ^ u64::from_le_bytes(word));
        }
        QueryKey(((fnv as u128) << 64) | mix as u128)
    }
}

/// Minimal cursor over a byte slice with typed reads.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], AdvisorError> {
        if self.pos + n > self.bytes.len() {
            return Err(AdvisorError::SnapshotCorrupt(format!(
                "truncated record: wanted {n} bytes at offset {}",
                self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, AdvisorError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, AdvisorError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, AdvisorError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }
}

/// Every NPB kernel × class combination plus the two applications —
/// convenient fleet-building fodder for tests, benches and examples.
pub fn all_workloads() -> Vec<WorkloadId> {
    let mut ids = Vec::new();
    for kernel in [
        Kernel::Bt,
        Kernel::Cg,
        Kernel::Ep,
        Kernel::Ft,
        Kernel::Is,
        Kernel::Lu,
        Kernel::Mg,
        Kernel::Sp,
    ] {
        for class in [Class::S, Class::W, Class::A, Class::B, Class::C] {
            ids.push(WorkloadId::Npb { kernel, class });
        }
    }
    ids.push(WorkloadId::MetUm { timesteps: 18 });
    ids.push(WorkloadId::Chaste {
        timesteps: 250,
        cg_iters: 30,
    });
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Query {
        Query::new(
            WorkloadId::Npb {
                kernel: Kernel::Cg,
                class: Class::A,
            },
            PlatformId::Ec2,
            32,
        )
    }

    #[test]
    fn encoding_round_trips() {
        let queries = [
            sample(),
            sample().with_seed(77).with_policy(QueryPolicy::Block),
            Query::new(WorkloadId::MetUm { timesteps: 18 }, PlatformId::Vayu, 64)
                .with_policy(QueryPolicy::Spread { nodes: 4 }),
            Query::new(
                WorkloadId::Chaste {
                    timesteps: 250,
                    cg_iters: 30,
                },
                PlatformId::Dcc,
                8,
            ),
        ];
        for q in queries {
            let bytes = q.canonical_bytes();
            let back = Query::decode_canonical(&bytes).unwrap();
            assert_eq!(q, back);
            assert_eq!(q.key(), back.key());
        }
    }

    #[test]
    fn decode_rejects_trailing_and_truncated() {
        let mut bytes = sample().canonical_bytes();
        bytes.push(0);
        assert!(matches!(
            Query::decode_canonical(&bytes),
            Err(AdvisorError::SnapshotCorrupt(_))
        ));
        let bytes = sample().canonical_bytes();
        assert!(matches!(
            Query::decode_canonical(&bytes[..bytes.len() - 1]),
            Err(AdvisorError::SnapshotCorrupt(_))
        ));
    }

    #[test]
    fn every_field_changes_the_key() {
        let base = sample();
        let variants = [
            base.with_seed(1),
            base.with_policy(QueryPolicy::Block),
            Query { np: 33, ..base },
            Query {
                platform: PlatformId::Dcc,
                ..base
            },
            Query {
                workload: WorkloadId::Npb {
                    kernel: Kernel::Mg,
                    class: Class::A,
                },
                ..base
            },
        ];
        for v in variants {
            assert_ne!(base.key(), v.key(), "{v:?}");
        }
    }

    #[test]
    fn validate_catches_degenerate_queries() {
        let mut q = sample();
        q.np = 0;
        assert!(matches!(q.validate(), Err(AdvisorError::InvalidQuery(_))));
        let q = sample().with_policy(QueryPolicy::Spread { nodes: 0 });
        assert!(matches!(q.validate(), Err(AdvisorError::InvalidQuery(_))));
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn tag_tables_round_trip() {
        for k in [
            Kernel::Bt,
            Kernel::Cg,
            Kernel::Ep,
            Kernel::Ft,
            Kernel::Is,
            Kernel::Lu,
            Kernel::Mg,
            Kernel::Sp,
        ] {
            assert_eq!(kernel_from_tag(kernel_tag(k)).unwrap(), k);
        }
        for c in [Class::S, Class::W, Class::A, Class::B, Class::C] {
            assert_eq!(class_from_tag(class_tag(c)).unwrap(), c);
        }
        for p in PlatformId::ALL {
            assert_eq!(PlatformId::from_tag(p.tag()).unwrap(), p);
        }
    }
}
