//! The sharded content-addressed verdict cache.
//!
//! A striped `RwLock` map: the top bits of the [`QueryKey`] pick one of
//! `shards` independent stripes, so concurrent fleet evaluation mostly
//! takes uncontended locks. Each stripe is a bounded LRU — entries carry
//! an atomic last-touched stamp so a read-locked hit can bump recency
//! without upgrading to a write lock; inserts past capacity evict the
//! stalest entry (ties broken by key, so eviction is deterministic for a
//! deterministic query order).
//!
//! Hits never alias: the stored [`Query`] is compared on every lookup, so
//! even a full 128-bit content-hash collision reads as a miss (counted in
//! [`CacheStats::collisions`]) rather than returning another query's
//! verdict.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::query::{Query, QueryKey};
use crate::service::Verdict;

/// Default number of lock stripes.
pub const DEFAULT_SHARDS: usize = 16;
/// Default per-stripe entry bound (total default capacity = 16 × 4096).
pub const DEFAULT_SHARD_CAPACITY: usize = 4096;

/// Monotonic counters describing cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
    /// Lookups whose 128-bit key matched but whose query did not — the
    /// "this should never happen" counter.
    pub collisions: u64,
    /// Entries resident right now.
    pub len: usize,
}

struct Entry {
    query: Query,
    verdict: Verdict,
    touched: AtomicU64,
}

struct Shard {
    map: HashMap<u128, Entry>,
}

/// Sharded bounded-LRU map from query content hash to verdict.
pub struct VerdictCache {
    shards: Vec<RwLock<Shard>>,
    shard_capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    collisions: AtomicU64,
}

/// Recover from a poisoned lock instead of propagating the panic: the
/// protected state is a plain map mutated in small all-or-nothing steps,
/// so the worst a panicking peer can leave behind is a missing entry.
fn read_lock(l: &RwLock<Shard>) -> std::sync::RwLockReadGuard<'_, Shard> {
    l.read().unwrap_or_else(|p| p.into_inner())
}

fn write_lock(l: &RwLock<Shard>) -> std::sync::RwLockWriteGuard<'_, Shard> {
    l.write().unwrap_or_else(|p| p.into_inner())
}

impl VerdictCache {
    pub fn new(shards: usize, shard_capacity: usize) -> VerdictCache {
        let shards = shards.max(1);
        VerdictCache {
            shards: (0..shards)
                .map(|_| {
                    RwLock::new(Shard {
                        map: HashMap::new(),
                    })
                })
                .collect(),
            shard_capacity: shard_capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: QueryKey) -> &RwLock<Shard> {
        let i = (key.shard_bits() % self.shards.len() as u64) as usize;
        &self.shards[i]
    }

    /// Look `query` up under `key`. A hit bumps the entry's recency.
    pub fn get(&self, key: QueryKey, query: &Query) -> Option<Verdict> {
        let shard = read_lock(self.shard_of(key));
        match shard.map.get(&key.0) {
            Some(e) if e.query == *query => {
                let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                e.touched.store(stamp, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.verdict)
            }
            Some(_) => {
                self.collisions.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting the least-recently-used
    /// entry of the stripe if it is full. A key collision with a
    /// different query leaves the resident entry in place — first writer
    /// wins, and the counter records that the slot was contested.
    pub fn insert(&self, key: QueryKey, query: Query, verdict: Verdict) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = write_lock(self.shard_of(key));
        if let Some(e) = shard.map.get_mut(&key.0) {
            if e.query == query {
                e.verdict = verdict;
                e.touched.store(stamp, Ordering::Relaxed);
            } else {
                self.collisions.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        if shard.map.len() >= self.shard_capacity {
            // Evict the stalest entry; ties (possible when stamps race)
            // break toward the smaller key so the choice is stable.
            if let Some(&victim) = shard
                .map
                .iter()
                .min_by_key(|(k, e)| (e.touched.load(Ordering::Relaxed), **k))
                .map(|(k, _)| k)
            {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            key.0,
            Entry {
                query,
                verdict,
                touched: AtomicU64::new(stamp),
            },
        );
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            len: self.len(),
        }
    }

    /// Resident entries across all stripes.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| read_lock(s).map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (counters keep accumulating).
    pub fn clear(&self) {
        for s in &self.shards {
            write_lock(s).map.clear();
        }
    }

    /// All resident `(query, verdict)` pairs sorted by content key — the
    /// deterministic iteration order snapshots are written in.
    pub fn entries_sorted(&self) -> Vec<(Query, Verdict)> {
        let mut all: Vec<(u128, Query, Verdict)> = Vec::with_capacity(self.len());
        for s in &self.shards {
            let shard = read_lock(s);
            all.extend(shard.map.iter().map(|(k, e)| (*k, e.query, e.verdict)));
        }
        all.sort_by_key(|(k, _, _)| *k);
        all.into_iter().map(|(_, q, v)| (q, v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{PlatformId, WorkloadId};
    use workloads::{Class, Kernel};

    fn q(np: u32, seed: u64) -> Query {
        Query::new(
            WorkloadId::Npb {
                kernel: Kernel::Ep,
                class: Class::S,
            },
            PlatformId::Vayu,
            np,
        )
        .with_seed(seed)
    }

    fn v(x: f64) -> Verdict {
        Verdict {
            elapsed_secs: x,
            nodes: 1,
            on_demand_cost: 0.0,
            spot_cost: 0.0,
            comm_pct: 0.0,
            io_pct: 0.0,
            collective_frac: 0.0,
            imbalance_pct: 0.0,
            result_digest: x.to_bits(),
        }
    }

    #[test]
    fn hit_miss_and_counters() {
        let c = VerdictCache::new(4, 16);
        let a = q(2, 1);
        assert_eq!(c.get(a.key(), &a), None);
        c.insert(a.key(), a, v(1.0));
        assert_eq!(c.get(a.key(), &a), Some(v(1.0)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.len), (1, 1, 1, 1));
    }

    #[test]
    fn lru_evicts_stalest_within_a_stripe() {
        // Single stripe, capacity 2: insert three, touching the first in
        // between — the untouched second entry must be the victim.
        let c = VerdictCache::new(1, 2);
        let (a, b, d) = (q(2, 1), q(4, 2), q(8, 3));
        c.insert(a.key(), a, v(1.0));
        c.insert(b.key(), b, v(2.0));
        assert_eq!(c.get(a.key(), &a), Some(v(1.0))); // bump a
        c.insert(d.key(), d, v(3.0));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.get(a.key(), &a), Some(v(1.0)));
        assert_eq!(c.get(b.key(), &b), None, "b was stalest");
        assert_eq!(c.get(d.key(), &d), Some(v(3.0)));
    }

    #[test]
    fn entries_sorted_is_deterministic() {
        let c = VerdictCache::new(8, 64);
        let queries: Vec<Query> = (1..=32).map(|i| q(i, i as u64)).collect();
        for (i, query) in queries.iter().enumerate() {
            c.insert(query.key(), *query, v(i as f64));
        }
        let a = c.entries_sorted();
        let b = c.entries_sorted();
        assert_eq!(a.len(), 32);
        assert_eq!(a, b);
        let mut keys: Vec<u128> = a.iter().map(|(q, _)| q.key().0).collect();
        let sorted = keys.clone();
        keys.sort_unstable();
        assert_eq!(keys, sorted, "entries come out key-ordered");
    }
}
