//! The advisor service: memoized what-if evaluation at interactive latency.
//!
//! [`AdvisorService::evaluate`] answers one [`Query`] — cache hit in
//! sub-microseconds, cache miss by running the simulator once and
//! memoizing the compact [`Verdict`]. Three layers make repeated and
//! near-duplicate queries cheap:
//!
//! * the **content-addressed cache** ([`crate::cache::VerdictCache`]):
//!   exact repeats never re-simulate;
//! * the **program cache**: a near-duplicate query ("same job, other
//!   platform", "same mix, different seed") reuses the already-built op
//!   programs through the engine's `Program::rewind` machinery instead of
//!   regenerating the workload — for big programs, generation is a large
//!   share of cold-query cost;
//! * **fleet evaluation** ([`AdvisorService::evaluate_fleet`]): batches
//!   shard deterministically over threads via `sim-sweep`, with a fold
//!   order that is bit-identical at any worker count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use sim_ipm::profile_run;
use sim_mpi::{run_job, JobSpec, NullSink, SimConfig, SimResult};
use sim_sweep::{fnv64, sweep, MergedDigest, SweepOpts};
use workloads::{Class, Kernel};

use crate::cache::{CacheStats, VerdictCache, DEFAULT_SHARDS, DEFAULT_SHARD_CAPACITY};
use crate::error::AdvisorError;
use crate::query::{PlatformId, Query, WorkloadId, DEFAULT_QUERY_SEED};
use crate::AdvisorResult;

/// The compact answer to one query: what the simulator predicts, reduced
/// to the fields capacity planning needs, plus a digest of the full
/// `SimResult` so equivalence can be asserted without storing the per-rank
/// ledgers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Predicted job walltime, seconds.
    pub elapsed_secs: f64,
    /// Nodes the placement actually used.
    pub nodes: u32,
    /// On-demand dollars for the run (2012 pricing).
    pub on_demand_cost: f64,
    /// Spot-market dollars for the run.
    pub spot_cost: f64,
    /// Mean % of walltime in MPI — the contention signal.
    pub comm_pct: f64,
    /// Mean % of walltime in file I/O.
    pub io_pct: f64,
    /// Of the MPI time, the fraction in collectives, 0..1.
    pub collective_frac: f64,
    /// Compute load imbalance, percent.
    pub imbalance_pct: f64,
    /// FNV-64 digest of the underlying `SimResult` (elapsed, per-rank
    /// ledgers, fault counters) — the bit-exactness witness.
    pub result_digest: u64,
}

impl Verdict {
    /// Fixed-width canonical encoding (little-endian, f64 as raw bits).
    pub fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.elapsed_secs.to_bits().to_le_bytes());
        out.extend_from_slice(&self.nodes.to_le_bytes());
        out.extend_from_slice(&self.on_demand_cost.to_bits().to_le_bytes());
        out.extend_from_slice(&self.spot_cost.to_bits().to_le_bytes());
        out.extend_from_slice(&self.comm_pct.to_bits().to_le_bytes());
        out.extend_from_slice(&self.io_pct.to_bits().to_le_bytes());
        out.extend_from_slice(&self.collective_frac.to_bits().to_le_bytes());
        out.extend_from_slice(&self.imbalance_pct.to_bits().to_le_bytes());
        out.extend_from_slice(&self.result_digest.to_le_bytes());
    }

    /// Bytes [`Verdict::encode_to`] emits.
    pub const ENCODED_LEN: usize = 8 * 8 + 4;

    /// Decode a fixed-width record.
    pub fn decode(bytes: &[u8]) -> Result<Verdict, AdvisorError> {
        if bytes.len() != Self::ENCODED_LEN {
            return Err(AdvisorError::SnapshotCorrupt(format!(
                "verdict record is {} bytes, expected {}",
                bytes.len(),
                Self::ENCODED_LEN
            )));
        }
        let f = |at: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[at..at + 8]);
            f64::from_bits(u64::from_le_bytes(b))
        };
        let mut nb = [0u8; 4];
        nb.copy_from_slice(&bytes[8..12]);
        let mut db = [0u8; 8];
        db.copy_from_slice(&bytes[60..68]);
        Ok(Verdict {
            elapsed_secs: f(0),
            nodes: u32::from_le_bytes(nb),
            on_demand_cost: f(12),
            spot_cost: f(20),
            comm_pct: f(28),
            io_pct: f(36),
            collective_frac: f(44),
            imbalance_pct: f(52),
            result_digest: u64::from_le_bytes(db),
        })
    }

    /// A digest of the verdict itself (for fleet digests and equivalence
    /// checks): FNV over the canonical encoding, so two verdicts digest
    /// equal iff they are bit-identical.
    pub fn content_digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(Self::ENCODED_LEN);
        self.encode_to(&mut bytes);
        fnv64(&bytes)
    }
}

/// Digest of a full `SimResult`: elapsed, every rank ledger, and the
/// fault/recovery counters — everything downstream consumers can observe.
pub fn sim_result_digest(res: &SimResult) -> u64 {
    let mut bytes = Vec::with_capacity(16 + res.ranks.len() * 40);
    bytes.extend_from_slice(&res.elapsed.as_secs_f64().to_bits().to_le_bytes());
    bytes.extend_from_slice(&res.ops_executed.to_le_bytes());
    for r in &res.ranks {
        for d in [r.wall, r.comp, r.comm, r.io, r.fault] {
            bytes.extend_from_slice(&d.as_secs_f64().to_bits().to_le_bytes());
        }
    }
    for c in [
        res.restarts,
        res.rollbacks,
        res.shrinks,
        res.sdc_detected,
        res.sdc_undetected,
    ] {
        bytes.extend_from_slice(&c.to_le_bytes());
    }
    fnv64(&bytes)
}

/// Counters for the incremental re-simulation layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Programs generated from scratch.
    pub built: u64,
    /// Queries that rewound an already-built program.
    pub reused: u64,
}

/// Bounded pool of built op programs keyed by `(workload, np)`. A program
/// is checked out for the duration of one simulation (the engine needs
/// `&mut` to stream it) and checked back in after; concurrent queries for
/// the same key simply build a second copy rather than serializing.
struct ProgramCache {
    slots: Mutex<std::collections::HashMap<(WorkloadId, u32), JobSpec>>,
    capacity: usize,
    built: AtomicU64,
    reused: AtomicU64,
}

impl ProgramCache {
    fn new(capacity: usize) -> ProgramCache {
        ProgramCache {
            slots: Mutex::new(std::collections::HashMap::new()),
            capacity: capacity.max(1),
            built: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    fn lock(
        &self,
    ) -> std::sync::MutexGuard<'_, std::collections::HashMap<(WorkloadId, u32), JobSpec>> {
        self.slots.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Take a program for `(workload, np)` out of the pool, building it
    /// if absent. The engine rewinds programs at run start, so a pooled
    /// program replays the exact op stream a fresh build would produce.
    fn checkout(&self, workload: &WorkloadId, np: u32) -> JobSpec {
        if let Some(job) = self.lock().remove(&(*workload, np)) {
            self.reused.fetch_add(1, Ordering::Relaxed);
            return job;
        }
        self.built.fetch_add(1, Ordering::Relaxed);
        workload.build(np as usize)
    }

    /// Return a program after a run. If the pool is full or a concurrent
    /// query already returned a copy for the same key, this one is
    /// dropped.
    fn checkin(&self, workload: &WorkloadId, np: u32, job: JobSpec) {
        let mut slots = self.lock();
        if slots.len() >= self.capacity && !slots.contains_key(&(*workload, np)) {
            return;
        }
        slots.entry((*workload, np)).or_insert(job);
    }

    fn stats(&self) -> ProgramStats {
        ProgramStats {
            built: self.built.load(Ordering::Relaxed),
            reused: self.reused.load(Ordering::Relaxed),
        }
    }
}

/// A ranked per-platform forecast inside an [`Advice`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedForecast {
    pub platform: PlatformId,
    pub verdict: Verdict,
}

/// The communication/memory signature of the profiled (supercomputer)
/// run, as fractions in 0..1 — the classifier input the legacy
/// `WorkloadProfile` exposes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryProfile {
    pub comm_frac: f64,
    pub collective_frac: f64,
    pub io_frac: f64,
    pub imbalance: f64,
}

/// A full three-platform recommendation, service-side.
#[derive(Debug, Clone)]
pub struct Advice {
    /// Signature extracted from the Vayu (supercomputer) run.
    pub profile: QueryProfile,
    /// Forecasts sorted fastest-first (stable sort over the canonical
    /// platform order, exactly as the legacy `advise()` sorted).
    pub ranked: Vec<RankedForecast>,
    /// Index into `ranked` of the cheapest on-demand option.
    pub cheapest: usize,
    /// Index into `ranked` of the fastest option (always 0).
    pub fastest: usize,
}

/// The outcome of a batched fleet evaluation.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One verdict per query, in query order.
    pub verdicts: Vec<Verdict>,
    /// Order-independent digest binding query index to verdict bits —
    /// identical for every thread count and for cached vs uncached runs.
    pub digest: u64,
}

/// The advisor service. Cheap to construct; share one instance (`&self`
/// everywhere, fully thread-safe) so the caches amortize.
pub struct AdvisorService {
    cache: VerdictCache,
    programs: ProgramCache,
    caching: bool,
}

impl Default for AdvisorService {
    fn default() -> Self {
        Self::new()
    }
}

impl AdvisorService {
    /// Service with default cache geometry (16 stripes × 4096 entries).
    pub fn new() -> AdvisorService {
        Self::with_capacity(DEFAULT_SHARDS, DEFAULT_SHARD_CAPACITY)
    }

    /// Service with explicit cache geometry.
    pub fn with_capacity(shards: usize, shard_capacity: usize) -> AdvisorService {
        AdvisorService {
            cache: VerdictCache::new(shards, shard_capacity),
            programs: ProgramCache::new(64),
            caching: true,
        }
    }

    /// A service whose verdict cache is disabled — every query
    /// re-simulates. The equivalence foil for cache-on testing (the
    /// program-reuse layer stays on; it is exercised by the same tests).
    pub fn without_cache(mut self) -> AdvisorService {
        self.caching = false;
        self
    }

    /// Answer one query, consulting the verdict cache.
    pub fn evaluate(&self, query: &Query) -> AdvisorResult<Verdict> {
        query.validate()?;
        if !self.caching {
            return self.simulate(query);
        }
        let key = query.key();
        if let Some(v) = self.cache.get(key, query) {
            return Ok(v);
        }
        let v = self.simulate(query)?;
        self.cache.insert(key, *query, v);
        Ok(v)
    }

    /// Answer one query bypassing the verdict cache entirely (neither
    /// read nor populated) — the cache-off reference path.
    pub fn evaluate_uncached(&self, query: &Query) -> AdvisorResult<Verdict> {
        query.validate()?;
        self.simulate(query)
    }

    fn simulate(&self, query: &Query) -> AdvisorResult<Verdict> {
        let cluster = query.platform.cluster();
        let strategy = query
            .policy
            .strategy(&query.workload, query.platform, query.np as usize);
        let cfg = SimConfig {
            seed: query.seed,
            strategy,
            validate: true,
            faults: None,
            background: None,
        };
        let mut job = self.programs.checkout(&query.workload, query.np);
        let outcome = profile_run(&mut job, &cluster, &cfg);
        self.programs.checkin(&query.workload, query.np, job);
        let (res, rep) = outcome?;
        let price = sim_sched::pricing::PriceModel::for_platform(&cluster);
        let nodes = res.placement.nodes_used();
        Ok(Verdict {
            elapsed_secs: res.elapsed_secs(),
            nodes: nodes as u32,
            on_demand_cost: price.cost(nodes, res.elapsed_secs()),
            spot_cost: price.spot_cost(nodes, res.elapsed_secs()),
            comm_pct: res.comm_pct(),
            io_pct: res.io_pct(),
            collective_frac: rep.global.collective_frac(),
            imbalance_pct: rep.global.imbalance_pct(),
            result_digest: sim_result_digest(&res),
        })
    }

    /// The legacy `advise()` workflow on the service: profile on the
    /// supercomputer, forecast all three platforms, rank by time and by
    /// dollars. Each platform leg is one cacheable query, so a repeated
    /// recommendation costs three cache hits.
    pub fn recommend(&self, workload: WorkloadId, np: u32) -> AdvisorResult<Advice> {
        let mut ranked = Vec::with_capacity(PlatformId::ALL.len());
        let mut profile = None;
        for platform in PlatformId::ALL {
            let verdict = self.evaluate(&Query::new(workload, platform, np))?;
            if platform == PlatformId::Vayu {
                profile = Some(QueryProfile {
                    comm_frac: verdict.comm_pct / 100.0,
                    collective_frac: verdict.collective_frac,
                    io_frac: verdict.io_pct / 100.0,
                    imbalance: verdict.imbalance_pct / 100.0,
                });
            }
            ranked.push(RankedForecast { platform, verdict });
        }
        // Stable sort by elapsed over the canonical platform order, then
        // last-minimum cost selection: both mirror the legacy `advise()`
        // (`sort_by` + `Iterator::min_by`) so delegation is byte-identical.
        ranked.sort_by(|a, b| a.verdict.elapsed_secs.total_cmp(&b.verdict.elapsed_secs));
        let cheapest = ranked
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.verdict
                    .on_demand_cost
                    .total_cmp(&b.verdict.on_demand_cost)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        let profile = profile.ok_or_else(|| {
            AdvisorError::InvalidQuery("no supercomputer leg in platform set".into())
        })?;
        Ok(Advice {
            profile,
            ranked,
            cheapest,
            fastest: 0,
        })
    }

    /// Evaluate a fleet of queries, sharded deterministically over worker
    /// threads by the `sim-sweep` harness. Verdicts come back in query
    /// order and the report digest is bit-identical for every thread
    /// count; cache hits and misses interleave freely without affecting
    /// either (a hit returns exactly the bits the miss computed).
    pub fn evaluate_fleet(
        &self,
        queries: &[Query],
        opts: &SweepOpts,
    ) -> AdvisorResult<FleetReport> {
        struct Acc {
            rows: Vec<(usize, Result<Verdict, AdvisorError>)>,
            digest: MergedDigest,
        }
        let merged = sweep(
            queries.len(),
            opts,
            || Acc {
                rows: Vec::new(),
                digest: MergedDigest::new(),
            },
            |cell, acc: &mut Acc| {
                let outcome = self.evaluate(&queries[cell]);
                if let Ok(v) = &outcome {
                    acc.digest.absorb(cell as u64, v.content_digest());
                }
                acc.rows.push((cell, outcome));
            },
            |total, part| {
                total.rows.extend(part.rows);
                total.digest.merge(part.digest);
            },
        );
        let mut verdicts = Vec::with_capacity(queries.len());
        for (cell, outcome) in merged.rows {
            match outcome {
                Ok(v) => verdicts.push(v),
                Err(e) => {
                    return Err(match e {
                        AdvisorError::InvalidQuery(what) => {
                            AdvisorError::InvalidQuery(format!("query #{cell}: {what}"))
                        }
                        other => other,
                    })
                }
            }
        }
        Ok(FleetReport {
            verdicts,
            digest: merged.digest.value(),
        })
    }

    /// Verdict-cache counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Program-reuse counters.
    pub fn program_stats(&self) -> ProgramStats {
        self.programs.stats()
    }

    /// Drop all cached verdicts (counters keep accumulating).
    pub fn clear_cache(&self) {
        self.cache.clear()
    }

    pub(crate) fn cache(&self) -> &VerdictCache {
        &self.cache
    }
}

/// The engine calibration fingerprint: a digest of what the simulator
/// *answers*, not of what it is asked. Probes a fixed pair of workloads on
/// each platform at a pinned seed and hashes the resulting `SimResult`s —
/// any change to calibration tables, platform presets, noise models or the
/// DES core moves this value, which is exactly when warmed snapshots must
/// be invalidated. Computed once per process (the probes are tiny).
pub fn engine_fingerprint() -> u64 {
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        let mut bytes = Vec::new();
        for platform in PlatformId::ALL {
            let cluster = platform.cluster();
            for (kernel, np) in [(Kernel::Ep, 2usize), (Kernel::Cg, 4)] {
                let mut job = WorkloadId::Npb {
                    kernel,
                    class: Class::S,
                }
                .build(np);
                let cfg = SimConfig {
                    seed: DEFAULT_QUERY_SEED,
                    strategy: sim_platform::Strategy::Block,
                    validate: true,
                    faults: None,
                    background: None,
                };
                let digest = match run_job(&mut job, &cluster, &cfg, &mut NullSink) {
                    Ok(res) => sim_result_digest(&res),
                    // A probe that cannot run still fingerprints
                    // deterministically (and unlike any healthy engine).
                    Err(_) => 0xDEAD_0000_0000_0000 | platform.name().len() as u64,
                };
                bytes.extend_from_slice(&digest.to_le_bytes());
            }
        }
        fnv64(&bytes)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryPolicy;

    fn cg8(platform: PlatformId) -> Query {
        Query::new(
            WorkloadId::Npb {
                kernel: Kernel::Cg,
                class: Class::S,
            },
            platform,
            8,
        )
    }

    #[test]
    fn cache_hit_returns_identical_bits() {
        let svc = AdvisorService::new();
        let q = cg8(PlatformId::Dcc);
        let cold = svc.evaluate(&q).unwrap();
        let warm = svc.evaluate(&q).unwrap();
        assert_eq!(cold, warm);
        let s = svc.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn program_reuse_is_bit_identical_to_fresh_builds() {
        // Same workload across platforms: the second and third legs
        // rewind the pooled program. A fresh service (fresh build per
        // platform... the first query of each builds anew) must agree.
        let shared = AdvisorService::new();
        for p in PlatformId::ALL {
            let via_pool = shared.evaluate(&cg8(p)).unwrap();
            let fresh = AdvisorService::new().evaluate_uncached(&cg8(p)).unwrap();
            assert_eq!(via_pool, fresh, "{p:?}");
        }
        let ps = shared.program_stats();
        assert_eq!(ps.built, 1, "one build serves all three platforms");
        assert_eq!(ps.reused, 2);
    }

    #[test]
    fn uncached_path_never_touches_the_cache() {
        let svc = AdvisorService::new();
        let q = cg8(PlatformId::Vayu);
        let a = svc.evaluate_uncached(&q).unwrap();
        let b = svc.evaluate_uncached(&q).unwrap();
        assert_eq!(a, b);
        let s = svc.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.len), (0, 0, 0, 0));
    }

    #[test]
    fn invalid_queries_error_not_panic() {
        let svc = AdvisorService::new();
        let mut q = cg8(PlatformId::Vayu);
        q.np = 0;
        assert!(matches!(
            svc.evaluate(&q),
            Err(AdvisorError::InvalidQuery(_))
        ));
        let q = cg8(PlatformId::Ec2).with_policy(QueryPolicy::Spread { nodes: 0 });
        assert!(matches!(
            svc.evaluate(&q),
            Err(AdvisorError::InvalidQuery(_))
        ));
    }

    #[test]
    fn recommend_ranks_and_profiles() {
        let svc = AdvisorService::new();
        let advice = svc
            .recommend(
                WorkloadId::Npb {
                    kernel: Kernel::Cg,
                    class: Class::S,
                },
                8,
            )
            .unwrap();
        assert_eq!(advice.ranked.len(), 3);
        assert!(advice
            .ranked
            .windows(2)
            .all(|w| w[0].verdict.elapsed_secs <= w[1].verdict.elapsed_secs));
        assert_eq!(advice.fastest, 0);
        assert!(advice.profile.comm_frac >= 0.0 && advice.profile.comm_frac <= 1.0);
        // Second call: all three legs are hits.
        let before = svc.stats().hits;
        svc.recommend(
            WorkloadId::Npb {
                kernel: Kernel::Cg,
                class: Class::S,
            },
            8,
        )
        .unwrap();
        assert_eq!(svc.stats().hits, before + 3);
    }

    #[test]
    fn fleet_digest_is_thread_count_invariant() {
        let svc = AdvisorService::new();
        let queries: Vec<Query> = (0..12)
            .map(|i| cg8(PlatformId::ALL[i % 3]).with_seed(100 + (i / 3) as u64))
            .collect();
        let serial = svc
            .evaluate_fleet(&queries, &SweepOpts::default().with_threads(1))
            .unwrap();
        for threads in [2usize, 8] {
            let par = AdvisorService::new()
                .evaluate_fleet(&queries, &SweepOpts::default().with_threads(threads))
                .unwrap();
            assert_eq!(serial.digest, par.digest, "threads={threads}");
            assert_eq!(serial.verdicts, par.verdicts);
        }
        // Warm re-run (all hits) digests identically.
        let warm = svc
            .evaluate_fleet(&queries, &SweepOpts::default().with_threads(4))
            .unwrap();
        assert_eq!(serial.digest, warm.digest);
    }

    #[test]
    fn fleet_surfaces_first_bad_query_by_index() {
        let svc = AdvisorService::new();
        let mut queries = vec![cg8(PlatformId::Vayu); 4];
        queries[2].np = 0;
        match svc.evaluate_fleet(&queries, &SweepOpts::default().with_threads(2)) {
            Err(AdvisorError::InvalidQuery(what)) => assert!(what.contains("#2"), "{what}"),
            other => panic!("expected InvalidQuery, got {other:?}"),
        }
    }

    #[test]
    fn verdict_codec_round_trips() {
        let v = Verdict {
            elapsed_secs: 1.25,
            nodes: 7,
            on_demand_cost: 2.5,
            spot_cost: 0.875,
            comm_pct: 33.0,
            io_pct: 1.5,
            collective_frac: 0.25,
            imbalance_pct: 4.0,
            result_digest: 0xABCD_EF01_2345_6789,
        };
        let mut bytes = Vec::new();
        v.encode_to(&mut bytes);
        assert_eq!(bytes.len(), Verdict::ENCODED_LEN);
        assert_eq!(Verdict::decode(&bytes).unwrap(), v);
        assert!(Verdict::decode(&bytes[1..]).is_err());
    }

    #[test]
    fn fingerprint_is_stable_within_a_process() {
        assert_eq!(engine_fingerprint(), engine_fingerprint());
        assert_ne!(engine_fingerprint(), 0);
    }
}
