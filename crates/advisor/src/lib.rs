//! `sim-advisor` — the cloudburst advisor as a service.
//!
//! The million-user scenario for this repository is capacity planning
//! served at interactive latency: *"given this job mix — which platform,
//! how many nodes, burst or not?"*, asked thousands of times per second
//! (the recurring, queryable benchmarking pitch of Mohammadi & Bazhirov,
//! arXiv:1812.05257). Re-running the full simulator per question is the
//! wrong cost model for that traffic: most questions repeat, and most of
//! the rest are point changes to a question already answered.
//!
//! This crate is the serving layer over the simulator:
//!
//! * [`Query`] — the canonical question (workload × platform × ranks ×
//!   policy × seed) with a stable 128-bit content address over a
//!   versioned byte encoding ([`query`]);
//! * [`AdvisorService`] — evaluation with a sharded, bounded-LRU,
//!   content-addressed [`Verdict`] cache and hit/miss/eviction counters
//!   ([`cache`], [`service`]);
//! * incremental re-simulation — near-duplicate queries rewind pooled op
//!   programs (`Program::rewind`) instead of regenerating the workload;
//! * [`AdvisorService::evaluate_fleet`] — batched what-if fleets sharded
//!   deterministically over threads via `sim-sweep`, bit-identical at any
//!   worker count;
//! * [`snapshot`] — a versioned, checksummed, fingerprint-guarded binary
//!   snapshot so a warmed cache ships with the binary and stale caches
//!   refuse to load.
//!
//! ```
//! use sim_advisor::{AdvisorService, PlatformId, Query, WorkloadId};
//! use workloads::{Class, Kernel};
//!
//! let svc = AdvisorService::new();
//! let q = Query::new(
//!     WorkloadId::Npb { kernel: Kernel::Ep, class: Class::S },
//!     PlatformId::Ec2,
//!     8,
//! );
//! let cold = svc.evaluate(&q).unwrap(); // simulates
//! let warm = svc.evaluate(&q).unwrap(); // cache hit, identical bits
//! assert_eq!(cold, warm);
//! ```

pub mod cache;
pub mod error;
pub mod query;
pub mod service;
pub mod snapshot;

pub use cache::{CacheStats, VerdictCache, DEFAULT_SHARDS, DEFAULT_SHARD_CAPACITY};
pub use error::AdvisorError;
pub use query::{
    all_workloads, PlatformId, Query, QueryKey, QueryPolicy, WorkloadId, DEFAULT_QUERY_SEED,
    QUERY_ENCODING_VERSION,
};
pub use service::{
    engine_fingerprint, sim_result_digest, Advice, AdvisorService, FleetReport, ProgramStats,
    QueryProfile, RankedForecast, Verdict,
};
pub use snapshot::{decode_snapshot, encode_snapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};

/// Shorthand for fallible advisor operations.
pub type AdvisorResult<T> = Result<T, AdvisorError>;
