//! Versioned cache snapshots: ship a warmed cache with the binary.
//!
//! Hand-rolled length-prefixed binary — no serde, no external deps:
//!
//! ```text
//! magic    8 bytes  b"CLDSNAP1"
//! version  u32 LE   SNAPSHOT_VERSION
//! fingerprint u64 LE  engine calibration fingerprint at write time
//! count    u64 LE   number of entries
//! entry ×count:
//!   qlen   u32 LE   length of the query record
//!   query  qlen bytes (canonical query encoding, self-versioned)
//!   verdict  Verdict::ENCODED_LEN bytes (fixed width)
//! checksum u64 LE   FNV-64 of every preceding byte
//! ```
//!
//! Two guards make a stale snapshot impossible to load silently:
//!
//! * the **fingerprint**: [`crate::service::engine_fingerprint`] digests
//!   what the engine *answers* on fixed probe queries, so any calibration,
//!   preset or engine-core change refuses old snapshots with a typed
//!   [`AdvisorError::FingerprintMismatch`];
//! * the **checksum**: truncation or bit rot surfaces as
//!   [`AdvisorError::SnapshotCorrupt`] before any entry is admitted.
//!
//! Entries are written in content-key order, so the same cache state
//! always produces the same bytes — snapshots can be golden-diffed.

use std::path::Path;

use sim_sweep::fnv64;

use crate::error::AdvisorError;
use crate::query::Query;
use crate::service::{engine_fingerprint, AdvisorService, Verdict};
use crate::AdvisorResult;

/// Leading magic of every snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"CLDSNAP1";
/// Schema version this build writes and the only one it accepts.
pub const SNAPSHOT_VERSION: u32 = 1;

fn u32_at(bytes: &[u8], at: usize) -> Result<u32, AdvisorError> {
    bytes
        .get(at..at + 4)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| AdvisorError::SnapshotCorrupt(format!("truncated at offset {at}")))
}

fn u64_at(bytes: &[u8], at: usize) -> Result<u64, AdvisorError> {
    bytes
        .get(at..at + 8)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or_else(|| AdvisorError::SnapshotCorrupt(format!("truncated at offset {at}")))
}

/// Serialize `entries` under `fingerprint`. Exposed (rather than only the
/// service methods) so tests can forge snapshots with perturbed
/// fingerprints and prove the guard rejects them.
pub fn encode_snapshot(fingerprint: u64, entries: &[(Query, Verdict)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + entries.len() * (40 + Verdict::ENCODED_LEN));
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (query, verdict) in entries {
        let qbytes = query.canonical_bytes();
        out.extend_from_slice(&(qbytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&qbytes);
        verdict.encode_to(&mut out);
    }
    let checksum = fnv64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Parse snapshot bytes, enforcing magic, version, checksum and the
/// fingerprint guard against `expected_fingerprint`.
pub fn decode_snapshot(
    bytes: &[u8],
    expected_fingerprint: u64,
) -> AdvisorResult<Vec<(Query, Verdict)>> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 + 8 + 8 + 8 {
        return Err(AdvisorError::SnapshotCorrupt(format!(
            "{} bytes is smaller than an empty snapshot",
            bytes.len()
        )));
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(AdvisorError::SnapshotCorrupt("bad magic".into()));
    }
    let body = &bytes[..bytes.len() - 8];
    let checksum = u64_at(bytes, bytes.len() - 8)?;
    if fnv64(body) != checksum {
        return Err(AdvisorError::SnapshotCorrupt(
            "checksum mismatch (truncated or bit-rotted)".into(),
        ));
    }
    let version = u32_at(body, 8)?;
    if version != SNAPSHOT_VERSION {
        return Err(AdvisorError::SnapshotVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let fingerprint = u64_at(body, 12)?;
    if fingerprint != expected_fingerprint {
        return Err(AdvisorError::FingerprintMismatch {
            expected: expected_fingerprint,
            found: fingerprint,
        });
    }
    let count = u64_at(body, 20)? as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 20));
    let mut at = 28usize;
    for i in 0..count {
        let qlen = u32_at(body, at)? as usize;
        at += 4;
        let qbytes = body.get(at..at + qlen).ok_or_else(|| {
            AdvisorError::SnapshotCorrupt(format!("entry {i}: truncated query record"))
        })?;
        at += qlen;
        let query = Query::decode_canonical(qbytes)?;
        let vbytes = body.get(at..at + Verdict::ENCODED_LEN).ok_or_else(|| {
            AdvisorError::SnapshotCorrupt(format!("entry {i}: truncated verdict record"))
        })?;
        at += Verdict::ENCODED_LEN;
        entries.push((query, Verdict::decode(vbytes)?));
    }
    if at != body.len() {
        return Err(AdvisorError::SnapshotCorrupt(format!(
            "{} trailing bytes after {count} entries",
            body.len() - at
        )));
    }
    Ok(entries)
}

impl AdvisorService {
    /// Serialize the current cache contents (content-key order, so the
    /// same cache state always yields the same bytes).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        encode_snapshot(engine_fingerprint(), &self.cache().entries_sorted())
    }

    /// Load a snapshot's verdicts into the cache. All-or-nothing: the
    /// bytes are fully validated (magic, version, fingerprint, checksum,
    /// every record) before the first entry is admitted.
    pub fn load_snapshot_bytes(&self, bytes: &[u8]) -> AdvisorResult<usize> {
        let entries = decode_snapshot(bytes, engine_fingerprint())?;
        let n = entries.len();
        for (query, verdict) in entries {
            self.cache().insert(query.key(), query, verdict);
        }
        Ok(n)
    }

    /// Write the warmed cache to `path`.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> AdvisorResult<usize> {
        let bytes = self.snapshot_bytes();
        let n = self.cache().len();
        std::fs::write(path, bytes)?;
        Ok(n)
    }

    /// Load a snapshot file written by [`AdvisorService::save_snapshot`].
    pub fn load_snapshot(&self, path: impl AsRef<Path>) -> AdvisorResult<usize> {
        self.load_snapshot_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{PlatformId, WorkloadId};
    use workloads::{Class, Kernel};

    fn entry(np: u32) -> (Query, Verdict) {
        let q = Query::new(
            WorkloadId::Npb {
                kernel: Kernel::Mg,
                class: Class::S,
            },
            PlatformId::Dcc,
            np,
        );
        let v = Verdict {
            elapsed_secs: np as f64,
            nodes: np,
            on_demand_cost: 0.5,
            spot_cost: 0.175,
            comm_pct: 12.0,
            io_pct: 0.0,
            collective_frac: 0.5,
            imbalance_pct: 1.0,
            result_digest: 0x1234 + np as u64,
        };
        (q, v)
    }

    #[test]
    fn encode_decode_round_trips() {
        let entries: Vec<_> = (1..=8).map(entry).collect();
        let bytes = encode_snapshot(42, &entries);
        let back = decode_snapshot(&bytes, 42).unwrap();
        assert_eq!(back, entries);
        // Same entries -> same bytes (snapshots are reproducible).
        assert_eq!(bytes, encode_snapshot(42, &entries));
    }

    #[test]
    fn fingerprint_guard_refuses() {
        let bytes = encode_snapshot(42, &[entry(2)]);
        match decode_snapshot(&bytes, 43) {
            Err(AdvisorError::FingerprintMismatch { expected, found }) => {
                assert_eq!((expected, found), (43, 42));
            }
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
    }

    #[test]
    fn corruption_is_detected() {
        let good = encode_snapshot(42, &[entry(2), entry(4)]);
        // Flip one body byte: checksum must catch it.
        let mut bad = good.clone();
        bad[30] ^= 0xFF;
        assert!(matches!(
            decode_snapshot(&bad, 42),
            Err(AdvisorError::SnapshotCorrupt(_))
        ));
        // Truncate: also corrupt.
        assert!(matches!(
            decode_snapshot(&good[..good.len() - 3], 42),
            Err(AdvisorError::SnapshotCorrupt(_))
        ));
        // Wrong magic.
        let mut nomagic = good.clone();
        nomagic[0] = b'X';
        assert!(matches!(
            decode_snapshot(&nomagic, 42),
            Err(AdvisorError::SnapshotCorrupt(_))
        ));
    }

    #[test]
    fn version_guard_is_typed() {
        let mut bytes = encode_snapshot(42, &[]);
        // Patch the version field and re-checksum.
        bytes[8] = 9;
        let body_len = bytes.len() - 8;
        let sum = sim_sweep::fnv64(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            decode_snapshot(&bytes, 42),
            Err(AdvisorError::SnapshotVersion { found: 9, .. })
        ));
    }
}
