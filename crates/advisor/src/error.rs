//! Typed errors for every public advisor-service path.
//!
//! The service is a front-end other code calls at interactive rates; a bad
//! query, a stale snapshot or an I/O hiccup must surface as a value the
//! caller can match on, never as a panic.

use std::fmt;

/// Everything that can go wrong inside the advisor service.
#[derive(Debug)]
pub enum AdvisorError {
    /// The query itself is malformed (zero ranks, rank count the workload
    /// cannot build, ...). The string names the offending field.
    InvalidQuery(String),
    /// The underlying simulation failed.
    Sim(sim_mpi::SimError),
    /// A snapshot file could not be read or written.
    Io(std::io::Error),
    /// Snapshot bytes are structurally broken: bad magic, truncated
    /// length prefix, checksum mismatch, undecodable query record.
    SnapshotCorrupt(String),
    /// The snapshot schema version is one this build does not speak.
    SnapshotVersion { found: u32, supported: u32 },
    /// The snapshot was produced by an engine whose calibration
    /// fingerprint differs from this build's — its cached verdicts could
    /// silently disagree with what re-simulation would produce, so the
    /// load is refused.
    FingerprintMismatch { expected: u64, found: u64 },
}

impl fmt::Display for AdvisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdvisorError::InvalidQuery(what) => write!(f, "invalid query: {what}"),
            AdvisorError::Sim(e) => write!(f, "simulation failed: {e}"),
            AdvisorError::Io(e) => write!(f, "snapshot i/o: {e}"),
            AdvisorError::SnapshotCorrupt(what) => write!(f, "snapshot corrupt: {what}"),
            AdvisorError::SnapshotVersion { found, supported } => write!(
                f,
                "snapshot version {found} not supported (this build speaks {supported})"
            ),
            AdvisorError::FingerprintMismatch { expected, found } => write!(
                f,
                "snapshot calibration fingerprint {found:#018x} does not match \
                 this engine's {expected:#018x}; refusing stale verdicts"
            ),
        }
    }
}

impl std::error::Error for AdvisorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdvisorError::Sim(e) => Some(e),
            AdvisorError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sim_mpi::SimError> for AdvisorError {
    fn from(e: sim_mpi::SimError) -> Self {
        AdvisorError::Sim(e)
    }
}

impl From<std::io::Error> for AdvisorError {
    fn from(e: std::io::Error) -> Self {
        AdvisorError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AdvisorError::FingerprintMismatch {
            expected: 1,
            found: 2,
        };
        let s = e.to_string();
        assert!(s.contains("fingerprint"), "{s}");
        assert!(s.contains("refusing"), "{s}");
        let v = AdvisorError::SnapshotVersion {
            found: 9,
            supported: 1,
        };
        assert!(v.to_string().contains('9'));
    }
}
