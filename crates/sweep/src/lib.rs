//! `sim-sweep` — a deterministic parallel sweep harness.
//!
//! The figure drivers evaluate grids of independent simulation cells
//! (platform x discipline x placement x load, seed x scale, ...). Fanning a
//! grid over OS threads is easy; doing it so the merged result is
//! **bit-identical for every thread count** takes three rules, all enforced
//! here:
//!
//! 1. **Fixed sharding.** The cell range `0..n_cells` is cut into a fixed
//!    number of contiguous shards ([`SweepOpts::shards`], default 64) that
//!    does *not* depend on how many worker threads run. Threads race only
//!    over *which worker evaluates which shard* — never over shard
//!    boundaries, so the grouping of cells into partial accumulators is a
//!    pure function of `(n_cells, shards)`.
//! 2. **In-order folds, in-order merge.** Each shard folds its cells in
//!    ascending index order into a fresh accumulator; finished shards are
//!    parked in a per-shard slot and merged on the calling thread in shard
//!    index order. Every reduction tree is therefore identical whether one
//!    thread or sixteen did the evaluating — even for non-commutative or
//!    non-associative-in-floating-point merges.
//! 3. **Derived per-cell seeds.** A cell's RNG seed is a pure function of
//!    `(base_seed, cell_index)` ([`cell_seed`]), never of evaluation order,
//!    worker identity or wall clock.
//!
//! For cross-run digests there is also [`MergedDigest`], an
//! order-*independent* commutative combiner: absorb `(cell, digest)` pairs
//! in any order on any thread and the final value matches the serial fold.
//! Use the ordered merge when output order matters (table rows); use the
//! digest when only the *set* of per-cell results matters.
//!
//! The worker pool is built from `std::thread::scope` — no external
//! dependencies. The thread count comes from [`SweepOpts::threads`], else
//! the `RAYON_NUM_THREADS` environment variable (the conventional knob,
//! honored even though this is not rayon), else the machine's available
//! parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sim_des::splitmix64;

/// Default number of shards a sweep is cut into. Chosen large enough that
/// uneven per-cell costs still balance across workers, small enough that
/// per-shard accumulator overhead stays negligible.
pub const DEFAULT_SHARDS: usize = 64;

/// Options for [`sweep`].
#[derive(Debug, Clone)]
pub struct SweepOpts {
    /// Worker threads. `None` resolves to `RAYON_NUM_THREADS` (if set to a
    /// positive integer) else `std::thread::available_parallelism()`.
    pub threads: Option<usize>,
    /// Shard count — the unit of work distribution *and* of reduction
    /// grouping. Changing it regroups floating-point merges; changing the
    /// thread count never does.
    pub shards: usize,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            threads: None,
            shards: DEFAULT_SHARDS,
        }
    }
}

impl SweepOpts {
    /// Pin the worker count (e.g. `serial()`-style tests use 1).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Override the shard count (rarely needed; changes reduction grouping).
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// The worker count this sweep will actually run with.
    pub fn resolved_threads(&self) -> usize {
        self.threads
            .or_else(|| {
                std::env::var("RAYON_NUM_THREADS")
                    .ok()
                    .and_then(|s| s.trim().parse::<usize>().ok())
                    .filter(|&n| n > 0)
            })
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(4)
            })
            .max(1)
    }
}

/// Half-open cell range of shard `s` of `shards` over `n_cells` cells:
/// contiguous, in order, covering every cell exactly once, sizes differing
/// by at most one. A pure function of its arguments — this is what makes
/// the reduction grouping thread-count independent.
pub fn shard_range(n_cells: usize, shards: usize, s: usize) -> std::ops::Range<usize> {
    debug_assert!(s < shards);
    (s * n_cells / shards)..((s + 1) * n_cells / shards)
}

/// Evaluate `n_cells` independent cells in parallel and reduce them
/// deterministically.
///
/// * `init` builds an empty accumulator (called once per non-empty shard,
///   plus once for the final result);
/// * `eval(cell, acc)` folds cell `cell` into the shard's accumulator —
///   cells within a shard arrive in ascending order;
/// * `merge(total, shard_acc)` combines finished shards into the final
///   accumulator, called on the *calling* thread in shard index order.
///
/// The result is bit-identical for every worker count (including 1)
/// because sharding, fold order and merge order are all independent of the
/// thread count. It depends on `opts.shards` only through the grouping of
/// `merge` calls — irrelevant for associative merges like row
/// concatenation, pinned by the default for everything else.
pub fn sweep<A, I, E, M>(n_cells: usize, opts: &SweepOpts, init: I, eval: E, mut merge: M) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    E: Fn(usize, &mut A) + Sync,
    M: FnMut(&mut A, A),
{
    let shards = opts.shards.max(1);
    let mut total = init();
    if n_cells == 0 {
        return total;
    }
    let workers = opts.resolved_threads().min(shards);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<A>> = (0..shards).map(|_| None).collect();
    let parked = Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let s = next.fetch_add(1, Ordering::Relaxed);
                if s >= shards {
                    break;
                }
                let range = shard_range(n_cells, shards, s);
                if range.is_empty() {
                    continue;
                }
                let mut acc = init();
                for cell in range {
                    eval(cell, &mut acc);
                }
                parked.lock().unwrap()[s] = Some(acc);
            });
        }
    });
    for slot in slots.iter_mut() {
        if let Some(acc) = slot.take() {
            merge(&mut total, acc);
        }
    }
    total
}

/// Derive the RNG seed for one cell of a sweep grid: a pure splitmix64
/// mix of the base seed and the cell index. Distinct cells get decorrelated
/// seeds; the same `(base, cell)` pair always gets the same seed, no matter
/// which worker evaluates it or when.
pub fn cell_seed(base: u64, cell: u64) -> u64 {
    splitmix64(base ^ splitmix64(cell.wrapping_add(0x9E37_79B9_7F4A_7C15)))
}

/// FNV-1a 64-bit hash — the digest primitive the golden tests pin table
/// text with, exposed here so sweep digests and goldens share one
/// definition.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Order-independent digest combiner for per-cell results.
///
/// Each `(cell, digest)` pair is whitened through splitmix64 and summed
/// with wrapping addition — a commutative, associative fold, so absorbing
/// cells in any order (or merging per-shard partials in any order) yields
/// the same value as the serial in-order fold. Binding the cell index into
/// the whitening means swapping two cells' digests *does* change the
/// value: the digest commits to *which* cell produced *what*, not just to
/// the multiset of outputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergedDigest {
    sum: u64,
    n: u64,
}

impl MergedDigest {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one cell's digest in (any order, any thread's partial).
    pub fn absorb(&mut self, cell: u64, digest: u64) {
        self.sum = self.sum.wrapping_add(splitmix64(digest ^ splitmix64(cell)));
        self.n = self.n.wrapping_add(1);
    }

    /// Combine another partial digest into this one (commutative).
    pub fn merge(&mut self, other: MergedDigest) {
        self.sum = self.sum.wrapping_add(other.sum);
        self.n = self.n.wrapping_add(other.n);
    }

    /// The final digest value (whitened sum, bound to the cell count).
    pub fn value(&self) -> u64 {
        splitmix64(self.sum ^ splitmix64(self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_cover_every_cell_exactly_once_in_order() {
        for &(n, s) in &[
            (0usize, 64usize),
            (1, 64),
            (63, 64),
            (64, 64),
            (65, 64),
            (1000, 7),
        ] {
            let mut cells = Vec::new();
            for shard in 0..s {
                cells.extend(shard_range(n, s, shard));
            }
            assert_eq!(cells, (0..n).collect::<Vec<_>>(), "n={n} s={s}");
        }
    }

    #[test]
    fn ordered_merge_preserves_cell_order() {
        for threads in [1usize, 2, 8] {
            let opts = SweepOpts::default().with_threads(threads);
            let out = sweep(
                1000,
                &opts,
                Vec::new,
                |cell, acc: &mut Vec<usize>| acc.push(cell),
                |total, part| total.extend(part),
            );
            assert_eq!(out, (0..1000).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    /// A deliberately non-associative float reduction: bit-identity across
    /// thread counts holds only because the grouping is fixed by shards.
    #[test]
    fn float_fold_is_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            let opts = SweepOpts::default().with_threads(threads);
            sweep(
                997,
                &opts,
                || 0.0f64,
                |cell, acc: &mut f64| {
                    let x = cell_seed(42, cell as u64) as f64 / u64::MAX as f64;
                    *acc += (x * 1e9).sin() / (1.0 + *acc * *acc);
                },
                |total, part| *total += part / (1.0 + total.abs()),
            )
        };
        let serial = run(1);
        for threads in [2usize, 3, 8, 16] {
            assert_eq!(
                serial.to_bits(),
                run(threads).to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn merged_digest_is_order_independent_but_cell_bound() {
        let pairs: Vec<(u64, u64)> = (0..100u64).map(|c| (c, splitmix64(c ^ 0xABCD))).collect();
        let mut fwd = MergedDigest::new();
        for &(c, d) in &pairs {
            fwd.absorb(c, d);
        }
        let mut rev = MergedDigest::new();
        for &(c, d) in pairs.iter().rev() {
            rev.absorb(c, d);
        }
        assert_eq!(fwd.value(), rev.value());
        // Partial merge in arbitrary order agrees too.
        let mut a = MergedDigest::new();
        let mut b = MergedDigest::new();
        for &(c, d) in &pairs {
            if c % 3 == 0 {
                a.absorb(c, d)
            } else {
                b.absorb(c, d)
            }
        }
        let mut ba = b;
        ba.merge(a);
        a.merge(b);
        assert_eq!(a.value(), fwd.value());
        assert_eq!(ba.value(), fwd.value());
        // Swapping two cells' digests changes the value: the digest commits
        // to the cell -> result mapping.
        let mut swapped = MergedDigest::new();
        for &(c, d) in &pairs {
            match c {
                0 => swapped.absorb(0, pairs[1].1),
                1 => swapped.absorb(1, pairs[0].1),
                _ => swapped.absorb(c, d),
            }
        }
        assert_ne!(swapped.value(), fwd.value());
    }

    #[test]
    fn cell_seeds_are_stable_and_distinct() {
        assert_eq!(cell_seed(42, 7), cell_seed(42, 7));
        let mut seen = std::collections::HashSet::new();
        for cell in 0..10_000u64 {
            assert!(seen.insert(cell_seed(0x5EED_0000, cell)));
        }
        assert_ne!(cell_seed(1, 0), cell_seed(2, 0));
    }

    #[test]
    fn empty_and_tiny_grids_work() {
        let opts = SweepOpts::default().with_threads(8);
        let none = sweep(
            0,
            &opts,
            Vec::new,
            |c, a: &mut Vec<usize>| a.push(c),
            |t, p| t.extend(p),
        );
        assert!(none.is_empty());
        let one = sweep(
            1,
            &opts,
            Vec::new,
            |c, a: &mut Vec<usize>| a.push(c),
            |t, p| t.extend(p),
        );
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn explicit_thread_override_beats_env() {
        // No env manipulation (racy under the parallel test harness): just
        // check the explicit override path resolves to itself.
        assert_eq!(SweepOpts::default().with_threads(3).resolved_threads(), 3);
        assert!(SweepOpts::default().resolved_threads() >= 1);
    }
}
