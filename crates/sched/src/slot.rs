//! The slot-set core: interval algebra over time (slots) and resources
//! (proc sets), in the style of OAR's `SlotSet`/`ProcSet` scheduler
//! internals.
//!
//! A [`ProcSet`] is a compact sorted set of resource ids (nodes, in this
//! scheduler's granularity) stored as inclusive runs. A [`SlotSet`] is a
//! time-ordered list of [`Slot`]s covering `[begin, +inf)` with no gaps and
//! no overlaps; each slot carries the **hard** availability over its time
//! interval (`avail`: the exact procs free for placement) plus a **soft**
//! count of held nodes (`held`: capacity promised to reservations that have
//! not yet been pinned to specific procs). Slot *split* and *merge* are the
//! only mutation primitives — every reservation, maintenance window or
//! release is materialized by splitting the affected interval out and
//! editing its copy, never by patching times in place.
//!
//! # Invariants
//!
//! * slots are sorted by `begin` and contiguous: `slots[i].end ==
//!   slots[i+1].begin`, and `slots.last().end == +inf`;
//! * slots never overlap (immediate from contiguity);
//! * after [`SlotSet::merge`], slots are *maximal*: no two neighbours carry
//!   the same `(avail, held)` pair.
//!
//! The **effective** capacity of a slot is `avail.len() - held`. Count
//! profiles derived from the slot walk ([`SlotSet::count_points`]) feed the
//! same earliest-fit scan the legacy free-node engine used
//! ([`earliest_fit`]), which is what lets the slot-set engine reproduce its
//! schedules bit-for-bit while also expressing things the old engine could
//! not (advance reservations, maintenance calendars, per-project quotas).

/// Tolerance for event-time comparisons (seconds). Shared with the site
/// engine: covers the sub-ns residue of f64 -> `SimTime` grid rounding with
/// orders of magnitude to spare against real scheduling timescales.
pub const EPS: f64 = 1e-6;

/// A compact set of resource ids stored as sorted, disjoint, maximal
/// inclusive runs `(lo, hi)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProcSet {
    runs: Vec<(usize, usize)>,
}

impl ProcSet {
    pub fn new() -> ProcSet {
        ProcSet { runs: Vec::new() }
    }

    /// The inclusive range `lo..=hi`.
    pub fn range(lo: usize, hi: usize) -> ProcSet {
        assert!(lo <= hi);
        ProcSet {
            runs: vec![(lo, hi)],
        }
    }

    /// Build from arbitrary (unsorted, possibly duplicated) ids.
    pub fn from_ids(ids: &[usize]) -> ProcSet {
        let mut sorted: Vec<usize> = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut runs: Vec<(usize, usize)> = Vec::new();
        for id in sorted {
            match runs.last_mut() {
                Some((_, hi)) if *hi + 1 == id => *hi = id,
                _ => runs.push((id, id)),
            }
        }
        ProcSet { runs }
    }

    pub fn len(&self) -> usize {
        self.runs.iter().map(|(lo, hi)| hi - lo + 1).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    pub fn contains(&self, id: usize) -> bool {
        self.runs
            .binary_search_by(|&(lo, hi)| {
                if id < lo {
                    std::cmp::Ordering::Greater
                } else if id > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// The sorted inclusive runs.
    pub fn runs(&self) -> &[(usize, usize)] {
        &self.runs
    }

    /// Iterate ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.runs.iter().flat_map(|&(lo, hi)| lo..=hi)
    }

    /// The lowest `n` ids (the packed prefix). Panics if `n > len`.
    pub fn take(&self, n: usize) -> ProcSet {
        let mut out = Vec::new();
        let mut left = n;
        for &(lo, hi) in &self.runs {
            if left == 0 {
                break;
            }
            let width = (hi - lo + 1).min(left);
            out.push((lo, lo + width - 1));
            left -= width;
        }
        assert!(left == 0, "take({n}) from a {}-proc set", self.len());
        ProcSet { runs: out }
    }

    pub fn union(&self, other: &ProcSet) -> ProcSet {
        let mut merged: Vec<(usize, usize)> =
            Vec::with_capacity(self.runs.len() + other.runs.len());
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() || j < other.runs.len() {
            let next = if j >= other.runs.len()
                || (i < self.runs.len() && self.runs[i].0 <= other.runs[j].0)
            {
                i += 1;
                self.runs[i - 1]
            } else {
                j += 1;
                other.runs[j - 1]
            };
            match merged.last_mut() {
                // Adjacent or overlapping runs coalesce (maximality).
                Some((_, hi)) if next.0 <= *hi + 1 => *hi = (*hi).max(next.1),
                _ => merged.push(next),
            }
        }
        ProcSet { runs: merged }
    }

    pub fn intersect(&self, other: &ProcSet) -> ProcSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let (alo, ahi) = self.runs[i];
            let (blo, bhi) = other.runs[j];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo <= hi {
                out.push((lo, hi));
            }
            if ahi < bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        ProcSet { runs: out }
    }

    /// `self` minus `other`.
    pub fn difference(&self, other: &ProcSet) -> ProcSet {
        let mut out = Vec::new();
        let mut j = 0;
        for &(lo, hi) in &self.runs {
            let mut cur = lo;
            while j < other.runs.len() && other.runs[j].1 < cur {
                j += 1;
            }
            let mut k = j;
            while cur <= hi {
                if k >= other.runs.len() || other.runs[k].0 > hi {
                    out.push((cur, hi));
                    break;
                }
                let (blo, bhi) = other.runs[k];
                if blo > cur {
                    out.push((cur, blo - 1));
                }
                if bhi >= hi {
                    break;
                }
                cur = cur.max(bhi + 1);
                k += 1;
            }
        }
        ProcSet { runs: out }
    }
}

/// One interval of the slot walk: the hard availability (`avail`) over
/// `[begin, end)` plus a soft count of capacity promised to not-yet-placed
/// reservations (`held`). Effective capacity is `avail.len() - held`.
#[derive(Debug, Clone, PartialEq)]
pub struct Slot {
    pub begin: f64,
    pub end: f64,
    pub avail: ProcSet,
    pub held: i64,
}

impl Slot {
    /// Effective schedulable node count over this interval.
    pub fn effective(&self) -> i64 {
        self.avail.len() as i64 - self.held
    }
}

/// A time-ordered, gap-free, non-overlapping list of [`Slot`]s covering
/// `[begin, +inf)`. See the module docs for the invariants.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotSet {
    slots: Vec<Slot>,
}

impl SlotSet {
    /// A single maximal slot `[begin, +inf)` with the given availability.
    pub fn new(begin: f64, avail: ProcSet) -> SlotSet {
        SlotSet {
            slots: vec![Slot {
                begin,
                end: f64::INFINITY,
                avail,
                held: 0,
            }],
        }
    }

    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    pub fn begin(&self) -> f64 {
        self.slots[0].begin
    }

    /// Index of the slot containing `t` (clamped to the first slot for
    /// `t < begin`).
    pub fn index_at(&self, t: f64) -> usize {
        self.slots.partition_point(|s| s.begin <= t).max(1) - 1
    }

    /// Ensure a slot boundary at `t` (splitting the containing slot if
    /// needed) and return the index of the slot beginning at `t`. The
    /// fundamental mutation primitive: every window edit goes through it.
    /// `t` at or before the set's begin returns slot 0 unsplit.
    pub fn split_at(&mut self, t: f64) -> usize {
        let i = self.index_at(t);
        if t <= self.slots[i].begin {
            return i;
        }
        debug_assert!(t < self.slots[i].end);
        let mut right = self.slots[i].clone();
        right.begin = t;
        self.slots[i].end = t;
        self.slots.insert(i + 1, right);
        i + 1
    }

    /// Coalesce neighbours with identical `(avail, held)` back into
    /// maximal slots — the inverse of [`split_at`](Self::split_at).
    pub fn merge(&mut self) {
        let mut out: Vec<Slot> = Vec::with_capacity(self.slots.len());
        for s in self.slots.drain(..) {
            match out.last_mut() {
                Some(last) if last.avail == s.avail && last.held == s.held => last.end = s.end,
                _ => out.push(s),
            }
        }
        self.slots = out;
    }

    /// Indices `[i0, i1)` of the slots covering `[b, e)`, splitting the
    /// boundaries in first. `e = +inf` selects through the final slot.
    fn window_indices(&mut self, b: f64, e: f64) -> (usize, usize) {
        let i0 = self.split_at(b);
        let i1 = if e.is_finite() {
            self.split_at(e)
        } else {
            self.slots.len()
        };
        (i0, i1)
    }

    /// Remove `procs` from the hard availability over `[b, e)` (a running
    /// job's placement, a maintenance window).
    pub fn sub_window(&mut self, b: f64, e: f64, procs: &ProcSet) {
        let (i0, i1) = self.window_indices(b, e);
        for s in &mut self.slots[i0..i1] {
            s.avail = s.avail.difference(procs);
        }
    }

    /// Return `procs` to the hard availability over `[b, e)` (a release).
    pub fn add_window(&mut self, b: f64, e: f64, procs: &ProcSet) {
        let (i0, i1) = self.window_indices(b, e);
        for s in &mut self.slots[i0..i1] {
            s.avail = s.avail.union(procs);
        }
    }

    /// Soft-hold `n` nodes of capacity over `[b, e)` without pinning procs
    /// (a reservation quoted by count, not yet placed).
    pub fn hold_window(&mut self, b: f64, e: f64, n: i64) {
        let (i0, i1) = self.window_indices(b, e);
        for s in &mut self.slots[i0..i1] {
            s.held += n;
        }
    }

    /// Drop every slot ending at or before `t` (history that can no longer
    /// host a start). Keeps the covering slot of `t` as the new head.
    pub fn truncate_before(&mut self, t: f64) {
        let i = self.split_at(t);
        self.slots.drain(..i);
    }

    /// Hard availability at time `t`.
    pub fn avail_at(&self, t: f64) -> &ProcSet {
        &self.slots[self.index_at(t)].avail
    }

    /// Effective capacity at time `t`.
    pub fn effective_at(&self, t: f64) -> i64 {
        self.slots[self.index_at(t)].effective()
    }

    /// Intersection of the hard availability over every slot overlapping
    /// `[b, e)`: the procs a job placed on `[b, e)` may use.
    pub fn window_avail(&self, b: f64, e: f64) -> ProcSet {
        let i = self.index_at(b);
        let mut acc = self.slots[i].avail.clone();
        for s in &self.slots[i + 1..] {
            if s.begin >= e - EPS {
                break;
            }
            acc = acc.intersect(&s.avail);
        }
        acc
    }

    /// The effective-capacity step profile as `(time, level)` breakpoints,
    /// with breakpoints within [`EPS`] merged exactly the way the legacy
    /// free-node `Profile` merged its deltas (first time kept, last level
    /// wins) — conservative-backfill quotes fed from this reproduce the
    /// legacy engine's bit-for-bit.
    pub fn count_points(&self) -> Vec<(f64, i64)> {
        let mut pts: Vec<(f64, i64)> = Vec::with_capacity(self.slots.len());
        for s in &self.slots {
            let eff = s.effective();
            match pts.last_mut() {
                Some((t, lvl)) if (s.begin - *t).abs() <= EPS => *lvl = eff,
                _ => pts.push((s.begin, eff)),
            }
        }
        pts
    }

    /// The effective-capacity step profile with *no* EPS merging: exact
    /// slot boundaries. The EASY shadow scan uses this (the legacy EASY
    /// reservation walked unmerged release times).
    pub fn count_points_exact(&self) -> Vec<(f64, i64)> {
        self.slots
            .iter()
            .map(|s| (s.begin, s.effective()))
            .collect()
    }
}

/// Step-profile level at time `t`: the level of the last breakpoint at or
/// (within [`EPS`]) before `t`.
pub fn level_at(points: &[(f64, i64)], t: f64) -> i64 {
    let i = points.partition_point(|p| p.0 <= t + EPS).max(1) - 1;
    points[i].1
}

/// Earliest start at which `need` nodes stay available for `dur` seconds,
/// over a `(time, level)` step profile. Candidate starts are breakpoints;
/// on a violation inside the window the candidate jumps past the violating
/// breakpoint. Exactly the legacy free-node `Profile::earliest` scan;
/// returns `None` when the profile never sustains `need` for `dur` (the
/// legacy scan's unreachable arm, reachable here once maintenance windows
/// or quotas shape the horizon).
pub fn earliest_fit(points: &[(f64, i64)], need: i64, dur: f64) -> Option<f64> {
    let n = points.len();
    let mut i = 0;
    while i < n {
        let t = points[i].0;
        let mut j = i;
        let mut ok = true;
        while j < n && points[j].0 < t + dur - EPS {
            if points[j].1 < need {
                ok = false;
                i = j + 1;
                break;
            }
            j += 1;
        }
        if ok {
            return Some(t);
        }
    }
    None
}

/// `true` when `need` nodes stay available for `dur` seconds starting at
/// `t` (which need not be a breakpoint).
pub fn window_fits(points: &[(f64, i64)], t: f64, dur: f64, need: i64) -> bool {
    if level_at(points, t) < need {
        return false;
    }
    let start = points.partition_point(|p| p.0 <= t + EPS);
    for p in &points[start..] {
        if p.0 >= t + dur - EPS {
            break;
        }
        if p.1 < need {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn procset_algebra() {
        let a = ProcSet::range(0, 7);
        let b = ProcSet::from_ids(&[4, 5, 6, 7, 8, 9]);
        assert_eq!(a.len(), 8);
        assert_eq!(a.union(&b), ProcSet::range(0, 9));
        assert_eq!(a.intersect(&b), ProcSet::range(4, 7));
        assert_eq!(a.difference(&b), ProcSet::range(0, 3));
        assert_eq!(b.difference(&a), ProcSet::range(8, 9));
        assert!(a.contains(3) && !a.contains(8));
        assert_eq!(a.take(3), ProcSet::range(0, 2));
        let scattered = ProcSet::from_ids(&[1, 3, 5]);
        assert_eq!(scattered.runs().len(), 3);
        assert_eq!(scattered.take(2), ProcSet::from_ids(&[1, 3]));
        assert_eq!(
            scattered.iter().collect::<Vec<_>>(),
            vec![1, 3, 5],
            "iteration is ascending"
        );
    }

    #[test]
    fn split_is_boundary_stable_and_merge_restores_maximality() {
        let mut ss = SlotSet::new(0.0, ProcSet::range(0, 3));
        let i = ss.split_at(10.0);
        assert_eq!(i, 1);
        assert_eq!(ss.split_at(10.0), 1, "existing boundary is not re-split");
        assert_eq!(ss.split_at(0.0), 0, "begin is never split");
        ss.split_at(5.0);
        assert_eq!(ss.slots().len(), 3);
        // Contiguity invariant.
        for w in ss.slots().windows(2) {
            assert_eq!(w[0].end, w[1].begin);
        }
        assert_eq!(ss.slots().last().unwrap().end, f64::INFINITY);
        // Nothing was edited, so merge collapses back to one maximal slot.
        ss.merge();
        assert_eq!(ss.slots().len(), 1);
    }

    #[test]
    fn windows_edit_only_their_interval() {
        let mut ss = SlotSet::new(0.0, ProcSet::range(0, 7));
        ss.sub_window(10.0, 20.0, &ProcSet::range(0, 3));
        ss.hold_window(15.0, 30.0, 2);
        assert_eq!(ss.avail_at(5.0).len(), 8);
        assert_eq!(ss.avail_at(12.0).len(), 4);
        assert_eq!(ss.effective_at(16.0), 2); // 4 avail - 2 held
        assert_eq!(ss.effective_at(25.0), 6); // 8 avail - 2 held
        assert_eq!(ss.effective_at(35.0), 8);
        assert_eq!(ss.window_avail(5.0, 12.0), ProcSet::range(4, 7));
        assert_eq!(ss.window_avail(20.0, 40.0), ProcSet::range(0, 7));
        ss.add_window(10.0, 20.0, &ProcSet::range(0, 3));
        ss.hold_window(15.0, 30.0, -2);
        ss.merge();
        assert_eq!(ss.slots().len(), 1, "round-trip restores the free set");
        assert_eq!(ss.slots()[0].avail, ProcSet::range(0, 7));
    }

    #[test]
    fn truncate_drops_history() {
        let mut ss = SlotSet::new(0.0, ProcSet::range(0, 3));
        ss.sub_window(0.0, 10.0, &ProcSet::range(0, 1));
        ss.truncate_before(10.0);
        assert_eq!(ss.begin(), 10.0);
        assert_eq!(ss.avail_at(10.0).len(), 4);
    }

    #[test]
    fn earliest_fit_matches_the_legacy_scan_shape() {
        // free 2 now, 6 at t=100, 8 at t=250.
        let pts = vec![(0.0, 2), (100.0, 6), (250.0, 8)];
        assert_eq!(earliest_fit(&pts, 2, 50.0), Some(0.0));
        assert_eq!(earliest_fit(&pts, 4, 50.0), Some(100.0));
        assert_eq!(earliest_fit(&pts, 8, 10.0), Some(250.0));
        assert_eq!(earliest_fit(&pts, 9, 10.0), None);
        // A dip: free 8 until 100, 2 in [100, 200), 8 after.
        let dip = vec![(0.0, 8), (100.0, 2), (200.0, 8)];
        assert_eq!(earliest_fit(&dip, 4, 50.0), Some(0.0));
        assert_eq!(
            earliest_fit(&dip, 4, 150.0),
            Some(200.0),
            "window clears the dip"
        );
        assert!(window_fits(&dip, 30.0, 50.0, 4));
        assert!(!window_fits(&dip, 60.0, 50.0, 4));
        assert_eq!(level_at(&dip, 150.0), 2);
    }
}
