//! Typed scheduler errors. The historical engine panicked with
//! `expect("fit was checked")` when a placement policy could not satisfy a
//! request that raw capacity admitted (fragmentation under a strict
//! policy); every such condition now surfaces as a [`SchedError`] so
//! multi-site drivers can report which job, which need and which policy
//! failed instead of aborting the process.

use std::fmt;

/// Why a scheduling run (or a single allocation) could not proceed.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// Raw capacity admits the request but the placement policy cannot
    /// satisfy it from the current free set (fragmentation).
    PlacementUnsatisfiable {
        need: usize,
        policy: &'static str,
        free: usize,
    },
    /// The job asks for more nodes than the pool (or its quota ceiling)
    /// can ever provide.
    InsufficientNodes {
        job: usize,
        need: usize,
        limit: usize,
    },
    /// An advance reservation came due but its window no longer holds the
    /// promised capacity (a mis-specified calendar).
    ReservationUnsatisfiable { job: usize, at: f64 },
    /// The dependency edges contain a cycle through this job.
    DependencyCycle { job: usize },
    /// A malformed job specification (bad shape, bad dependency index,
    /// reservation before submission, ...).
    InvalidJob { job: usize, reason: String },
    /// A malformed site configuration (inverted maintenance window,
    /// zero-node quota, ...).
    InvalidConfig { reason: String },
    /// The legacy free-node engine was asked for a capability only the
    /// slot-set engine implements.
    LegacyEngineUnsupported { feature: &'static str },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::PlacementUnsatisfiable { need, policy, free } => write!(
                f,
                "placement {policy} cannot carve {need} nodes out of {free} free (fragmentation)"
            ),
            SchedError::InsufficientNodes { job, need, limit } => {
                write!(
                    f,
                    "job {job} needs {need} nodes but at most {limit} can ever be free"
                )
            }
            SchedError::ReservationUnsatisfiable { job, at } => {
                write!(
                    f,
                    "advance reservation of job {job} at t={at} cannot be honoured"
                )
            }
            SchedError::DependencyCycle { job } => {
                write!(f, "dependency cycle through job {job}")
            }
            SchedError::InvalidJob { job, reason } => write!(f, "job {job}: {reason}"),
            SchedError::InvalidConfig { reason } => write!(f, "site config: {reason}"),
            SchedError::LegacyEngineUnsupported { feature } => {
                write!(f, "the legacy free-node engine does not support {feature}")
            }
        }
    }
}

impl std::error::Error for SchedError {}
