//! The single-site scheduling engine: queue disciplines over
//! `sim_des::EventQueue`, with placement-aware link contention.
//!
//! # Disciplines
//!
//! * **FCFS** — strict: the queue head blocks everything behind it.
//! * **EASY backfill** (Mu'alem & Feitelson) — the head gets a reservation
//!   (*shadow time*: the earliest instant enough nodes are guaranteed free,
//!   computed from running jobs' walltimes; *extra nodes*: what's left over
//!   at the shadow). A later job may jump the queue iff it fits the free
//!   nodes now **and** either finishes (by its walltime) before the shadow
//!   or only uses extra nodes. Under that rule a backfill can never delay
//!   the head's reservation — the EASY invariant.
//! * **Conservative backfill** — every queued job holds a *persistent*
//!   reservation against the walltime profile, quoted once on arrival in
//!   FCFS order and thereafter only compressed (moved earlier when an early
//!   completion opens a feasible earlier window, holding all other
//!   reservations fixed); a job starts exactly when its reservation comes
//!   due. No job is ever delayed past its first quoted start.
//! * **NaiveBackfill** — the historically buggy rule this subsystem
//!   replaced: backfill anything that fits the *currently free* nodes,
//!   ignoring reservations. Kept (documented, non-default) as the
//!   regression foil: it demonstrably delays the head (see
//!   `tests/sched_invariants.rs`).
//!
//! # Contention
//!
//! Placements map to rack sets ([`NodePool::racks_of`]); running jobs that
//! share links ([`share_links`]) inflate each other's communication via the
//! shared [`ContentionParams`] model — the same formula the MPI engine
//! applies when given a [`sim_mpi` `Background`] — so a job's progress rate
//! is `1 / (1 - cf + cf * multiplier)`. Rates change only when the running
//! set changes; completions are re-estimated at each such point through a
//! generation-checked wake event (stale wakes are dropped).
//!
//! Reservations, by contrast, are computed from **static walltimes**, which
//! are upper bounds on actual runtime by construction (walltime >= nominal
//! runtime x the contention cap; a job that somehow exceeds its walltime is
//! killed). That independence is what keeps the EASY invariant intact even
//! though actual completion times move with the tenant mix.

use crate::job::SchedJob;
use crate::pool::{share_links, NodePool, PlacementPolicy};
use sim_des::{EventQueue, SimTime};
use sim_net::ContentionParams;
use std::collections::VecDeque;

/// Queue discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    Fcfs,
    Easy,
    Conservative,
    /// The free-nodes-only backfill rule (head-delay bug); regression foil.
    NaiveBackfill,
}

impl Discipline {
    pub fn name(&self) -> &'static str {
        match self {
            Discipline::Fcfs => "fcfs",
            Discipline::Easy => "easy",
            Discipline::Conservative => "conservative",
            Discipline::NaiveBackfill => "naive-backfill",
        }
    }
}

/// Tolerance for event-time comparisons (seconds). Covers the sub-ns
/// residue of f64 -> `SimTime` grid rounding with orders of magnitude to
/// spare against real scheduling timescales.
const EPS: f64 = 1e-6;

/// What the site scheduler needs to know about one job. Per-site view:
/// multi-site simulations hold one per site with site-specific runtimes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct JobView {
    pub nodes: usize,
    /// Nominal (uncontended) runtime on this site.
    pub runtime: f64,
    /// Static walltime bound used for reservations and the kill timer.
    pub walltime: f64,
    pub comm_fraction: f64,
    pub submit: f64,
}

impl JobView {
    pub(crate) fn of(j: &SchedJob) -> JobView {
        JobView {
            nodes: j.nodes,
            runtime: j.runtime,
            walltime: j.walltime,
            comm_fraction: j.comm_fraction,
            submit: j.submit,
        }
    }
}

/// A job currently holding nodes.
#[derive(Debug, Clone)]
pub(crate) struct Running {
    pub job: usize,
    pub start: f64,
    pub nodes_held: Vec<usize>,
    racks: Vec<usize>,
    /// Communication weight on shared links: `comm_fraction`, or 0 for
    /// single-node jobs (no inter-node traffic).
    eff_cf: f64,
    /// Nominal seconds of work left.
    remaining: f64,
    /// Current slowdown factor (>= 1); progress rate is `1 / slowdown`.
    slowdown: f64,
    kill_at: f64,
    /// Spot revocation time, if one was drawn (multi-site only).
    pub preempt_at: Option<f64>,
}

/// Per-job result of a site simulation.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    pub id: usize,
    pub start: f64,
    pub end: f64,
    pub wait: f64,
    /// Actual minus nominal runtime: seconds lost to link contention.
    pub inflation: f64,
    /// False if the job hit its walltime and was killed.
    pub completed: bool,
}

/// Aggregate result of [`simulate_site`].
#[derive(Debug, Clone)]
pub struct SiteResult {
    /// Outcomes in input-job order.
    pub outcomes: Vec<JobOutcome>,
    pub makespan: f64,
    pub mean_wait: f64,
    pub total_inflation: f64,
    /// Jobs that started later than the reservation recorded when they
    /// first blocked at the head (EASY/conservative: must stay 0; the
    /// naive rule trips it).
    pub head_delay_violations: usize,
    /// `(job index, reserved start)` as first quoted; for invariant tests.
    pub reservations: Vec<(usize, f64)>,
}

/// State of one site's scheduler: pool + queue + running set.
pub(crate) struct SiteState {
    pub pool: NodePool,
    pub placement: PlacementPolicy,
    pub discipline: Discipline,
    pub contention: ContentionParams,
    pub queue: VecDeque<usize>,
    pub running: Vec<Running>,
    /// Simulation time of the last work-accounting advance.
    clock: f64,
    /// Wake-event generation; stale wakes are dropped.
    pub wake_gen: u64,
    /// First-quoted reservation per job (None = never quoted).
    pub reserved: Vec<Option<f64>>,
    /// Current reservation per queued job (conservative only). Persistent:
    /// once granted it only ever moves *earlier* (compression). Recomputing
    /// all reservations from scratch at each event is not monotone — an
    /// early completion can re-pack the greedy profile so that a job's
    /// fresh quote lands *later* than its pin, breaking the guarantee.
    resv: Vec<Option<f64>>,
    pub head_delay_violations: usize,
    /// Jobs started this step: `(job, start, wait)`.
    pub started: Vec<(usize, f64, f64)>,
    /// Earliest future reservation-due instant (conservative only). A
    /// reservation coming due must be a simulation event: a due job that
    /// waits for the next departure instead would start *after* its quoted
    /// time, sliding its occupancy window past what every queued job's
    /// reservation assumed — which is exactly the head-delay cascade the
    /// discipline promises away.
    next_due: Option<f64>,
}

/// A completion or kill the caller must record.
pub(crate) enum Departure {
    Completed { job: usize, start: f64, end: f64 },
    Killed { job: usize, start: f64, end: f64 },
}

impl SiteState {
    pub fn new(
        pool: NodePool,
        placement: PlacementPolicy,
        discipline: Discipline,
        contention: ContentionParams,
        n_jobs: usize,
    ) -> SiteState {
        SiteState {
            pool,
            placement,
            discipline,
            contention,
            queue: VecDeque::new(),
            running: Vec::new(),
            clock: 0.0,
            wake_gen: 0,
            reserved: vec![None; n_jobs],
            resv: vec![None; n_jobs],
            head_delay_violations: 0,
            started: Vec::new(),
            next_due: None,
        }
    }

    /// Account work done since the last advance at the current rates.
    pub fn advance(&mut self, now: f64) {
        let dt = now - self.clock;
        if dt > 0.0 {
            for r in &mut self.running {
                r.remaining -= dt / r.slowdown;
            }
        }
        self.clock = self.clock.max(now);
    }

    /// Pull out every job that has completed its work or hit its walltime
    /// by `now`. Call after `advance(now)`.
    pub fn departures(&mut self, now: f64) -> Vec<Departure> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.running.len() {
            let r = &self.running[i];
            if r.remaining <= EPS {
                let r = self.running.swap_remove(i);
                self.pool.release(&r.nodes_held);
                out.push(Departure::Completed {
                    job: r.job,
                    start: r.start,
                    end: now,
                });
            } else if r.kill_at <= now + EPS {
                let r = self.running.swap_remove(i);
                self.pool.release(&r.nodes_held);
                out.push(Departure::Killed {
                    job: r.job,
                    start: r.start,
                    end: now,
                });
            } else {
                i += 1;
            }
        }
        out
    }

    /// Recompute every running job's slowdown from the current tenant mix.
    pub fn recompute_rates(&mut self) {
        let snapshot: Vec<(Vec<usize>, f64)> = self
            .running
            .iter()
            .map(|r| (r.racks.clone(), r.eff_cf))
            .collect();
        for (i, r) in self.running.iter_mut().enumerate() {
            if r.eff_cf <= 0.0 {
                r.slowdown = 1.0;
                continue;
            }
            let sharers: f64 = snapshot
                .iter()
                .enumerate()
                .filter(|(j, (racks, cf))| *j != i && *cf > 0.0 && share_links(&r.racks, racks))
                .map(|(_, (_, cf))| *cf)
                .sum();
            let m = self.contention.multiplier(sharers);
            r.slowdown = 1.0 - r.eff_cf + r.eff_cf * m;
        }
    }

    /// Earliest future event: a running job's completion estimate at
    /// current rates, a walltime kill, a drawn preemption, or (under
    /// conservative backfilling) the next reservation coming due.
    pub fn next_event(&self) -> Option<f64> {
        let run = self
            .running
            .iter()
            .map(|r| {
                let done = self.clock + r.remaining.max(0.0) * r.slowdown;
                let t = done.min(r.kill_at);
                match r.preempt_at {
                    Some(p) => t.min(p),
                    None => t,
                }
            })
            .min_by(|a, b| a.partial_cmp(b).expect("finite event times"));
        match (run, self.next_due) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Walltime-based release profile of the running set: `(end, nodes)`
    /// sorted by end. Static upper bounds — never moved by contention.
    fn release_profile(&self, jobs: &[JobView]) -> Vec<(f64, usize)> {
        let mut prof: Vec<(f64, usize)> = self
            .running
            .iter()
            .map(|r| (r.kill_at, jobs[r.job].nodes))
            .collect();
        prof.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite walltimes"));
        prof
    }

    /// EASY reservation for a job needing `need` nodes: `(shadow, extra)`.
    fn easy_reservation(&self, need: usize, jobs: &[JobView]) -> (f64, usize) {
        let mut free = self.pool.free_count();
        debug_assert!(free < need, "head would have started");
        for (end, n) in self.release_profile(jobs) {
            free += n;
            if free >= need {
                return (end, free - need);
            }
        }
        panic!(
            "job needs {need} nodes but the pool only has {}",
            self.pool.nodes()
        );
    }

    fn start_job(&mut self, pos: usize, now: f64, jobs: &[JobView]) {
        let job = self.queue.remove(pos).expect("valid queue position");
        let v = &jobs[job];
        let nodes_held = self
            .pool
            .alloc(v.nodes, self.placement)
            .expect("fit was checked");
        if let Some(promised) = self.reserved[job] {
            if now > promised + EPS {
                self.head_delay_violations += 1;
            }
        }
        let racks = self.pool.racks_of(&nodes_held);
        let eff_cf = if nodes_held.len() > 1 {
            v.comm_fraction
        } else {
            0.0
        };
        self.running.push(Running {
            job,
            start: now,
            racks,
            eff_cf,
            remaining: v.runtime,
            slowdown: 1.0,
            kill_at: now + v.walltime,
            preempt_at: None,
            nodes_held,
        });
        // Clamp away the sub-ns residue of f64 -> SimTime rounding.
        let wait = (now - v.submit).max(0.0);
        self.started.push((job, now, wait));
    }

    /// Start every job the discipline allows at `now`. Starts are recorded
    /// in `self.started`; the caller recomputes rates afterwards.
    pub fn try_start(&mut self, now: f64, jobs: &[JobView]) {
        match self.discipline {
            Discipline::Fcfs => self.try_start_fcfs(now, jobs),
            Discipline::Easy => self.try_start_backfill(now, jobs, true),
            Discipline::NaiveBackfill => self.try_start_backfill(now, jobs, false),
            Discipline::Conservative => self.try_start_conservative(now, jobs),
        }
    }

    fn try_start_fcfs(&mut self, now: f64, jobs: &[JobView]) {
        while let Some(&head) = self.queue.front() {
            if jobs[head].nodes > self.pool.free_count() {
                break;
            }
            self.start_job(0, now, jobs);
        }
    }

    /// EASY (`respect_shadow`) and the naive foil (`!respect_shadow`) share
    /// a skeleton: start the head while it fits; otherwise reserve for the
    /// head and scan the rest of the queue for backfills.
    fn try_start_backfill(&mut self, now: f64, jobs: &[JobView], respect_shadow: bool) {
        'sched: loop {
            let Some(&head) = self.queue.front() else {
                return;
            };
            if jobs[head].nodes <= self.pool.free_count() {
                self.start_job(0, now, jobs);
                continue;
            }
            // Head blocked: quote (and pin) its reservation.
            let (shadow, extra) = self.easy_reservation(jobs[head].nodes, jobs);
            if self.reserved[head].is_none() {
                self.reserved[head] = Some(shadow);
            }
            for pos in 1..self.queue.len() {
                let cand = self.queue[pos];
                let v = &jobs[cand];
                if v.nodes > self.pool.free_count() {
                    continue;
                }
                let fits_window = now + v.walltime <= shadow + EPS;
                let fits_extra = v.nodes <= extra;
                if respect_shadow && !fits_window && !fits_extra {
                    continue;
                }
                self.start_job(pos, now, jobs);
                // Queue indices and the profile both changed; rescan (a
                // start that consumed extra nodes shrinks the recomputed
                // extra automatically: its walltime now sits in the
                // profile past the shadow).
                continue 'sched;
            }
            return;
        }
    }

    /// Conservative backfilling with *persistent* reservations. A fresh
    /// quote is computed only once, on arrival, against the running set
    /// plus every existing reservation; after that the reservation may
    /// only be *compressed* — moved earlier when, holding all other
    /// reservations fixed, an earlier window is feasible. Re-quoting the
    /// whole queue from scratch at each event (the obvious implementation)
    /// silently breaks the no-delay guarantee: an early completion lets a
    /// predecessor re-pack earlier, and the re-flowed greedy profile can
    /// push a later job's window past its first quote.
    fn try_start_conservative(&mut self, now: f64, jobs: &[JobView]) {
        self.next_due = None;
        loop {
            // Quote new arrivals in FCFS order, each against the running
            // set plus every reservation granted so far.
            for pos in 0..self.queue.len() {
                let job = self.queue[pos];
                if self.resv[job].is_some() {
                    continue;
                }
                let s = self.conservative_earliest(now, job, jobs);
                self.resv[job] = Some(s);
                if self.reserved[job].is_none() {
                    self.reserved[job] = Some(s);
                }
            }
            // Compression sweep: each job may move earlier while all
            // other reservations stay fixed, so the mutual feasibility of
            // the window set is preserved and no window ever moves later.
            for pos in 0..self.queue.len() {
                let job = self.queue[pos];
                let s = self.conservative_earliest(now, job, jobs);
                if s < self.resv[job].expect("quoted above") - EPS {
                    self.resv[job] = Some(s);
                }
            }
            // Start the first job whose reservation has come due. Starting
            // occupies exactly the reserved window, so the remaining set
            // stays feasible; loop in case the compaction cascades.
            let due = (0..self.queue.len()).find(|&pos| {
                let job = self.queue[pos];
                self.resv[job].expect("quoted above") <= now + EPS
                    && jobs[job].nodes <= self.pool.free_count()
            });
            match due {
                Some(pos) => {
                    self.resv[self.queue[pos]] = None;
                    self.start_job(pos, now, jobs);
                }
                None => break,
            }
        }
        // A reservation coming due must be a simulation event: a due job
        // that waited for the next departure would start after its quoted
        // time, sliding its occupancy past what every other window assumed.
        self.next_due = self
            .queue
            .iter()
            .filter_map(|&j| self.resv[j])
            .filter(|&s| s > now + EPS)
            .min_by(|a, b| a.partial_cmp(b).expect("finite reservations"));
    }

    /// Earliest feasible start for `job` against the running set's walltime
    /// profile plus every *other* queued job's current reservation window.
    fn conservative_earliest(&self, now: f64, job: usize, jobs: &[JobView]) -> f64 {
        let mut prof = Profile::new(now, self.pool.free_count(), self.release_profile(jobs));
        for &other in &self.queue {
            if other == job {
                continue;
            }
            if let Some(s) = self.resv[other] {
                prof.reserve(s.max(now), jobs[other].nodes, jobs[other].walltime);
            }
        }
        prof.earliest(jobs[job].nodes, jobs[job].walltime, self.pool.nodes())
    }

    /// Pull out every running job whose drawn preemption time has come:
    /// `(job, start, nominal seconds of work still unfinished)`. The nodes
    /// are released; the in-flight run is lost. Call after `advance(now)`.
    pub fn take_preempted(&mut self, now: f64) -> Vec<(usize, f64, f64)> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].preempt_at.is_some_and(|p| p <= now + EPS) {
                let r = self.running.swap_remove(i);
                self.pool.release(&r.nodes_held);
                // A revoked job requeues as a fresh arrival: the promise it
                // was quoted before it started (and ran!) is void.
                self.reserved[r.job] = None;
                self.resv[r.job] = None;
                out.push((r.job, r.start, r.remaining.max(0.0)));
            } else {
                i += 1;
            }
        }
        out
    }

    /// Arm the spot-revocation timer on a just-started job.
    pub fn set_preempt_at(&mut self, job: usize, at: f64) {
        if let Some(r) = self.running.iter_mut().find(|r| r.job == job) {
            r.preempt_at = Some(at);
        }
    }

    /// First-quoted reservations, for invariant checks.
    pub fn reservations(&self) -> Vec<(usize, f64)> {
        self.reserved
            .iter()
            .enumerate()
            .filter_map(|(j, r)| r.map(|t| (j, t)))
            .collect()
    }
}

/// Free-node availability profile for conservative reservations:
/// `(time, delta)` events prefix-summed into `(time, free-from-then-on)`
/// breakpoints, rebuilt after each reservation.
struct Profile {
    now: f64,
    free_now: i64,
    deltas: Vec<(f64, i64)>,
    /// Sorted breakpoints; `points[i].1` is the free count from
    /// `points[i].0` until the next breakpoint. `points[0].0 == now`.
    points: Vec<(f64, i64)>,
}

impl Profile {
    fn new(now: f64, free_now: usize, releases: Vec<(f64, usize)>) -> Profile {
        let mut p = Profile {
            now,
            free_now: free_now as i64,
            deltas: releases.into_iter().map(|(t, n)| (t, n as i64)).collect(),
            points: Vec::new(),
        };
        p.rebuild();
        p
    }

    fn rebuild(&mut self) {
        let mut sorted = self.deltas.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        self.points.clear();
        self.points.push((self.now, self.free_now));
        let mut free = self.free_now;
        for (t, d) in sorted {
            free += d;
            match self.points.last_mut() {
                Some(last) if (t - last.0).abs() <= EPS => last.1 = free,
                _ => self.points.push((t, free)),
            }
        }
    }

    /// Earliest start at which `need` nodes stay free for `dur` seconds.
    /// Candidate starts are breakpoints; on a violation inside the window
    /// the candidate jumps past the violating breakpoint.
    fn earliest(&self, need: usize, dur: f64, pool_nodes: usize) -> f64 {
        assert!(
            need <= pool_nodes,
            "job needs {need} nodes but the pool only has {pool_nodes}"
        );
        let need = need as i64;
        let n = self.points.len();
        let mut i = 0;
        while i < n {
            let t = self.points[i].0;
            let mut j = i;
            let mut ok = true;
            while j < n && self.points[j].0 < t + dur - EPS {
                if self.points[j].1 < need {
                    ok = false;
                    i = j + 1;
                    break;
                }
                j += 1;
            }
            if ok {
                return t;
            }
        }
        // All reservations end, so the final level is the full pool and the
        // loop must have returned by the last breakpoint.
        unreachable!("profile never frees {need} nodes");
    }

    fn reserve(&mut self, start: f64, nodes: usize, dur: f64) {
        self.deltas.push((start, -(nodes as i64)));
        self.deltas.push((start + dur, nodes as i64));
        self.rebuild();
    }
}

/// Configuration of a single-site simulation.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    pub pool: NodePool,
    pub placement: PlacementPolicy,
    pub discipline: Discipline,
    pub contention: ContentionParams,
}

/// Run a job stream through one site's scheduler. Deterministic.
pub fn simulate_site(jobs: &[SchedJob], cfg: &SiteConfig) -> SiteResult {
    #[derive(Clone, Copy)]
    enum Ev {
        Submit(usize),
        Wake(u64),
    }
    for j in jobs {
        assert!(
            j.nodes >= 1 && j.nodes <= cfg.pool.nodes(),
            "job {} needs {} nodes but the pool has {}",
            j.id,
            j.nodes,
            cfg.pool.nodes()
        );
    }
    let views: Vec<JobView> = jobs.iter().map(JobView::of).collect();
    let mut st = SiteState::new(
        cfg.pool.clone(),
        cfg.placement,
        cfg.discipline,
        cfg.contention,
        jobs.len(),
    );
    let mut q: EventQueue<Ev> = EventQueue::new();
    for (i, j) in jobs.iter().enumerate() {
        q.push(SimTime::from_secs_f64(j.submit), Ev::Submit(i));
    }
    let mut out: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
    while let Some((t, ev)) = q.pop() {
        let now = t.as_secs_f64();
        match ev {
            Ev::Submit(i) => {
                st.advance(now);
                st.queue.push_back(i);
            }
            Ev::Wake(gen) => {
                if gen != st.wake_gen {
                    continue;
                }
                st.advance(now);
            }
        }
        for dep in st.departures(now) {
            let (job, start, end, completed) = match dep {
                Departure::Completed { job, start, end } => (job, start, end, true),
                Departure::Killed { job, start, end } => (job, start, end, false),
            };
            out[job] = Some(JobOutcome {
                id: jobs[job].id,
                start,
                end,
                wait: (start - views[job].submit).max(0.0),
                inflation: ((end - start) - views[job].runtime).max(0.0),
                completed,
            });
        }
        st.try_start(now, &views);
        st.started.clear();
        st.recompute_rates();
        st.wake_gen += 1;
        if let Some(te) = st.next_event() {
            q.push(SimTime::from_secs_f64(te.max(now)), Ev::Wake(st.wake_gen));
        }
    }
    let outcomes: Vec<JobOutcome> = out
        .into_iter()
        .map(|o| o.expect("every job departs"))
        .collect();
    let n = outcomes.len().max(1) as f64;
    let first_submit = jobs.iter().map(|j| j.submit).fold(f64::INFINITY, f64::min);
    let last_end = outcomes.iter().map(|o| o.end).fold(0.0, f64::max);
    SiteResult {
        makespan: if outcomes.is_empty() {
            0.0
        } else {
            last_end - first_submit
        },
        mean_wait: outcomes.iter().map(|o| o.wait).sum::<f64>() / n,
        total_inflation: outcomes.iter().map(|o| o.inflation).sum(),
        head_delay_violations: st.head_delay_violations,
        reservations: st.reservations(),
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nodes: usize, rack: usize, d: Discipline) -> SiteConfig {
        SiteConfig {
            pool: NodePool::new(nodes, rack),
            placement: PlacementPolicy::Packed,
            discipline: d,
            contention: ContentionParams::NONE,
        }
    }

    /// The canonical head-delay scenario: J0 holds 6/8 nodes until t=100;
    /// J1 (head) needs all 8; J2 is a 2-node, 150 s job.
    fn head_delay_jobs() -> Vec<SchedJob> {
        let mut j0 = SchedJob::new(0, 6, 0.0, 100.0, 0.0);
        j0.walltime = 100.0;
        let mut j1 = SchedJob::new(1, 8, 1.0, 50.0, 0.0);
        j1.walltime = 50.0;
        let mut j2 = SchedJob::new(2, 2, 2.0, 150.0, 0.0);
        j2.walltime = 150.0;
        vec![j0, j1, j2]
    }

    #[test]
    fn easy_rejects_head_delaying_backfill() {
        let r = simulate_site(&head_delay_jobs(), &cfg(8, 8, Discipline::Easy));
        // J2 must not backfill (ends at 152 > shadow 100, uses head nodes):
        // head starts exactly at the shadow.
        assert!((r.outcomes[1].start - 100.0).abs() < 1e-6, "{r:?}");
        assert_eq!(r.head_delay_violations, 0);
        // J2 runs after the head.
        assert!(r.outcomes[2].start >= 150.0 - 1e-6);
    }

    #[test]
    fn naive_backfill_delays_the_head() {
        let r = simulate_site(&head_delay_jobs(), &cfg(8, 8, Discipline::NaiveBackfill));
        // The naive rule starts J2 at t=2 on free nodes; the head can then
        // only start when J2 ends at t=152.
        assert!((r.outcomes[2].start - 2.0).abs() < 1e-6, "{r:?}");
        assert!((r.outcomes[1].start - 152.0).abs() < 1e-6, "{r:?}");
        assert_eq!(r.head_delay_violations, 1);
    }

    #[test]
    fn easy_backfills_within_the_shadow_window() {
        let mut jobs = head_delay_jobs();
        // A 2-node job short enough to finish before the shadow.
        jobs[2].runtime = 50.0;
        jobs[2].walltime = 50.0;
        let r = simulate_site(&jobs, &cfg(8, 8, Discipline::Easy));
        assert!((r.outcomes[2].start - 2.0).abs() < 1e-6, "{r:?}");
        assert!((r.outcomes[1].start - 100.0).abs() < 1e-6, "{r:?}");
        assert_eq!(r.head_delay_violations, 0);
    }

    #[test]
    fn conservative_honours_every_reservation() {
        let r = simulate_site(&head_delay_jobs(), &cfg(8, 8, Discipline::Conservative));
        assert_eq!(r.head_delay_violations, 0);
        // Conservative reserves J2 behind both: starts at 150.
        assert!((r.outcomes[1].start - 100.0).abs() < 1e-6, "{r:?}");
        assert!((r.outcomes[2].start - 150.0).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn fcfs_blocks_behind_the_head() {
        let r = simulate_site(&head_delay_jobs(), &cfg(8, 8, Discipline::Fcfs));
        assert!((r.outcomes[1].start - 100.0).abs() < 1e-6);
        assert!((r.outcomes[2].start - 150.0).abs() < 1e-6);
    }

    #[test]
    fn contention_inflates_colocated_comm_jobs() {
        // Two 2-node comm-heavy jobs in the same rack of a GigE-class
        // fabric: each sees the other as a sharer.
        let contention = ContentionParams {
            beta: 0.5,
            cap: 2.5,
        };
        let mk = |id, submit| {
            let mut j = SchedJob::new(id, 2, submit, 100.0, 0.8);
            j.walltime = 300.0;
            j
        };
        let cfg = SiteConfig {
            pool: NodePool::new(4, 4),
            placement: PlacementPolicy::Packed,
            discipline: Discipline::Fcfs,
            contention,
        };
        let r = simulate_site(&[mk(0, 0.0), mk(1, 0.0)], &cfg);
        // Each job: slowdown = 1 - 0.8 + 0.8 * (1 + 0.5 * 0.8) = 1.32
        // while both run; the first to finish then runs uncontended — but
        // they're symmetric, so both finish at 132.
        for o in &r.outcomes {
            assert!(o.completed);
            assert!((o.inflation - 32.0).abs() < 0.5, "{o:?}");
        }
        // Solo control: no inflation.
        let solo = simulate_site(&[mk(0, 0.0)], &cfg);
        assert!(solo.outcomes[0].inflation < 1e-6);
    }

    #[test]
    fn rack_aware_placement_avoids_cross_job_contention() {
        // Two 2-node jobs on a 2-rack pool: rack-aware puts them in
        // different racks (no shared links); scattered forces both across
        // the spine.
        let contention = ContentionParams {
            beta: 0.5,
            cap: 2.5,
        };
        let mk = |id| {
            let mut j = SchedJob::new(id, 2, 0.0, 100.0, 0.8);
            j.walltime = 300.0;
            j
        };
        let run = |placement| {
            let cfg = SiteConfig {
                pool: NodePool::new(8, 4),
                placement,
                discipline: Discipline::Fcfs,
                contention,
            };
            simulate_site(&[mk(0), mk(1)], &cfg).total_inflation
        };
        // Packed best-fits both into rack 0 -> leaf contention.
        assert!(run(PlacementPolicy::Packed) > 10.0);
        assert!(run(PlacementPolicy::Scattered) > 10.0);
        assert!(run(PlacementPolicy::RackAware) < 1e-6);
    }

    #[test]
    fn walltime_overrun_kills_the_job() {
        let mut j = SchedJob::new(0, 2, 0.0, 100.0, 0.9);
        j.walltime = 100.0; // no headroom at all
        let mut rival = SchedJob::new(1, 2, 0.0, 100.0, 0.9);
        rival.walltime = 400.0;
        let cfg = SiteConfig {
            pool: NodePool::new(4, 4),
            placement: PlacementPolicy::Packed,
            discipline: Discipline::Fcfs,
            contention: ContentionParams {
                beta: 0.5,
                cap: 2.5,
            },
        };
        let r = simulate_site(&[j, rival], &cfg);
        assert!(!r.outcomes[0].completed, "{r:?}");
        assert!((r.outcomes[0].end - 100.0).abs() < 1e-6);
        assert!(r.outcomes[1].completed);
    }

    #[test]
    fn backfill_beats_fcfs_on_mean_wait() {
        let jobs = crate::job::lublin_mix(120, 16, 1.4, 42);
        let fcfs = simulate_site(&jobs, &cfg(16, 16, Discipline::Fcfs));
        let easy = simulate_site(&jobs, &cfg(16, 16, Discipline::Easy));
        assert!(easy.head_delay_violations == 0);
        assert!(
            easy.mean_wait <= fcfs.mean_wait,
            "easy {} vs fcfs {}",
            easy.mean_wait,
            fcfs.mean_wait
        );
        assert!(easy.makespan <= fcfs.makespan + 1e-6);
    }
}
