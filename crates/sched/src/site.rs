//! The single-site scheduling engine: queue disciplines over
//! `sim_des::EventQueue`, with placement-aware link contention.
//!
//! # Engines
//!
//! Two engines implement every discipline. The **slot-set engine**
//! (default) schedules over a [`SlotSet`]: a time-ordered list of slots,
//! each holding the available [`ProcSet`] over its interval, with slot
//! split/merge as the only mutations. Starting a job subtracts its
//! placement from the slots over `[start, start + walltime)`; a departure
//! adds it back over the unused tail. Count profiles walked off the slot
//! list feed the same earliest-fit scan the legacy engine used, which is
//! what makes the two engines bit-identical on the classic disciplines —
//! pinned by the equivalence suite — while only the slot-set engine can
//! express advance reservations, maintenance calendars, per-project
//! quotas, job dependencies and moldable jobs. The **legacy free-node
//! engine** counts free nodes at event times; it is kept behind
//! [`SchedEngine::LegacyFreeNode`] purely as the equivalence oracle and
//! rejects the new capabilities at validation.
//!
//! # Disciplines
//!
//! * **FCFS** — strict: the queue head blocks everything behind it.
//! * **EASY backfill** (Mu'alem & Feitelson) — the head gets a reservation
//!   (*shadow time*: the earliest instant enough nodes are guaranteed free,
//!   computed from running jobs' walltimes; *extra nodes*: what's left over
//!   at the shadow). A later job may jump the queue iff it fits the free
//!   nodes now **and** either finishes (by its walltime) before the shadow
//!   or only uses extra nodes. Under that rule a backfill can never delay
//!   the head's reservation — the EASY invariant.
//! * **Conservative backfill** — every queued job holds a *persistent*
//!   reservation against the walltime profile, quoted once on arrival in
//!   FCFS order and thereafter only compressed (moved earlier when an early
//!   completion opens a feasible earlier window, holding all other
//!   reservations fixed); a job starts exactly when its reservation comes
//!   due. No job is ever delayed past its first quoted start.
//! * **NaiveBackfill** — the historically buggy rule this subsystem
//!   replaced: backfill anything that fits the *currently free* nodes,
//!   ignoring reservations. Kept (documented, non-default) as the
//!   regression foil: it demonstrably delays the head (see
//!   `tests/sched_invariants.rs`).
//!
//! # New capabilities (slot-set engine only)
//!
//! * **Maintenance calendars** ([`Maintenance`]): each window is pre-split
//!   into the slot set at setup, hard-removing its nodes; a job only starts
//!   when its whole `[now, now + walltime)` window avoids the outage.
//! * **Advance reservations** ([`SchedJob::at`]): placed like pseudo-jobs
//!   at setup — concrete nodes are selected against the window's
//!   availability and pre-split out of the slots, so batch traffic routes
//!   around them; the job then starts exactly on time.
//! * **Per-project quotas** ([`QuotaRule`]): a concurrent node cap per
//!   project (optionally only inside a time window), enforced at
//!   slot-selection time as an admission gate. Quotas can defer a quoted
//!   start; reservations bypass them.
//! * **Dependencies** ([`SchedJob::with_deps`]): a job is gated until every
//!   dependency has departed (completed *or* killed).
//! * **Moldable jobs** ([`SchedJob::with_shapes`]): on submission each
//!   candidate shape is quoted against the slot profile and the job
//!   commits, once, to the shape with the earliest estimated finish (ties:
//!   fewer nodes, then declaration order).
//!
//! # Contention
//!
//! Placements map to rack sets ([`NodePool::racks_of`]); running jobs that
//! share links ([`share_links`]) inflate each other's communication via the
//! shared [`ContentionParams`] model — the same formula the MPI engine
//! applies when given a [`sim_mpi` `Background`] — so a job's progress rate
//! is `1 / (1 - cf + cf * multiplier)`. Rates change only when the running
//! set changes; completions are re-estimated at each such point through a
//! generation-checked wake event (stale wakes are dropped).
//!
//! Reservations, by contrast, are computed from **static walltimes**, which
//! are upper bounds on actual runtime by construction (walltime >= nominal
//! runtime x the contention cap; a job that somehow exceeds its walltime is
//! killed). That independence is what keeps the EASY invariant intact even
//! though actual completion times move with the tenant mix.

use crate::error::SchedError;
use crate::job::{JobShape, SchedJob};
use crate::pool::{share_links, NodePool, PlacementPolicy};
use crate::slot::{earliest_fit, level_at, ProcSet, SlotSet, EPS};
use sim_des::{EventQueue, SimTime};
use sim_net::ContentionParams;
use std::collections::VecDeque;

/// Queue discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    Fcfs,
    Easy,
    Conservative,
    /// The free-nodes-only backfill rule (head-delay bug); regression foil.
    NaiveBackfill,
}

impl Discipline {
    pub fn name(&self) -> &'static str {
        match self {
            Discipline::Fcfs => "fcfs",
            Discipline::Easy => "easy",
            Discipline::Conservative => "conservative",
            Discipline::NaiveBackfill => "naive-backfill",
        }
    }
}

/// Which scheduling core runs the discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedEngine {
    /// Interval algebra over the slot set (default; full capability set).
    #[default]
    SlotSet,
    /// The historical free-node counting core, kept as the equivalence
    /// oracle. Rejects calendars, quotas, reservations, dependencies and
    /// moldable jobs at validation.
    LegacyFreeNode,
}

impl SchedEngine {
    pub fn name(&self) -> &'static str {
        match self {
            SchedEngine::SlotSet => "slot-set",
            SchedEngine::LegacyFreeNode => "legacy-free-node",
        }
    }
}

/// Which nodes a maintenance window takes down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintNodes {
    All,
    Rack(usize),
    Nodes(Vec<usize>),
}

/// A scheduled outage: `nodes` are unavailable over `[begin, end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Maintenance {
    pub begin: f64,
    pub end: f64,
    pub nodes: MaintNodes,
}

/// A concurrent node cap for one project, optionally only inside a time
/// window (outside the window the project is unmetered).
#[derive(Debug, Clone, PartialEq)]
pub struct QuotaRule {
    pub project: u32,
    pub max_nodes: usize,
    pub window: Option<(f64, f64)>,
}

/// What the site scheduler needs to know about one job. Per-site view:
/// multi-site simulations hold one per site with site-specific runtimes,
/// and moldable jobs overwrite their view with the committed shape.
#[derive(Debug, Clone, Copy)]
pub(crate) struct JobView {
    pub nodes: usize,
    /// Nominal (uncontended) runtime on this site.
    pub runtime: f64,
    /// Static walltime bound used for reservations and the kill timer.
    pub walltime: f64,
    pub comm_fraction: f64,
    pub submit: f64,
}

impl JobView {
    pub(crate) fn of(j: &SchedJob) -> JobView {
        JobView {
            nodes: j.nodes,
            runtime: j.runtime,
            walltime: j.walltime,
            comm_fraction: j.comm_fraction,
            submit: j.submit,
        }
    }
}

/// A job currently holding nodes.
#[derive(Debug, Clone)]
pub(crate) struct Running {
    pub job: usize,
    pub start: f64,
    pub nodes_held: Vec<usize>,
    racks: Vec<usize>,
    /// Communication weight on shared links: `comm_fraction`, or 0 for
    /// single-node jobs (no inter-node traffic).
    eff_cf: f64,
    /// Nominal seconds of work left.
    remaining: f64,
    /// Current slowdown factor (>= 1); progress rate is `1 / slowdown`.
    slowdown: f64,
    kill_at: f64,
    /// Spot revocation time, if one was drawn (multi-site only).
    pub preempt_at: Option<f64>,
}

/// Per-job result of a site simulation.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    pub id: usize,
    pub start: f64,
    pub end: f64,
    pub wait: f64,
    /// Actual minus nominal runtime: seconds lost to link contention.
    pub inflation: f64,
    /// False if the job hit its walltime and was killed.
    pub completed: bool,
    /// Nodes actually held — the committed shape for moldable jobs.
    pub nodes: usize,
}

/// Aggregate result of [`simulate_site`].
#[derive(Debug, Clone)]
pub struct SiteResult {
    /// Outcomes in input-job order.
    pub outcomes: Vec<JobOutcome>,
    pub makespan: f64,
    pub mean_wait: f64,
    pub total_inflation: f64,
    /// Jobs that started later than the reservation recorded when they
    /// first blocked at the head (EASY/conservative: must stay 0; the
    /// naive rule trips it).
    pub head_delay_violations: usize,
    /// `(job index, reserved start)` as first quoted; for invariant tests.
    pub reservations: Vec<(usize, f64)>,
}

/// A pinned advance reservation: concrete nodes pre-split out of the slot
/// set over `[start, start + walltime)`, started exactly on time.
#[derive(Debug, Clone)]
struct Advance {
    job: usize,
    start: f64,
    walltime: f64,
    procs: ProcSet,
    done: bool,
}

/// State of one site's scheduler: pool + queue + running set + slot set.
pub(crate) struct SiteState {
    pub pool: NodePool,
    pub placement: PlacementPolicy,
    pub discipline: Discipline,
    pub contention: ContentionParams,
    pub engine: SchedEngine,
    pub queue: VecDeque<usize>,
    pub running: Vec<Running>,
    /// Simulation time of the last work-accounting advance.
    clock: f64,
    /// Wake-event generation; stale wakes are dropped.
    pub wake_gen: u64,
    /// First-quoted reservation per job (None = never quoted).
    pub reserved: Vec<Option<f64>>,
    /// Current reservation per queued job (conservative only). Persistent:
    /// once granted it only ever moves *earlier* (compression). Recomputing
    /// all reservations from scratch at each event is not monotone — an
    /// early completion can re-pack the greedy profile so that a job's
    /// fresh quote lands *later* than its pin, breaking the guarantee.
    resv: Vec<Option<f64>>,
    pub head_delay_violations: usize,
    /// Jobs started this step: `(job, start, wait)`.
    pub started: Vec<(usize, f64, f64)>,
    /// Earliest future reservation-due instant (conservative only). A
    /// reservation coming due must be a simulation event: a due job that
    /// waits for the next departure instead would start *after* its quoted
    /// time, sliding its occupancy window past what every queued job's
    /// reservation assumed — which is exactly the head-delay cascade the
    /// discipline promises away.
    next_due: Option<f64>,
    /// The availability timeline (slot-set engine only).
    slots: SlotSet,
    quotas: Vec<QuotaRule>,
    /// Per-job accounting project (indexes parallel the job list).
    project: Vec<Option<u32>>,
    /// Per-job dependency edges; a job is eligible once every dep departed.
    deps: Vec<Vec<usize>>,
    dep_done: Vec<bool>,
    /// Submitted jobs still gated on dependencies, in submission order.
    gated: Vec<usize>,
    advance: Vec<Advance>,
    /// Whether maintenance windows were pre-split into the slots. Sticky:
    /// once outages shape the timeline, window-fit checks stay on.
    calendar_applied: bool,
}

/// A completion or kill the caller must record.
pub(crate) enum Departure {
    Completed {
        job: usize,
        start: f64,
        end: f64,
        nodes: usize,
    },
    Killed {
        job: usize,
        start: f64,
        end: f64,
        nodes: usize,
    },
}

impl SiteState {
    pub fn new(
        pool: NodePool,
        placement: PlacementPolicy,
        discipline: Discipline,
        contention: ContentionParams,
        engine: SchedEngine,
        n_jobs: usize,
    ) -> SiteState {
        let slots = SlotSet::new(0.0, pool.hierarchy().site());
        SiteState {
            pool,
            placement,
            discipline,
            contention,
            engine,
            queue: VecDeque::new(),
            running: Vec::new(),
            clock: 0.0,
            wake_gen: 0,
            reserved: vec![None; n_jobs],
            resv: vec![None; n_jobs],
            head_delay_violations: 0,
            started: Vec::new(),
            next_due: None,
            slots,
            quotas: Vec::new(),
            project: vec![None; n_jobs],
            deps: vec![Vec::new(); n_jobs],
            dep_done: vec![false; n_jobs],
            gated: Vec::new(),
            advance: Vec::new(),
            calendar_applied: false,
        }
    }

    /// Install per-job capability data (projects, dependencies) and the
    /// site's quota rules. Single-site drivers call this; the burst driver
    /// leaves everything default (its jobs carry no capability features).
    pub(crate) fn set_features(&mut self, jobs: &[SchedJob], quotas: &[QuotaRule]) {
        for (i, j) in jobs.iter().enumerate() {
            self.project[i] = j.project;
            self.deps[i] = j.deps.clone();
        }
        self.quotas = quotas.to_vec();
    }

    /// Pre-split every maintenance window out of the slot set.
    pub(crate) fn apply_calendar(&mut self, calendar: &[Maintenance]) {
        self.calendar_applied = self.calendar_applied || !calendar.is_empty();
        for m in calendar {
            let procs = match &m.nodes {
                MaintNodes::All => self.pool.hierarchy().site(),
                MaintNodes::Rack(r) => self.pool.hierarchy().rack_set(*r),
                MaintNodes::Nodes(ids) => ProcSet::from_ids(ids),
            };
            self.slots.sub_window(m.begin, m.end, &procs);
        }
    }

    /// Pin an advance reservation: select concrete nodes against the
    /// window's availability and pre-split them out of the slot set.
    pub(crate) fn register_advance(
        &mut self,
        job: usize,
        start: f64,
        v: &JobView,
    ) -> Result<(), SchedError> {
        let cand = self.slots.window_avail(start, start + v.walltime);
        let picked = self
            .pool
            .hierarchy()
            .select(&cand, v.nodes, self.placement)
            .map_err(|_| SchedError::ReservationUnsatisfiable { job, at: start })?;
        let procs = ProcSet::from_ids(&picked);
        self.slots.sub_window(start, start + v.walltime, &procs);
        self.advance.push(Advance {
            job,
            start,
            walltime: v.walltime,
            procs,
            done: false,
        });
        Ok(())
    }

    /// True when something besides the running set shapes availability —
    /// the gate between the legacy-parity fast paths (instantaneous
    /// availability) and the full window-fit checks.
    fn constrained(&self) -> bool {
        !self.quotas.is_empty() || !self.advance.is_empty() || self.calendar_applied
    }

    /// Account work done since the last advance at the current rates.
    pub fn advance(&mut self, now: f64) {
        let dt = now - self.clock;
        if dt > 0.0 {
            for r in &mut self.running {
                r.remaining -= dt / r.slowdown;
            }
        }
        self.clock = self.clock.max(now);
        if self.engine == SchedEngine::SlotSet {
            self.slots.truncate_before(self.clock);
        }
    }

    /// Queue a submitted job, or gate it on unfinished dependencies.
    /// Advance-reservation jobs never queue — the calendar starts them.
    pub(crate) fn submit(&mut self, job: usize) {
        if self.advance.iter().any(|a| a.job == job) {
            return;
        }
        if self.deps[job].iter().all(|&d| self.dep_done[d]) {
            self.queue.push_back(job);
        } else {
            self.gated.push(job);
        }
    }

    /// Move every gated job whose dependencies have all departed into the
    /// queue, preserving submission order.
    fn release_gated(&mut self) {
        let mut i = 0;
        while i < self.gated.len() {
            let job = self.gated[i];
            if self.deps[job].iter().all(|&d| self.dep_done[d]) {
                self.gated.remove(i);
                self.queue.push_back(job);
            } else {
                i += 1;
            }
        }
    }

    /// Pull out every job that has completed its work or hit its walltime
    /// by `now`. Call after `advance(now)`.
    pub fn departures(&mut self, now: f64) -> Vec<Departure> {
        let mut out = Vec::new();
        let mut i = 0;
        let mut released = false;
        while i < self.running.len() {
            let r = &self.running[i];
            if r.remaining <= EPS {
                let r = self.running.swap_remove(i);
                self.release_run(now, &r);
                released = true;
                out.push(Departure::Completed {
                    job: r.job,
                    start: r.start,
                    end: now,
                    nodes: r.nodes_held.len(),
                });
            } else if r.kill_at <= now + EPS {
                let r = self.running.swap_remove(i);
                self.release_run(now, &r);
                released = true;
                out.push(Departure::Killed {
                    job: r.job,
                    start: r.start,
                    end: now,
                    nodes: r.nodes_held.len(),
                });
            } else {
                i += 1;
            }
        }
        if released && self.engine == SchedEngine::SlotSet {
            self.slots.merge();
        }
        for d in &out {
            let job = match d {
                Departure::Completed { job, .. } | Departure::Killed { job, .. } => *job,
            };
            self.dep_done[job] = true;
        }
        out
    }

    /// Return a departing run's nodes to the pool and to the unused tail
    /// of its slot window.
    fn release_run(&mut self, now: f64, r: &Running) {
        self.pool.release(&r.nodes_held);
        if self.engine == SchedEngine::SlotSet && now < r.kill_at {
            self.slots
                .add_window(now, r.kill_at, &ProcSet::from_ids(&r.nodes_held));
        }
    }

    /// Recompute every running job's slowdown from the current tenant mix.
    pub fn recompute_rates(&mut self) {
        let snapshot: Vec<(Vec<usize>, f64)> = self
            .running
            .iter()
            .map(|r| (r.racks.clone(), r.eff_cf))
            .collect();
        for (i, r) in self.running.iter_mut().enumerate() {
            if r.eff_cf <= 0.0 {
                r.slowdown = 1.0;
                continue;
            }
            let sharers: f64 = snapshot
                .iter()
                .enumerate()
                .filter(|(j, (racks, cf))| *j != i && *cf > 0.0 && share_links(&r.racks, racks))
                .map(|(_, (_, cf))| *cf)
                .sum();
            let m = self.contention.multiplier(sharers);
            r.slowdown = 1.0 - r.eff_cf + r.eff_cf * m;
        }
    }

    /// Earliest future event: a running job's completion estimate at
    /// current rates, a walltime kill, a drawn preemption, or (under
    /// conservative backfilling) the next reservation coming due.
    pub fn next_event(&self) -> Option<f64> {
        let run = self
            .running
            .iter()
            .map(|r| {
                let done = self.clock + r.remaining.max(0.0) * r.slowdown;
                let t = done.min(r.kill_at);
                match r.preempt_at {
                    Some(p) => t.min(p),
                    None => t,
                }
            })
            .min_by(|a, b| a.partial_cmp(b).expect("finite event times"));
        match (run, self.next_due) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    // -- Legacy free-node primitives -------------------------------------

    /// Walltime-based release profile of the running set: `(end, nodes)`
    /// sorted by end. Static upper bounds — never moved by contention.
    fn release_profile(&self, jobs: &[JobView]) -> Vec<(f64, usize)> {
        let mut prof: Vec<(f64, usize)> = self
            .running
            .iter()
            .map(|r| (r.kill_at, jobs[r.job].nodes))
            .collect();
        prof.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite walltimes"));
        prof
    }

    /// EASY reservation for a job needing `need` nodes: `(shadow, extra)`.
    fn easy_reservation(&self, need: usize, jobs: &[JobView]) -> (f64, usize) {
        let mut free = self.pool.free_count();
        debug_assert!(free < need, "head would have started");
        for (end, n) in self.release_profile(jobs) {
            free += n;
            if free >= need {
                return (end, free - need);
            }
        }
        panic!(
            "job needs {need} nodes but the pool only has {}",
            self.pool.nodes()
        );
    }

    // -- Slot-set primitives ---------------------------------------------

    /// The slot walk from `now` on, as a `(base level, deltas)` pair in the
    /// shape the legacy `Profile` consumed — what makes conservative quotes
    /// on the two engines bit-identical.
    fn slot_profile(&self, now: f64) -> (i64, Vec<(f64, i64)>) {
        let slots = self.slots.slots();
        let i = self.slots.index_at(now);
        let base = slots[i].effective();
        let mut level = base;
        let mut deltas = Vec::with_capacity(slots.len() - i);
        for s in &slots[i + 1..] {
            let l = s.effective();
            deltas.push((s.begin, l - level));
            level = l;
        }
        (base, deltas)
    }

    /// EASY reservation off the slot walk: earliest breakpoint where the
    /// head's whole walltime window fits, plus the spare level there. On an
    /// unconstrained (monotone) profile this is exactly the legacy
    /// release-walk crossing.
    fn easy_reservation_slot(&self, now: f64, need: usize, walltime: f64) -> (f64, i64) {
        let slots = self.slots.slots();
        let i = self.slots.index_at(now);
        let mut points = Vec::with_capacity(slots.len() - i);
        points.push((now, slots[i].effective()));
        for s in &slots[i + 1..] {
            points.push((s.begin, s.effective()));
        }
        let shadow = earliest_fit(&points, need as i64, walltime)
            .unwrap_or_else(|| panic!("job needs {need} nodes but the site never frees them"));
        (shadow, level_at(&points, shadow) - need as i64)
    }

    /// The procs a job starting now may be placed on, or `None` when the
    /// placement policy cannot carve its width out of them. Unconstrained
    /// runs use the instantaneous availability (the legacy semantics);
    /// constrained runs intersect the job's whole walltime window so a
    /// start can never collide with a maintenance outage or a pinned
    /// reservation downstream.
    fn placement_fit(&self, now: f64, v: &JobView) -> Option<ProcSet> {
        let cand = if self.constrained() {
            self.slots.window_avail(now, now + v.walltime)
        } else {
            self.slots.avail_at(now).clone()
        };
        if self
            .pool
            .hierarchy()
            .feasible(&cand, v.nodes, self.placement)
        {
            Some(cand)
        } else {
            None
        }
    }

    /// Admission gate: would starting `need` more nodes for `job`'s
    /// project break an active quota rule?
    fn quota_ok(&self, now: f64, job: usize, need: usize) -> bool {
        let Some(p) = self.project.get(job).copied().flatten() else {
            return true;
        };
        for q in &self.quotas {
            if q.project != p {
                continue;
            }
            if let Some((b, e)) = q.window {
                if now < b - EPS || now >= e - EPS {
                    continue;
                }
            }
            let usage: usize = self
                .running
                .iter()
                .filter(|r| self.project.get(r.job).copied().flatten() == Some(p))
                .map(|r| r.nodes_held.len())
                .sum();
            if usage + need > q.max_nodes {
                return false;
            }
        }
        true
    }

    /// Commit a moldable job to the shape with the earliest estimated
    /// finish against the current slot profile (ties: fewer nodes, then
    /// declaration order). Called once, at submission.
    pub(crate) fn choose_shape(&self, now: f64, j: &SchedJob) -> Option<JobShape> {
        if j.shapes.is_empty() {
            return None;
        }
        let (base, deltas) = self.slot_profile(now);
        let prof = Profile::new(now, base, deltas);
        let mut best: Option<(f64, usize, JobShape)> = None;
        for shape in &j.shapes {
            let start = prof.earliest(shape.nodes, shape.walltime, self.pool.nodes());
            let finish = start + shape.runtime;
            let better = match &best {
                None => true,
                Some((f, n, _)) => {
                    finish < f - EPS || ((finish - f).abs() <= EPS && shape.nodes < *n)
                }
            };
            if better {
                best = Some((finish, shape.nodes, *shape));
            }
        }
        best.map(|(_, _, s)| s)
    }

    /// Start every pinned advance reservation whose time has come, on
    /// exactly its pre-split nodes.
    pub(crate) fn start_due_advance(
        &mut self,
        now: f64,
        jobs: &[JobView],
    ) -> Result<(), SchedError> {
        for i in 0..self.advance.len() {
            let (job, start, walltime, done) = {
                let a = &self.advance[i];
                (a.job, a.start, a.walltime, a.done)
            };
            if done || start > now + EPS {
                continue;
            }
            let procs = self.advance[i].procs.clone();
            let v = jobs[job];
            let held = self
                .pool
                .alloc_from(v.nodes, self.placement, &procs)
                .map_err(|_| SchedError::ReservationUnsatisfiable { job, at: start })?;
            // Kill at the pre-split window's exact end, so the departure
            // hands back precisely the slots the pin took.
            self.commence(job, now, &v, held, start + walltime, true);
            self.advance[i].done = true;
        }
        Ok(())
    }

    // -- Starting jobs ----------------------------------------------------

    /// Legacy path: allocate from the whole free pool.
    fn start_job(&mut self, pos: usize, now: f64, jobs: &[JobView]) -> Result<(), SchedError> {
        let job = self.queue.remove(pos).expect("valid queue position");
        let v = jobs[job];
        let nodes_held = self.pool.alloc(v.nodes, self.placement)?;
        self.commence(job, now, &v, nodes_held, now + v.walltime, false);
        Ok(())
    }

    /// Slot path: allocate from the window's candidate procs and split the
    /// placement out of the slots over `[now, now + walltime)`.
    fn start_job_slot(
        &mut self,
        pos: usize,
        now: f64,
        jobs: &[JobView],
        cand: &ProcSet,
    ) -> Result<(), SchedError> {
        let job = self.queue.remove(pos).expect("valid queue position");
        let v = jobs[job];
        let nodes_held = self.pool.alloc_from(v.nodes, self.placement, cand)?;
        self.commence(job, now, &v, nodes_held, now + v.walltime, false);
        Ok(())
    }

    /// Shared tail of every start: record the reservation violation, split
    /// the slots (unless the window was pre-split by a pinned reservation),
    /// and push the running record.
    fn commence(
        &mut self,
        job: usize,
        now: f64,
        v: &JobView,
        nodes_held: Vec<usize>,
        kill_at: f64,
        presplit: bool,
    ) {
        if self.engine == SchedEngine::SlotSet && !presplit {
            self.slots
                .sub_window(now, kill_at, &ProcSet::from_ids(&nodes_held));
        }
        if let Some(promised) = self.reserved[job] {
            if now > promised + EPS {
                self.head_delay_violations += 1;
            }
        }
        let racks = self.pool.racks_of(&nodes_held);
        let eff_cf = if nodes_held.len() > 1 {
            v.comm_fraction
        } else {
            0.0
        };
        self.running.push(Running {
            job,
            start: now,
            racks,
            eff_cf,
            remaining: v.runtime,
            slowdown: 1.0,
            kill_at,
            preempt_at: None,
            nodes_held,
        });
        // Clamp away the sub-ns residue of f64 -> SimTime rounding.
        let wait = (now - v.submit).max(0.0);
        self.started.push((job, now, wait));
    }

    /// Start every job the discipline allows at `now`. Starts are recorded
    /// in `self.started`; the caller recomputes rates afterwards.
    pub fn try_start(&mut self, now: f64, jobs: &[JobView]) -> Result<(), SchedError> {
        self.release_gated();
        match (self.engine, self.discipline) {
            (SchedEngine::LegacyFreeNode, Discipline::Fcfs) => self.try_start_fcfs(now, jobs),
            (SchedEngine::LegacyFreeNode, Discipline::Easy) => {
                self.try_start_backfill(now, jobs, true)
            }
            (SchedEngine::LegacyFreeNode, Discipline::NaiveBackfill) => {
                self.try_start_backfill(now, jobs, false)
            }
            (SchedEngine::LegacyFreeNode, Discipline::Conservative) => {
                self.try_start_conservative(now, jobs)
            }
            (SchedEngine::SlotSet, Discipline::Fcfs) => self.try_start_fcfs_slot(now, jobs),
            (SchedEngine::SlotSet, Discipline::Easy) => {
                self.try_start_backfill_slot(now, jobs, true)
            }
            (SchedEngine::SlotSet, Discipline::NaiveBackfill) => {
                self.try_start_backfill_slot(now, jobs, false)
            }
            (SchedEngine::SlotSet, Discipline::Conservative) => {
                self.try_start_conservative_slot(now, jobs)
            }
        }
    }

    fn try_start_fcfs(&mut self, now: f64, jobs: &[JobView]) -> Result<(), SchedError> {
        while let Some(&head) = self.queue.front() {
            if jobs[head].nodes > self.pool.free_count() {
                break;
            }
            self.start_job(0, now, jobs)?;
        }
        Ok(())
    }

    /// EASY (`respect_shadow`) and the naive foil (`!respect_shadow`) share
    /// a skeleton: start the head while it fits; otherwise reserve for the
    /// head and scan the rest of the queue for backfills.
    fn try_start_backfill(
        &mut self,
        now: f64,
        jobs: &[JobView],
        respect_shadow: bool,
    ) -> Result<(), SchedError> {
        'sched: loop {
            let Some(&head) = self.queue.front() else {
                return Ok(());
            };
            if jobs[head].nodes <= self.pool.free_count() {
                self.start_job(0, now, jobs)?;
                continue;
            }
            // Head blocked: quote (and pin) its reservation.
            let (shadow, extra) = self.easy_reservation(jobs[head].nodes, jobs);
            if self.reserved[head].is_none() {
                self.reserved[head] = Some(shadow);
            }
            for pos in 1..self.queue.len() {
                let cand = self.queue[pos];
                let v = &jobs[cand];
                if v.nodes > self.pool.free_count() {
                    continue;
                }
                let fits_window = now + v.walltime <= shadow + EPS;
                let fits_extra = v.nodes <= extra;
                if respect_shadow && !fits_window && !fits_extra {
                    continue;
                }
                self.start_job(pos, now, jobs)?;
                // Queue indices and the profile both changed; rescan (a
                // start that consumed extra nodes shrinks the recomputed
                // extra automatically: its walltime now sits in the
                // profile past the shadow).
                continue 'sched;
            }
            return Ok(());
        }
    }

    /// Conservative backfilling with *persistent* reservations. A fresh
    /// quote is computed only once, on arrival, against the running set
    /// plus every existing reservation; after that the reservation may
    /// only be *compressed* — moved earlier when, holding all other
    /// reservations fixed, an earlier window is feasible. Re-quoting the
    /// whole queue from scratch at each event (the obvious implementation)
    /// silently breaks the no-delay guarantee: an early completion lets a
    /// predecessor re-pack earlier, and the re-flowed greedy profile can
    /// push a later job's window past its first quote.
    fn try_start_conservative(&mut self, now: f64, jobs: &[JobView]) -> Result<(), SchedError> {
        self.next_due = None;
        loop {
            // Quote new arrivals in FCFS order, each against the running
            // set plus every reservation granted so far.
            for pos in 0..self.queue.len() {
                let job = self.queue[pos];
                if self.resv[job].is_some() {
                    continue;
                }
                let s = self.conservative_earliest(now, job, jobs);
                self.resv[job] = Some(s);
                if self.reserved[job].is_none() {
                    self.reserved[job] = Some(s);
                }
            }
            // Compression sweep: each job may move earlier while all
            // other reservations stay fixed, so the mutual feasibility of
            // the window set is preserved and no window ever moves later.
            for pos in 0..self.queue.len() {
                let job = self.queue[pos];
                let s = self.conservative_earliest(now, job, jobs);
                if s < self.resv[job].expect("quoted above") - EPS {
                    self.resv[job] = Some(s);
                }
            }
            // Start the first job whose reservation has come due. Starting
            // occupies exactly the reserved window, so the remaining set
            // stays feasible; loop in case the compaction cascades.
            let due = (0..self.queue.len()).find(|&pos| {
                let job = self.queue[pos];
                self.resv[job].expect("quoted above") <= now + EPS
                    && jobs[job].nodes <= self.pool.free_count()
            });
            match due {
                Some(pos) => {
                    self.resv[self.queue[pos]] = None;
                    self.start_job(pos, now, jobs)?;
                }
                None => break,
            }
        }
        // A reservation coming due must be a simulation event: a due job
        // that waited for the next departure would start after its quoted
        // time, sliding its occupancy past what every other window assumed.
        self.next_due = self
            .queue
            .iter()
            .filter_map(|&j| self.resv[j])
            .filter(|&s| s > now + EPS)
            .min_by(|a, b| a.partial_cmp(b).expect("finite reservations"));
        Ok(())
    }

    /// Earliest feasible start for `job` against the running set's walltime
    /// profile plus every *other* queued job's current reservation window.
    fn conservative_earliest(&self, now: f64, job: usize, jobs: &[JobView]) -> f64 {
        let releases = self
            .release_profile(jobs)
            .into_iter()
            .map(|(t, n)| (t, n as i64))
            .collect();
        let mut prof = Profile::new(now, self.pool.free_count() as i64, releases);
        for &other in &self.queue {
            if other == job {
                continue;
            }
            if let Some(s) = self.resv[other] {
                prof.reserve(s.max(now), jobs[other].nodes, jobs[other].walltime);
            }
        }
        prof.earliest(jobs[job].nodes, jobs[job].walltime, self.pool.nodes())
    }

    // -- Slot-set disciplines --------------------------------------------

    fn try_start_fcfs_slot(&mut self, now: f64, jobs: &[JobView]) -> Result<(), SchedError> {
        while let Some(&head) = self.queue.front() {
            let v = jobs[head];
            let Some(cand) = self.placement_fit(now, &v) else {
                break;
            };
            if !self.quota_ok(now, head, v.nodes) {
                break;
            }
            self.start_job_slot(0, now, jobs, &cand)?;
        }
        Ok(())
    }

    fn try_start_backfill_slot(
        &mut self,
        now: f64,
        jobs: &[JobView],
        respect_shadow: bool,
    ) -> Result<(), SchedError> {
        'sched: loop {
            let Some(&head) = self.queue.front() else {
                return Ok(());
            };
            let head_fit = self.placement_fit(now, &jobs[head]);
            if let Some(cand) = &head_fit {
                if self.quota_ok(now, head, jobs[head].nodes) {
                    let cand = cand.clone();
                    self.start_job_slot(0, now, jobs, &cand)?;
                    continue;
                }
            }
            // Head blocked: quote its reservation. Only a capacity block
            // pins a promise — an admission (quota) block is not the
            // scheduler's to promise around, and the quote below still
            // bounds what may backfill safely.
            let (shadow, extra) =
                self.easy_reservation_slot(now, jobs[head].nodes, jobs[head].walltime);
            if head_fit.is_none() && self.reserved[head].is_none() {
                self.reserved[head] = Some(shadow);
            }
            for pos in 1..self.queue.len() {
                let cand_job = self.queue[pos];
                let v = jobs[cand_job];
                let Some(cand) = self.placement_fit(now, &v) else {
                    continue;
                };
                if !self.quota_ok(now, cand_job, v.nodes) {
                    continue;
                }
                let fits_window = now + v.walltime <= shadow + EPS;
                let fits_extra = v.nodes as i64 <= extra;
                if respect_shadow && !fits_window && !fits_extra {
                    continue;
                }
                self.start_job_slot(pos, now, jobs, &cand)?;
                continue 'sched;
            }
            return Ok(());
        }
    }

    fn try_start_conservative_slot(
        &mut self,
        now: f64,
        jobs: &[JobView],
    ) -> Result<(), SchedError> {
        self.next_due = None;
        loop {
            for pos in 0..self.queue.len() {
                let job = self.queue[pos];
                if self.resv[job].is_some() {
                    continue;
                }
                let s = self.conservative_earliest_slot(now, job, jobs);
                self.resv[job] = Some(s);
                if self.reserved[job].is_none() {
                    self.reserved[job] = Some(s);
                }
            }
            for pos in 0..self.queue.len() {
                let job = self.queue[pos];
                let s = self.conservative_earliest_slot(now, job, jobs);
                if s < self.resv[job].expect("quoted above") - EPS {
                    self.resv[job] = Some(s);
                }
            }
            // A due job must also clear the admission gate and the window
            // fit; one that does not stays queued (quotas may defer a
            // quoted start — admission control trumps the quote).
            let due = (0..self.queue.len()).find(|&pos| {
                let job = self.queue[pos];
                self.resv[job].expect("quoted above") <= now + EPS
                    && self.quota_ok(now, job, jobs[job].nodes)
                    && self.placement_fit(now, &jobs[job]).is_some()
            });
            match due {
                Some(pos) => {
                    let job = self.queue[pos];
                    self.resv[job] = None;
                    let cand = self
                        .placement_fit(now, &jobs[job])
                        .expect("checked in the due scan");
                    self.start_job_slot(pos, now, jobs, &cand)?;
                }
                None => break,
            }
        }
        self.next_due = self
            .queue
            .iter()
            .filter_map(|&j| self.resv[j])
            .filter(|&s| s > now + EPS)
            .min_by(|a, b| a.partial_cmp(b).expect("finite reservations"));
        Ok(())
    }

    /// [`Self::conservative_earliest`] fed from the slot walk instead of
    /// the running list — byte-identical quotes by construction.
    fn conservative_earliest_slot(&self, now: f64, job: usize, jobs: &[JobView]) -> f64 {
        let (base, deltas) = self.slot_profile(now);
        let mut prof = Profile::new(now, base, deltas);
        for &other in &self.queue {
            if other == job {
                continue;
            }
            if let Some(s) = self.resv[other] {
                prof.reserve(s.max(now), jobs[other].nodes, jobs[other].walltime);
            }
        }
        prof.earliest(jobs[job].nodes, jobs[job].walltime, self.pool.nodes())
    }

    // -- Preemption (multi-site) -----------------------------------------

    /// Pull out every running job whose drawn preemption time has come:
    /// `(job, start, nominal seconds of work still unfinished)`. The nodes
    /// are released; the in-flight run is lost. Call after `advance(now)`.
    pub fn take_preempted(&mut self, now: f64) -> Vec<(usize, f64, f64)> {
        let mut out = Vec::new();
        let mut i = 0;
        let mut released = false;
        while i < self.running.len() {
            if self.running[i].preempt_at.is_some_and(|p| p <= now + EPS) {
                let r = self.running.swap_remove(i);
                self.release_run(now, &r);
                released = true;
                // A revoked job requeues as a fresh arrival: the promise it
                // was quoted before it started (and ran!) is void.
                self.reserved[r.job] = None;
                self.resv[r.job] = None;
                out.push((r.job, r.start, r.remaining.max(0.0)));
            } else {
                i += 1;
            }
        }
        if released && self.engine == SchedEngine::SlotSet {
            self.slots.merge();
        }
        out
    }

    /// Arm the spot-revocation timer on a just-started job.
    pub fn set_preempt_at(&mut self, job: usize, at: f64) {
        if let Some(r) = self.running.iter_mut().find(|r| r.job == job) {
            r.preempt_at = Some(at);
        }
    }

    /// First-quoted reservations, for invariant checks.
    pub fn reservations(&self) -> Vec<(usize, f64)> {
        self.reserved
            .iter()
            .enumerate()
            .filter_map(|(j, r)| r.map(|t| (j, t)))
            .collect()
    }
}

/// Free-node availability profile for conservative reservations:
/// `(time, delta)` events prefix-summed into `(time, free-from-then-on)`
/// breakpoints, rebuilt after each reservation. Deltas may be negative
/// (maintenance windows dip the profile); the earliest scan handles dips.
struct Profile {
    now: f64,
    free_now: i64,
    deltas: Vec<(f64, i64)>,
    /// Sorted breakpoints; `points[i].1` is the free count from
    /// `points[i].0` until the next breakpoint. `points[0].0 == now`.
    points: Vec<(f64, i64)>,
}

impl Profile {
    fn new(now: f64, free_now: i64, deltas: Vec<(f64, i64)>) -> Profile {
        let mut p = Profile {
            now,
            free_now,
            deltas,
            points: Vec::new(),
        };
        p.rebuild();
        p
    }

    fn rebuild(&mut self) {
        let mut sorted = self.deltas.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        self.points.clear();
        self.points.push((self.now, self.free_now));
        let mut free = self.free_now;
        for (t, d) in sorted {
            free += d;
            match self.points.last_mut() {
                Some(last) if (t - last.0).abs() <= EPS => last.1 = free,
                _ => self.points.push((t, free)),
            }
        }
    }

    /// Earliest start at which `need` nodes stay free for `dur` seconds.
    /// Candidate starts are breakpoints; on a violation inside the window
    /// the candidate jumps past the violating breakpoint.
    fn earliest(&self, need: usize, dur: f64, pool_nodes: usize) -> f64 {
        assert!(
            need <= pool_nodes,
            "job needs {need} nodes but the pool only has {pool_nodes}"
        );
        match earliest_fit(&self.points, need as i64, dur) {
            Some(t) => t,
            // All reservations and outages end, so the final level is the
            // full pool and the scan must have landed by the last point.
            None => unreachable!("profile never frees {need} nodes"),
        }
    }

    fn reserve(&mut self, start: f64, nodes: usize, dur: f64) {
        self.deltas.push((start, -(nodes as i64)));
        self.deltas.push((start + dur, nodes as i64));
        self.rebuild();
    }
}

/// Configuration of a single-site simulation.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    pub pool: NodePool,
    pub placement: PlacementPolicy,
    pub discipline: Discipline,
    pub contention: ContentionParams,
    pub engine: SchedEngine,
    pub calendar: Vec<Maintenance>,
    pub quotas: Vec<QuotaRule>,
}

impl SiteConfig {
    pub fn new(
        pool: NodePool,
        placement: PlacementPolicy,
        discipline: Discipline,
        contention: ContentionParams,
    ) -> SiteConfig {
        SiteConfig {
            pool,
            placement,
            discipline,
            contention,
            engine: SchedEngine::default(),
            calendar: Vec::new(),
            quotas: Vec::new(),
        }
    }

    pub fn with_engine(mut self, engine: SchedEngine) -> SiteConfig {
        self.engine = engine;
        self
    }

    pub fn with_maintenance(mut self, m: Maintenance) -> SiteConfig {
        self.calendar.push(m);
        self
    }

    pub fn with_quota(mut self, q: QuotaRule) -> SiteConfig {
        self.quotas.push(q);
        self
    }
}

fn validate(jobs: &[SchedJob], cfg: &SiteConfig) -> Result<(), SchedError> {
    use std::cmp::Ordering;
    // Windows must strictly increase; `partial_cmp` keeps NaN rejected.
    let increases = |a: f64, b: f64| a.partial_cmp(&b) == Some(Ordering::Less);
    let pool_nodes = cfg.pool.nodes();
    let legacy = cfg.engine == SchedEngine::LegacyFreeNode;
    for m in &cfg.calendar {
        if !increases(m.begin, m.end) || m.begin < 0.0 {
            return Err(SchedError::InvalidConfig {
                reason: format!("maintenance window [{}, {}) is inverted", m.begin, m.end),
            });
        }
        match &m.nodes {
            MaintNodes::Rack(r) if *r >= cfg.pool.n_racks() => {
                return Err(SchedError::InvalidConfig {
                    reason: format!("maintenance names rack {r} of {}", cfg.pool.n_racks()),
                })
            }
            MaintNodes::Nodes(ids) if ids.iter().any(|&n| n >= pool_nodes) => {
                return Err(SchedError::InvalidConfig {
                    reason: "maintenance names a node outside the pool".to_string(),
                })
            }
            _ => {}
        }
    }
    for q in &cfg.quotas {
        if q.max_nodes == 0 {
            return Err(SchedError::InvalidConfig {
                reason: format!("zero-node quota for project {}", q.project),
            });
        }
        if let Some((b, e)) = q.window {
            if !increases(b, e) {
                return Err(SchedError::InvalidConfig {
                    reason: format!("quota window [{b}, {e}) is inverted"),
                });
            }
        }
    }
    if legacy && !cfg.calendar.is_empty() {
        return Err(SchedError::LegacyEngineUnsupported {
            feature: "maintenance calendars",
        });
    }
    if legacy && !cfg.quotas.is_empty() {
        return Err(SchedError::LegacyEngineUnsupported {
            feature: "per-project quotas",
        });
    }
    for (i, j) in jobs.iter().enumerate() {
        if legacy {
            if !j.deps.is_empty() {
                return Err(SchedError::LegacyEngineUnsupported {
                    feature: "job dependencies",
                });
            }
            if !j.shapes.is_empty() {
                return Err(SchedError::LegacyEngineUnsupported {
                    feature: "moldable jobs",
                });
            }
            if j.start_at.is_some() {
                return Err(SchedError::LegacyEngineUnsupported {
                    feature: "advance reservations",
                });
            }
        }
        let widths: Vec<usize> = if j.shapes.is_empty() {
            vec![j.nodes]
        } else {
            j.shapes.iter().map(|s| s.nodes).collect()
        };
        for &w in &widths {
            if w == 0 {
                return Err(SchedError::InvalidJob {
                    job: i,
                    reason: "zero-node shape".to_string(),
                });
            }
            if w > pool_nodes {
                return Err(SchedError::InsufficientNodes {
                    job: i,
                    need: w,
                    limit: pool_nodes,
                });
            }
            // RackStrict can never place a job wider than one rack.
            if cfg.placement == PlacementPolicy::RackStrict && w > cfg.pool.hierarchy().rack_size()
            {
                return Err(SchedError::InsufficientNodes {
                    job: i,
                    need: w,
                    limit: cfg.pool.hierarchy().rack_size(),
                });
            }
            // A windowless quota is a hard ceiling.
            if let Some(p) = j.project {
                for q in &cfg.quotas {
                    if q.project == p && q.window.is_none() && w > q.max_nodes {
                        return Err(SchedError::InsufficientNodes {
                            job: i,
                            need: w,
                            limit: q.max_nodes,
                        });
                    }
                }
            }
        }
        for s in &j.shapes {
            if !increases(0.0, s.runtime) || s.walltime < s.runtime {
                return Err(SchedError::InvalidJob {
                    job: i,
                    reason: "shape with non-positive runtime or walltime < runtime".to_string(),
                });
            }
        }
        if j.deps.iter().any(|&d| d >= jobs.len()) {
            return Err(SchedError::InvalidJob {
                job: i,
                reason: "dependency on an unknown job".to_string(),
            });
        }
        if let Some(t) = j.start_at {
            if t < j.submit - EPS {
                return Err(SchedError::InvalidJob {
                    job: i,
                    reason: "reservation before submission".to_string(),
                });
            }
            if !j.deps.is_empty() || !j.shapes.is_empty() {
                return Err(SchedError::InvalidJob {
                    job: i,
                    reason: "advance reservations cannot be dependent or moldable".to_string(),
                });
            }
        }
    }
    // Dependency edges must form a DAG (a cycle waits on itself forever).
    let mut color = vec![0u8; jobs.len()]; // 0 white, 1 grey, 2 black
    fn dfs(v: usize, jobs: &[SchedJob], color: &mut [u8]) -> Result<(), SchedError> {
        color[v] = 1;
        for &d in &jobs[v].deps {
            match color[d] {
                1 => return Err(SchedError::DependencyCycle { job: d }),
                0 => dfs(d, jobs, color)?,
                _ => {}
            }
        }
        color[v] = 2;
        Ok(())
    }
    for v in 0..jobs.len() {
        if color[v] == 0 {
            dfs(v, jobs, &mut color)?;
        }
    }
    Ok(())
}

/// Run a job stream through one site's scheduler. Deterministic. Errors
/// are typed: fragmentation under a strict placement on the legacy engine,
/// unsatisfiable reservations, invalid configs — never a panic.
pub fn simulate_site(jobs: &[SchedJob], cfg: &SiteConfig) -> Result<SiteResult, SchedError> {
    #[derive(Clone, Copy)]
    enum Ev {
        Submit(usize),
        /// A static calendar instant (maintenance end, quota window end,
        /// reservation start): always valid, just re-runs the scheduler.
        Tick,
        Wake(u64),
    }
    validate(jobs, cfg)?;
    let mut views: Vec<JobView> = jobs.iter().map(JobView::of).collect();
    let mut st = SiteState::new(
        cfg.pool.clone(),
        cfg.placement,
        cfg.discipline,
        cfg.contention,
        cfg.engine,
        jobs.len(),
    );
    st.set_features(jobs, &cfg.quotas);
    st.apply_calendar(&cfg.calendar);
    let mut q: EventQueue<Ev> = EventQueue::new();
    // Static wake-ups: only instants that can *enable* a start need an
    // event (window begins merely restrict, and are enforced inline).
    if cfg.engine == SchedEngine::SlotSet {
        for m in &cfg.calendar {
            q.push(SimTime::from_secs_f64(m.end), Ev::Tick);
        }
        for rule in &cfg.quotas {
            if let Some((_, e)) = rule.window {
                q.push(SimTime::from_secs_f64(e), Ev::Tick);
            }
        }
    }
    for (i, j) in jobs.iter().enumerate() {
        if let Some(start) = j.start_at {
            st.register_advance(i, start, &views[i])?;
            q.push(SimTime::from_secs_f64(start), Ev::Tick);
        }
        q.push(SimTime::from_secs_f64(j.submit), Ev::Submit(i));
    }
    let mut out: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
    while let Some((t, ev)) = q.pop() {
        let now = t.as_secs_f64();
        match ev {
            Ev::Submit(i) => {
                st.advance(now);
                if let Some(shape) = st.choose_shape(now, &jobs[i]) {
                    views[i].nodes = shape.nodes;
                    views[i].runtime = shape.runtime;
                    views[i].walltime = shape.walltime;
                }
                st.submit(i);
            }
            Ev::Tick => st.advance(now),
            Ev::Wake(gen) => {
                if gen != st.wake_gen {
                    continue;
                }
                st.advance(now);
            }
        }
        for dep in st.departures(now) {
            let (job, start, end, nodes, completed) = match dep {
                Departure::Completed {
                    job,
                    start,
                    end,
                    nodes,
                } => (job, start, end, nodes, true),
                Departure::Killed {
                    job,
                    start,
                    end,
                    nodes,
                } => (job, start, end, nodes, false),
            };
            out[job] = Some(JobOutcome {
                id: jobs[job].id,
                start,
                end,
                wait: (start - views[job].submit).max(0.0),
                inflation: ((end - start) - views[job].runtime).max(0.0),
                completed,
                nodes,
            });
        }
        st.start_due_advance(now, &views)?;
        st.try_start(now, &views)?;
        st.started.clear();
        st.recompute_rates();
        st.wake_gen += 1;
        if let Some(te) = st.next_event() {
            q.push(SimTime::from_secs_f64(te.max(now)), Ev::Wake(st.wake_gen));
        }
    }
    let outcomes: Vec<JobOutcome> = out
        .into_iter()
        .map(|o| o.expect("every job departs"))
        .collect();
    let n = outcomes.len().max(1) as f64;
    let first_submit = jobs.iter().map(|j| j.submit).fold(f64::INFINITY, f64::min);
    let last_end = outcomes.iter().map(|o| o.end).fold(0.0, f64::max);
    Ok(SiteResult {
        makespan: if outcomes.is_empty() {
            0.0
        } else {
            last_end - first_submit
        },
        mean_wait: outcomes.iter().map(|o| o.wait).sum::<f64>() / n,
        total_inflation: outcomes.iter().map(|o| o.inflation).sum(),
        head_delay_violations: st.head_delay_violations,
        reservations: st.reservations(),
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nodes: usize, rack: usize, d: Discipline) -> SiteConfig {
        SiteConfig::new(
            NodePool::new(nodes, rack),
            PlacementPolicy::Packed,
            d,
            ContentionParams::NONE,
        )
    }

    /// The canonical head-delay scenario: J0 holds 6/8 nodes until t=100;
    /// J1 (head) needs all 8; J2 is a 2-node, 150 s job.
    fn head_delay_jobs() -> Vec<SchedJob> {
        let mut j0 = SchedJob::new(0, 6, 0.0, 100.0, 0.0);
        j0.walltime = 100.0;
        let mut j1 = SchedJob::new(1, 8, 1.0, 50.0, 0.0);
        j1.walltime = 50.0;
        let mut j2 = SchedJob::new(2, 2, 2.0, 150.0, 0.0);
        j2.walltime = 150.0;
        vec![j0, j1, j2]
    }

    #[test]
    fn easy_rejects_head_delaying_backfill() {
        let r = simulate_site(&head_delay_jobs(), &cfg(8, 8, Discipline::Easy)).unwrap();
        // J2 must not backfill (ends at 152 > shadow 100, uses head nodes):
        // head starts exactly at the shadow.
        assert!((r.outcomes[1].start - 100.0).abs() < 1e-6, "{r:?}");
        assert_eq!(r.head_delay_violations, 0);
        // J2 runs after the head.
        assert!(r.outcomes[2].start >= 150.0 - 1e-6);
    }

    #[test]
    fn naive_backfill_delays_the_head() {
        let r = simulate_site(&head_delay_jobs(), &cfg(8, 8, Discipline::NaiveBackfill)).unwrap();
        // The naive rule starts J2 at t=2 on free nodes; the head can then
        // only start when J2 ends at t=152.
        assert!((r.outcomes[2].start - 2.0).abs() < 1e-6, "{r:?}");
        assert!((r.outcomes[1].start - 152.0).abs() < 1e-6, "{r:?}");
        assert_eq!(r.head_delay_violations, 1);
    }

    #[test]
    fn easy_backfills_within_the_shadow_window() {
        let mut jobs = head_delay_jobs();
        // A 2-node job short enough to finish before the shadow.
        jobs[2].runtime = 50.0;
        jobs[2].walltime = 50.0;
        let r = simulate_site(&jobs, &cfg(8, 8, Discipline::Easy)).unwrap();
        assert!((r.outcomes[2].start - 2.0).abs() < 1e-6, "{r:?}");
        assert!((r.outcomes[1].start - 100.0).abs() < 1e-6, "{r:?}");
        assert_eq!(r.head_delay_violations, 0);
    }

    #[test]
    fn conservative_honours_every_reservation() {
        let r = simulate_site(&head_delay_jobs(), &cfg(8, 8, Discipline::Conservative)).unwrap();
        assert_eq!(r.head_delay_violations, 0);
        // Conservative reserves J2 behind both: starts at 150.
        assert!((r.outcomes[1].start - 100.0).abs() < 1e-6, "{r:?}");
        assert!((r.outcomes[2].start - 150.0).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn fcfs_blocks_behind_the_head() {
        let r = simulate_site(&head_delay_jobs(), &cfg(8, 8, Discipline::Fcfs)).unwrap();
        assert!((r.outcomes[1].start - 100.0).abs() < 1e-6);
        assert!((r.outcomes[2].start - 150.0).abs() < 1e-6);
    }

    #[test]
    fn contention_inflates_colocated_comm_jobs() {
        // Two 2-node comm-heavy jobs in the same rack of a GigE-class
        // fabric: each sees the other as a sharer.
        let contention = ContentionParams {
            beta: 0.5,
            cap: 2.5,
        };
        let mk = |id, submit| {
            let mut j = SchedJob::new(id, 2, submit, 100.0, 0.8);
            j.walltime = 300.0;
            j
        };
        let cfg = SiteConfig::new(
            NodePool::new(4, 4),
            PlacementPolicy::Packed,
            Discipline::Fcfs,
            contention,
        );
        let r = simulate_site(&[mk(0, 0.0), mk(1, 0.0)], &cfg).unwrap();
        // Each job: slowdown = 1 - 0.8 + 0.8 * (1 + 0.5 * 0.8) = 1.32
        // while both run; the first to finish then runs uncontended — but
        // they're symmetric, so both finish at 132.
        for o in &r.outcomes {
            assert!(o.completed);
            assert!((o.inflation - 32.0).abs() < 0.5, "{o:?}");
        }
        // Solo control: no inflation.
        let solo = simulate_site(&[mk(0, 0.0)], &cfg).unwrap();
        assert!(solo.outcomes[0].inflation < 1e-6);
    }

    #[test]
    fn rack_aware_placement_avoids_cross_job_contention() {
        // Two 2-node jobs on a 2-rack pool: rack-aware puts them in
        // different racks (no shared links); scattered forces both across
        // the spine.
        let contention = ContentionParams {
            beta: 0.5,
            cap: 2.5,
        };
        let mk = |id| {
            let mut j = SchedJob::new(id, 2, 0.0, 100.0, 0.8);
            j.walltime = 300.0;
            j
        };
        let run = |placement| {
            let cfg = SiteConfig::new(NodePool::new(8, 4), placement, Discipline::Fcfs, contention);
            simulate_site(&[mk(0), mk(1)], &cfg)
                .unwrap()
                .total_inflation
        };
        // Packed best-fits both into rack 0 -> leaf contention.
        assert!(run(PlacementPolicy::Packed) > 10.0);
        assert!(run(PlacementPolicy::Scattered) > 10.0);
        assert!(run(PlacementPolicy::RackAware) < 1e-6);
    }

    #[test]
    fn walltime_overrun_kills_the_job() {
        let mut j = SchedJob::new(0, 2, 0.0, 100.0, 0.9);
        j.walltime = 100.0; // no headroom at all
        let mut rival = SchedJob::new(1, 2, 0.0, 100.0, 0.9);
        rival.walltime = 400.0;
        let cfg = SiteConfig::new(
            NodePool::new(4, 4),
            PlacementPolicy::Packed,
            Discipline::Fcfs,
            ContentionParams {
                beta: 0.5,
                cap: 2.5,
            },
        );
        let r = simulate_site(&[j, rival], &cfg).unwrap();
        assert!(!r.outcomes[0].completed, "{r:?}");
        assert!((r.outcomes[0].end - 100.0).abs() < 1e-6);
        assert!(r.outcomes[1].completed);
    }

    #[test]
    fn backfill_beats_fcfs_on_mean_wait() {
        let jobs = crate::job::lublin_mix(120, 16, 1.4, 42);
        let fcfs = simulate_site(&jobs, &cfg(16, 16, Discipline::Fcfs)).unwrap();
        let easy = simulate_site(&jobs, &cfg(16, 16, Discipline::Easy)).unwrap();
        assert!(easy.head_delay_violations == 0);
        assert!(
            easy.mean_wait <= fcfs.mean_wait,
            "easy {} vs fcfs {}",
            easy.mean_wait,
            fcfs.mean_wait
        );
        assert!(easy.makespan <= fcfs.makespan + 1e-6);
    }

    // -- Engine equivalence and the new capabilities ----------------------

    #[test]
    fn slot_engine_matches_the_legacy_oracle_on_a_seeded_mix() {
        let jobs = crate::job::lublin_mix(80, 16, 1.2, 7);
        for d in [
            Discipline::Fcfs,
            Discipline::Easy,
            Discipline::Conservative,
            Discipline::NaiveBackfill,
        ] {
            let slot = simulate_site(&jobs, &cfg(16, 4, d)).unwrap();
            let legacy = simulate_site(
                &jobs,
                &cfg(16, 4, d).with_engine(SchedEngine::LegacyFreeNode),
            )
            .unwrap();
            assert_eq!(slot.head_delay_violations, legacy.head_delay_violations);
            for (a, b) in slot.outcomes.iter().zip(&legacy.outcomes) {
                assert_eq!(a.start, b.start, "{} job {}", d.name(), a.id);
                assert_eq!(a.end, b.end, "{} job {}", d.name(), a.id);
                assert_eq!(a.nodes, b.nodes);
            }
        }
    }

    #[test]
    fn maintenance_window_forces_a_wait() {
        // All four nodes down over [10, 20): a job submitted at 5 whose
        // walltime crosses the outage must hold until the window clears.
        let mut j = SchedJob::new(0, 4, 5.0, 8.0, 0.0);
        j.walltime = 8.0;
        let c = cfg(4, 4, Discipline::Easy).with_maintenance(Maintenance {
            begin: 10.0,
            end: 20.0,
            nodes: MaintNodes::All,
        });
        let r = simulate_site(&[j], &c).unwrap();
        assert!((r.outcomes[0].start - 20.0).abs() < 1e-6, "{r:?}");
        assert!(r.outcomes[0].completed);
    }

    #[test]
    fn quota_caps_concurrent_project_nodes() {
        // Four 2-node jobs billed to project 0 with a 4-node cap: two run,
        // two wait for the first pair to depart.
        let jobs: Vec<SchedJob> = (0..4)
            .map(|i| {
                let mut j = SchedJob::new(i, 2, 0.0, 100.0, 0.0).with_project(0);
                j.walltime = 100.0;
                j
            })
            .collect();
        let c = cfg(8, 8, Discipline::Fcfs).with_quota(QuotaRule {
            project: 0,
            max_nodes: 4,
            window: None,
        });
        let r = simulate_site(&jobs, &c).unwrap();
        let early = r.outcomes.iter().filter(|o| o.start < 1e-6).count();
        assert_eq!(early, 2, "{r:?}");
        for o in &r.outcomes[2..] {
            assert!(o.start >= 100.0 - 1e-6, "{o:?}");
        }
    }

    #[test]
    fn dependency_gates_until_the_dep_departs() {
        let mut j0 = SchedJob::new(0, 2, 0.0, 100.0, 0.0);
        j0.walltime = 100.0;
        let j1 = SchedJob::new(1, 2, 0.0, 50.0, 0.0).with_deps(&[0]);
        let r = simulate_site(&[j0, j1], &cfg(8, 8, Discipline::Easy)).unwrap();
        assert!((r.outcomes[1].start - 100.0).abs() < 1e-6, "{r:?}");
        let cyclic = vec![
            SchedJob::new(0, 1, 0.0, 10.0, 0.0).with_deps(&[1]),
            SchedJob::new(1, 1, 0.0, 10.0, 0.0).with_deps(&[0]),
        ];
        assert!(matches!(
            simulate_site(&cyclic, &cfg(8, 8, Discipline::Easy)),
            Err(SchedError::DependencyCycle { .. })
        ));
    }

    #[test]
    fn moldable_job_commits_to_the_earliest_finishing_shape() {
        let j = SchedJob::new(0, 4, 0.0, 100.0, 0.0).with_shapes(&[
            JobShape {
                nodes: 4,
                runtime: 100.0,
                walltime: 100.0,
            },
            JobShape {
                nodes: 8,
                runtime: 60.0,
                walltime: 60.0,
            },
        ]);
        let r = simulate_site(&[j], &cfg(8, 8, Discipline::Easy)).unwrap();
        assert_eq!(r.outcomes[0].nodes, 8, "{r:?}");
        assert!((r.outcomes[0].end - 60.0).abs() < 1e-6);
        // With half the pool held, the wide shape queues behind a long
        // walltime while the narrow one starts immediately — narrow wins.
        let mut blocker = SchedJob::new(0, 4, 0.0, 500.0, 0.0);
        blocker.walltime = 500.0;
        let mold = SchedJob::new(1, 4, 1.0, 100.0, 0.0).with_shapes(&[
            JobShape {
                nodes: 4,
                runtime: 100.0,
                walltime: 100.0,
            },
            JobShape {
                nodes: 8,
                runtime: 60.0,
                walltime: 60.0,
            },
        ]);
        let r = simulate_site(&[blocker, mold], &cfg(8, 8, Discipline::Easy)).unwrap();
        assert_eq!(r.outcomes[1].nodes, 4, "{r:?}");
        assert!(r.outcomes[1].start < 2.0);
    }

    #[test]
    fn advance_reservation_starts_exactly_on_time() {
        // A 4-node reservation at t=500 pins nodes; a 4-node batch job
        // routes around the pin and runs immediately.
        let mut resv = SchedJob::new(0, 4, 0.0, 200.0, 0.0).at(500.0);
        resv.walltime = 200.0;
        let mut batch = SchedJob::new(1, 4, 0.0, 1000.0, 0.0);
        batch.walltime = 1000.0;
        let r = simulate_site(&[resv, batch], &cfg(8, 8, Discipline::Easy)).unwrap();
        assert!((r.outcomes[0].start - 500.0).abs() < 1e-6, "{r:?}");
        assert!(r.outcomes[1].start < 1e-6, "{r:?}");
        assert!(r.outcomes[0].completed && r.outcomes[1].completed);
    }

    #[test]
    fn legacy_engine_rejects_the_new_capabilities() {
        let dep = vec![
            SchedJob::new(0, 1, 0.0, 10.0, 0.0),
            SchedJob::new(1, 1, 0.0, 10.0, 0.0).with_deps(&[0]),
        ];
        let legacy = cfg(8, 8, Discipline::Easy).with_engine(SchedEngine::LegacyFreeNode);
        assert!(matches!(
            simulate_site(&dep, &legacy),
            Err(SchedError::LegacyEngineUnsupported {
                feature: "job dependencies"
            })
        ));
        let quota_cfg = cfg(8, 8, Discipline::Easy)
            .with_engine(SchedEngine::LegacyFreeNode)
            .with_quota(QuotaRule {
                project: 0,
                max_nodes: 4,
                window: None,
            });
        assert!(matches!(
            simulate_site(&[SchedJob::new(0, 1, 0.0, 10.0, 0.0)], &quota_cfg),
            Err(SchedError::LegacyEngineUnsupported { .. })
        ));
    }
}
