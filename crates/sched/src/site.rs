//! The single-site scheduling engine: queue disciplines over
//! `sim_des::EventQueue`, with placement-aware link contention.
//!
//! # Engines
//!
//! Two engines implement every discipline. The **slot-set engine**
//! (default) schedules over a [`SlotSet`]: a time-ordered list of slots,
//! each holding the available [`ProcSet`] over its interval, with slot
//! split/merge as the only mutations. Starting a job subtracts its
//! placement from the slots over `[start, start + walltime)`; a departure
//! adds it back over the unused tail. Count profiles walked off the slot
//! list feed the same earliest-fit scan the legacy engine used, which is
//! what makes the two engines bit-identical on the classic disciplines —
//! pinned by the equivalence suite — while only the slot-set engine can
//! express advance reservations, maintenance calendars, per-project
//! quotas, job dependencies and moldable jobs. The **legacy free-node
//! engine** counts free nodes at event times; it is kept behind
//! [`SchedEngine::LegacyFreeNode`] purely as the equivalence oracle and
//! rejects the new capabilities at validation.
//!
//! # Disciplines
//!
//! * **FCFS** — strict: the queue head blocks everything behind it.
//! * **EASY backfill** (Mu'alem & Feitelson) — the head gets a reservation
//!   (*shadow time*: the earliest instant enough nodes are guaranteed free,
//!   computed from running jobs' walltimes; *extra nodes*: what's left over
//!   at the shadow). A later job may jump the queue iff it fits the free
//!   nodes now **and** either finishes (by its walltime) before the shadow
//!   or only uses extra nodes. Under that rule a backfill can never delay
//!   the head's reservation — the EASY invariant.
//! * **Conservative backfill** — every queued job holds a *persistent*
//!   reservation against the walltime profile, quoted once on arrival in
//!   FCFS order and thereafter only compressed (moved earlier when an early
//!   completion opens a feasible earlier window, holding all other
//!   reservations fixed); a job starts exactly when its reservation comes
//!   due. No job is ever delayed past its first quoted start.
//! * **NaiveBackfill** — the historically buggy rule this subsystem
//!   replaced: backfill anything that fits the *currently free* nodes,
//!   ignoring reservations. Kept (documented, non-default) as the
//!   regression foil: it demonstrably delays the head (see
//!   `tests/sched_invariants.rs`).
//!
//! # New capabilities (slot-set engine only)
//!
//! * **Maintenance calendars** ([`Maintenance`]): each window is pre-split
//!   into the slot set at setup, hard-removing its nodes; a job only starts
//!   when its whole `[now, now + walltime)` window avoids the outage.
//! * **Advance reservations** ([`SchedJob::at`]): placed like pseudo-jobs
//!   at setup — concrete nodes are selected against the window's
//!   availability and pre-split out of the slots, so batch traffic routes
//!   around them; the job then starts exactly on time.
//! * **Per-project quotas** ([`QuotaRule`]): a concurrent node cap per
//!   project (optionally only inside a time window), enforced at
//!   slot-selection time as an admission gate. Quotas can defer a quoted
//!   start; reservations bypass them.
//! * **Dependencies** ([`SchedJob::with_deps`]): a job is gated until every
//!   dependency has departed (completed *or* killed).
//! * **Moldable jobs** ([`SchedJob::with_shapes`]): on submission each
//!   candidate shape is quoted against the slot profile and the job
//!   commits, once, to the shape with the earliest estimated finish (ties:
//!   fewer nodes, then declaration order).
//!
//! # Contention
//!
//! Placements map to rack sets ([`NodePool::racks_of`]); running jobs that
//! share links ([`share_links`]) inflate each other's communication via the
//! shared [`ContentionParams`] model — the same formula the MPI engine
//! applies when given a [`sim_mpi` `Background`] — so a job's progress rate
//! is `1 / (1 - cf + cf * multiplier)`. Rates change only when the running
//! set changes; completions are re-estimated at each such point through a
//! generation-checked wake event (stale wakes are dropped).
//!
//! Reservations, by contrast, are computed from **static walltimes**, which
//! are upper bounds on actual runtime by construction (walltime >= nominal
//! runtime x the contention cap; a job that somehow exceeds its walltime is
//! killed). That independence is what keeps the EASY invariant intact even
//! though actual completion times move with the tenant mix.

use crate::arena::{JobArena, JobRec};
use crate::burst::CheckpointSpec;
use crate::error::SchedError;
use crate::job::{JobShape, SchedJob};
use crate::pool::{share_links, NodePool, PlacementPolicy};
use crate::slot::{earliest_fit, level_at, ProcSet, SlotSet, EPS};
use sim_des::{EventQueue, SimDur, SimTime};
use sim_faults::{FaultKind, FaultModel, FaultSchedule, RetryPolicy};
use sim_net::ContentionParams;
use sim_platform::{ClusterSpec, HypervisorKind};
use std::collections::VecDeque;

/// Queue discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    Fcfs,
    Easy,
    Conservative,
    /// The free-nodes-only backfill rule (head-delay bug); regression foil.
    NaiveBackfill,
}

impl Discipline {
    pub fn name(&self) -> &'static str {
        match self {
            Discipline::Fcfs => "fcfs",
            Discipline::Easy => "easy",
            Discipline::Conservative => "conservative",
            Discipline::NaiveBackfill => "naive-backfill",
        }
    }
}

/// Which scheduling core runs the discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedEngine {
    /// Interval algebra over the slot set (default; full capability set).
    #[default]
    SlotSet,
    /// The historical free-node counting core, kept as the equivalence
    /// oracle. Rejects calendars, quotas, reservations, dependencies and
    /// moldable jobs at validation.
    LegacyFreeNode,
}

impl SchedEngine {
    pub fn name(&self) -> &'static str {
        match self {
            SchedEngine::SlotSet => "slot-set",
            SchedEngine::LegacyFreeNode => "legacy-free-node",
        }
    }
}

/// Which nodes a maintenance window takes down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintNodes {
    All,
    Rack(usize),
    Nodes(Vec<usize>),
}

/// A scheduled outage: `nodes` are unavailable over `[begin, end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Maintenance {
    pub begin: f64,
    pub end: f64,
    pub nodes: MaintNodes,
}

/// A concurrent node cap for one project, optionally only inside a time
/// window (outside the window the project is unmetered).
#[derive(Debug, Clone, PartialEq)]
pub struct QuotaRule {
    pub project: u32,
    pub max_nodes: usize,
    pub window: Option<(f64, f64)>,
}

/// Scheduler-level recovery semantics for jobs killed by node crashes.
///
/// The backoff curve is the *engine's* [`RetryPolicy`] — one shared
/// implementation ([`RetryPolicy::delays`]), so op-level retries and
/// scheduler-level requeues can never drift apart. `max_retries` bounds
/// how many crash kills a single job survives before it is failed for
/// good; the n-th requeue re-enters the queue after
/// `retry.delay_before(n)` seconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequeuePolicy {
    pub retry: RetryPolicy,
    /// Checkpoint-aware restart: a killed job resumes from its last
    /// completed `interval`-sized chunk of work (paying `restore_cost`)
    /// instead of from scratch. `None` loses the whole run.
    pub checkpoint: Option<CheckpointSpec>,
}

impl RequeuePolicy {
    pub fn with_checkpoint(mut self, ck: CheckpointSpec) -> RequeuePolicy {
        self.checkpoint = Some(ck);
        self
    }

    pub fn with_retry(mut self, retry: RetryPolicy) -> RequeuePolicy {
        self.retry = retry;
        self
    }
}

/// Node-health lifecycle driven by the unplanned-fault feed:
/// Healthy → Suspect → Draining → Healthy for fail-slow signals, and
/// Healthy → Repairing → Healthy for fail-stop crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeHealth {
    #[default]
    Healthy,
    /// A degradation signal landed on an idle node: excluded from new
    /// placements until the signal clears, nothing to drain.
    Suspect,
    /// Fail-slow while hosting work: no new placements; the running job
    /// finishes out rather than being killed.
    Draining,
    /// Crashed: down for the repair (MTTR) window.
    Repairing,
}

impl NodeHealth {
    pub fn name(&self) -> &'static str {
        match self {
            NodeHealth::Healthy => "healthy",
            NodeHealth::Suspect => "suspect",
            NodeHealth::Draining => "draining",
            NodeHealth::Repairing => "repairing",
        }
    }
}

/// Seeded unplanned-fault feed for one site (slot-set engine only).
///
/// The schedule is a pure function of `(model, pool size, horizon, seed)`
/// via [`FaultSchedule::generate`]; two runs at the same seed are
/// bit-identical, and a null model (or `scale` 0) leaves the scheduler's
/// zero-fault path untouched bit for bit. Only the fail-stop
/// `NodeCrash` and fail-slow `NicDegrade` classes act at the scheduler
/// level; steal storms, NFS brownouts, spot preemption and SDC remain
/// engine- and burst-level concerns.
#[derive(Debug, Clone)]
pub struct SiteFaults {
    pub model: FaultModel,
    pub seed: u64,
    /// Mean time to repair a crashed node, seconds: the node is carved
    /// out of slot availability for at least this long after a crash
    /// (an unscheduled maintenance window).
    pub mttr_secs: f64,
    /// Horizon over which fault windows are pre-generated, seconds.
    /// Events beyond it never fire.
    pub horizon_secs: f64,
    pub requeue: RequeuePolicy,
}

impl SiteFaults {
    /// A feed from an explicit model with default repair and requeue
    /// parameters.
    pub fn new(model: FaultModel, seed: u64) -> SiteFaults {
        SiteFaults {
            model,
            seed,
            mttr_secs: 900.0,
            horizon_secs: 24.0 * 3600.0,
            requeue: RequeuePolicy::default(),
        }
    }

    /// Platform preset: the cluster's fault model plus a platform-specific
    /// MTTR — a bare-metal HPC node waits on a hardware repair queue, a
    /// private-cloud blade on a VM restart, a public-cloud instance on a
    /// replacement boot.
    pub fn preset_for(cluster: &ClusterSpec, seed: u64) -> SiteFaults {
        let mttr = match cluster.name {
            "vayu" => 3600.0,
            "dcc" => 1200.0,
            "ec2" => 300.0,
            _ => match cluster.node.hypervisor.kind {
                HypervisorKind::BareMetal => 3600.0,
                HypervisorKind::Xen => 300.0,
                HypervisorKind::VmwareEsx | HypervisorKind::Kvm => 1200.0,
            },
        };
        SiteFaults {
            mttr_secs: mttr,
            ..SiteFaults::new(FaultModel::preset_for(cluster), seed)
        }
    }

    pub fn with_model(mut self, model: FaultModel) -> SiteFaults {
        self.model = model;
        self
    }

    pub fn with_mttr(mut self, mttr_secs: f64) -> SiteFaults {
        self.mttr_secs = mttr_secs;
        self
    }

    pub fn with_horizon(mut self, horizon_secs: f64) -> SiteFaults {
        self.horizon_secs = horizon_secs;
        self
    }

    pub fn with_requeue(mut self, requeue: RequeuePolicy) -> SiteFaults {
        self.requeue = requeue;
        self
    }
}

/// What a fault did to the schedule, for IPM-style attribution rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// A node crash killed this running job.
    Kill,
    /// A killed job re-entered the queue after its backoff delay.
    Requeue,
    /// A fail-slow node was drained: its running job finishes out, but
    /// the node takes no new work until the degradation clears.
    Drain,
    /// A crashed node came back from its repair window.
    Repair,
}

impl FaultAction {
    pub fn name(&self) -> &'static str {
        match self {
            FaultAction::Kill => "KILL",
            FaultAction::Requeue => "REQUEUE",
            FaultAction::Drain => "DRAIN",
            FaultAction::Repair => "REPAIR",
        }
    }
}

/// One scheduler-visible fault event on the timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub t: f64,
    pub action: FaultAction,
    pub node: usize,
    /// The affected job, when the action has one (KILL/REQUEUE/DRAIN).
    pub job: Option<usize>,
}

/// Aggregate fault accounting for one site run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultStats {
    /// Crash windows that fired within the horizon.
    pub crashes: usize,
    /// Running jobs killed by crashes.
    pub kills: usize,
    /// Killed jobs that re-entered the queue.
    pub requeues: usize,
    /// Fail-slow drains of nodes hosting running work.
    pub drains: usize,
    /// Crashed nodes returned to service.
    pub repairs: usize,
    /// Nominal seconds of completed work destroyed by crash kills.
    pub work_lost_s: f64,
    /// Nominal seconds salvaged by checkpoint-aware restarts.
    pub work_salvaged_s: f64,
}

/// What the site scheduler needs to know about one job. Per-site view:
/// multi-site simulations hold one per site with site-specific runtimes,
/// and moldable jobs overwrite their view with the committed shape.
#[derive(Debug, Clone, Copy)]
pub(crate) struct JobView {
    pub nodes: usize,
    /// Nominal (uncontended) runtime on this site.
    pub runtime: f64,
    /// Static walltime bound used for reservations and the kill timer.
    pub walltime: f64,
    pub comm_fraction: f64,
    pub submit: f64,
}

impl JobView {
    pub(crate) fn of(j: &SchedJob) -> JobView {
        JobView {
            nodes: j.nodes,
            runtime: j.runtime,
            walltime: j.walltime,
            comm_fraction: j.comm_fraction,
            submit: j.submit,
        }
    }
}

/// A job currently holding nodes.
#[derive(Debug, Clone)]
pub(crate) struct Running {
    pub job: usize,
    pub start: f64,
    pub nodes_held: Vec<usize>,
    racks: Vec<usize>,
    /// Communication weight on shared links: `comm_fraction`, or 0 for
    /// single-node jobs (no inter-node traffic).
    eff_cf: f64,
    /// Nominal seconds of work left.
    remaining: f64,
    /// Current slowdown factor (>= 1); progress rate is `1 / slowdown`.
    slowdown: f64,
    kill_at: f64,
    /// Spot revocation time, if one was drawn (multi-site only).
    pub preempt_at: Option<f64>,
}

/// Per-job result of a site simulation.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    pub id: usize,
    pub start: f64,
    pub end: f64,
    pub wait: f64,
    /// Actual minus nominal runtime: seconds lost to link contention.
    pub inflation: f64,
    /// False if the job hit its walltime and was killed, or exhausted its
    /// crash-requeue budget.
    pub completed: bool,
    /// Nodes actually held — the committed shape for moldable jobs.
    pub nodes: usize,
    /// Times the job was killed by a node crash and requeued.
    pub requeues: u32,
    /// Nominal seconds of completed work destroyed by crash kills
    /// (after checkpoint credit).
    pub fault_loss_s: f64,
}

/// Aggregate result of [`simulate_site`].
#[derive(Debug, Clone)]
pub struct SiteResult {
    /// Outcomes in input-job order.
    pub outcomes: Vec<JobOutcome>,
    pub makespan: f64,
    pub mean_wait: f64,
    pub total_inflation: f64,
    /// Jobs that started later than the reservation recorded when they
    /// first blocked at the head (EASY/conservative: must stay 0; the
    /// naive rule trips it).
    pub head_delay_violations: usize,
    /// `(job index, reserved start)` as first quoted; for invariant tests.
    pub reservations: Vec<(usize, f64)>,
    /// KILL/REQUEUE/DRAIN/REPAIR timeline, in event order. Empty without
    /// a fault feed.
    pub fault_events: Vec<FaultEvent>,
    /// Aggregate fault accounting; all-zero without a fault feed.
    pub fault_stats: FaultStats,
}

/// A pinned advance reservation: concrete nodes pre-split out of the slot
/// set over `[start, start + walltime)`, started exactly on time.
#[derive(Debug, Clone)]
struct Advance {
    job: usize,
    start: f64,
    walltime: f64,
    procs: ProcSet,
    done: bool,
}

/// State of one site's scheduler: pool + queue + running set + slot set.
pub(crate) struct SiteState {
    pub pool: NodePool,
    pub placement: PlacementPolicy,
    pub discipline: Discipline,
    pub contention: ContentionParams,
    pub engine: SchedEngine,
    pub queue: VecDeque<usize>,
    pub running: Vec<Running>,
    /// Every admitted job's record: view, project, deps, reservations
    /// (conservative `resv` is persistent — once granted it only ever
    /// moves *earlier*; recomputing from scratch at each event is not
    /// monotone and breaks the no-delay guarantee), kill counts, fault
    /// loss. ID-indexed; the streaming driver retires records as outcomes
    /// are reported so memory tracks live jobs, not trace length.
    pub(crate) jobs: JobArena,
    /// Simulation time of the last work-accounting advance.
    clock: f64,
    /// Wake-event generation; stale wakes are dropped.
    pub wake_gen: u64,
    pub head_delay_violations: usize,
    /// Jobs started this step: `(job, start, wait)`.
    pub started: Vec<(usize, f64, f64)>,
    /// Earliest future reservation-due instant (conservative only). A
    /// reservation coming due must be a simulation event: a due job that
    /// waits for the next departure instead would start *after* its quoted
    /// time, sliding its occupancy window past what every queued job's
    /// reservation assumed — which is exactly the head-delay cascade the
    /// discipline promises away.
    next_due: Option<f64>,
    /// Queue positions below this were scanned by the last backfill pass
    /// and found unstartable. Valid only while nothing frees capacity:
    /// between scans, time passing shrinks the shadow window and submits
    /// only append, so a failed candidate re-fails — the next scan may
    /// start at the watermark. Reset to 0 whenever capacity is released
    /// (departure, preemption, crash, heal). Never consulted in
    /// constrained mode, where window-fit checks slide with `now`.
    scan_watermark: usize,
    /// Whether capacity was released since the last conservative
    /// compression sweep. While clean, the profile only tightened (time
    /// advanced, reservations were added), so a fresh quote can never
    /// beat a pinned one and the O(queue²)-per-event sweep is skipped.
    resv_dirty: bool,
    /// The availability timeline (slot-set engine only).
    slots: SlotSet,
    quotas: Vec<QuotaRule>,
    /// Submitted jobs still gated on dependencies, in submission order.
    gated: Vec<usize>,
    advance: Vec<Advance>,
    /// Whether maintenance windows were pre-split into the slots. Sticky:
    /// once outages shape the timeline, window-fit checks stay on.
    calendar_applied: bool,
    /// Whether an unplanned-fault feed is attached. Gates every fault
    /// branch, so the zero-fault path stays bit-identical to the
    /// pre-fault engine.
    faults_active: bool,
    /// Per-node health; sized at [`attach_faults`](Self::attach_faults).
    health: Vec<NodeHealth>,
    /// Per-node instant until which the node is excluded from new work
    /// (crash repair end or degradation end); `0.0` = available.
    unavail_until: Vec<f64>,
    pub(crate) fault_events: Vec<FaultEvent>,
    pub(crate) fault_stats: FaultStats,
}

/// A completion or kill the caller must record.
pub(crate) enum Departure {
    Completed {
        job: usize,
        start: f64,
        end: f64,
        nodes: usize,
    },
    Killed {
        job: usize,
        start: f64,
        end: f64,
        nodes: usize,
    },
}

impl SiteState {
    pub fn new(
        pool: NodePool,
        placement: PlacementPolicy,
        discipline: Discipline,
        contention: ContentionParams,
        engine: SchedEngine,
    ) -> SiteState {
        let slots = SlotSet::new(0.0, pool.hierarchy().site());
        SiteState {
            pool,
            placement,
            discipline,
            contention,
            engine,
            queue: VecDeque::new(),
            running: Vec::new(),
            jobs: JobArena::default(),
            clock: 0.0,
            wake_gen: 0,
            head_delay_violations: 0,
            started: Vec::new(),
            next_due: None,
            scan_watermark: 0,
            resv_dirty: true,
            slots,
            quotas: Vec::new(),
            gated: Vec::new(),
            advance: Vec::new(),
            calendar_applied: false,
            faults_active: false,
            health: Vec::new(),
            unavail_until: Vec::new(),
            fault_events: Vec::new(),
            fault_stats: FaultStats::default(),
        }
    }

    /// Admit one job into the arena; returns its id. Batch drivers admit
    /// everything up front (ids == input indices); the streaming driver
    /// admits on arrival and retires on outcome.
    pub(crate) fn admit(&mut self, j: &SchedJob) -> usize {
        let mut rec = JobRec::new(JobView::of(j));
        rec.project = j.project;
        rec.deps = j.deps.clone();
        self.jobs.insert(rec)
    }

    /// Arm the fault branches: allocate the per-node health vectors and
    /// switch placement onto window-fit checks (a crash carve is a
    /// dynamic constraint exactly like an unscheduled maintenance
    /// window). Never called on the zero-fault path.
    pub(crate) fn attach_faults(&mut self) {
        self.faults_active = true;
        self.health = vec![NodeHealth::Healthy; self.pool.nodes()];
        self.unavail_until = vec![0.0; self.pool.nodes()];
    }

    /// Current health of `node` (Healthy when no feed is attached).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn node_health(&self, node: usize) -> NodeHealth {
        self.health.get(node).copied().unwrap_or_default()
    }

    /// Install the site's quota rules. Single-site drivers call this; the
    /// burst driver leaves them empty.
    pub(crate) fn set_quotas(&mut self, quotas: &[QuotaRule]) {
        self.quotas = quotas.to_vec();
    }

    /// Pre-split every maintenance window out of the slot set.
    pub(crate) fn apply_calendar(&mut self, calendar: &[Maintenance]) {
        self.calendar_applied = self.calendar_applied || !calendar.is_empty();
        for m in calendar {
            let procs = match &m.nodes {
                MaintNodes::All => self.pool.hierarchy().site(),
                MaintNodes::Rack(r) => self.pool.hierarchy().rack_set(*r),
                MaintNodes::Nodes(ids) => ProcSet::from_ids(ids),
            };
            self.slots.sub_window(m.begin, m.end, &procs);
        }
    }

    /// Pin an advance reservation: select concrete nodes against the
    /// window's availability and pre-split them out of the slot set.
    pub(crate) fn register_advance(
        &mut self,
        job: usize,
        start: f64,
        v: &JobView,
    ) -> Result<(), SchedError> {
        let cand = self.slots.window_avail(start, start + v.walltime);
        let picked = self
            .pool
            .hierarchy()
            .select(&cand, v.nodes, self.placement)
            .map_err(|_| SchedError::ReservationUnsatisfiable { job, at: start })?;
        let procs = ProcSet::from_ids(&picked);
        self.slots.sub_window(start, start + v.walltime, &procs);
        self.advance.push(Advance {
            job,
            start,
            walltime: v.walltime,
            procs,
            done: false,
        });
        Ok(())
    }

    /// True when something besides the running set shapes availability —
    /// the gate between the legacy-parity fast paths (instantaneous
    /// availability) and the full window-fit checks.
    fn constrained(&self) -> bool {
        !self.quotas.is_empty()
            || !self.advance.is_empty()
            || self.calendar_applied
            || self.faults_active
    }

    /// Account work done since the last advance at the current rates.
    pub fn advance(&mut self, now: f64) {
        let dt = now - self.clock;
        if dt > 0.0 {
            for r in &mut self.running {
                r.remaining -= dt / r.slowdown;
            }
        }
        self.clock = self.clock.max(now);
        if self.engine == SchedEngine::SlotSet {
            self.slots.truncate_before(self.clock);
        }
    }

    /// Queue a submitted job, or gate it on unfinished dependencies.
    /// Advance-reservation jobs never queue — the calendar starts them.
    pub(crate) fn submit(&mut self, job: usize) {
        if self.advance.iter().any(|a| a.job == job) {
            return;
        }
        if self.deps_done(job) {
            self.queue.push_back(job);
        } else {
            self.gated.push(job);
        }
    }

    fn deps_done(&self, job: usize) -> bool {
        self.jobs[job].deps.iter().all(|&d| self.jobs[d].departed)
    }

    /// Move every gated job whose dependencies have all departed into the
    /// queue, preserving submission order.
    fn release_gated(&mut self) {
        let mut i = 0;
        while i < self.gated.len() {
            let job = self.gated[i];
            if self.deps_done(job) {
                self.gated.remove(i);
                self.queue.push_back(job);
            } else {
                i += 1;
            }
        }
    }

    /// Pull out every job that has completed its work or hit its walltime
    /// by `now`. Call after `advance(now)`.
    pub fn departures(&mut self, now: f64) -> Vec<Departure> {
        let mut out = Vec::new();
        let mut i = 0;
        let mut released = false;
        while i < self.running.len() {
            let r = &self.running[i];
            if r.remaining <= EPS {
                let r = self.running.swap_remove(i);
                self.release_run(now, &r);
                released = true;
                out.push(Departure::Completed {
                    job: r.job,
                    start: r.start,
                    end: now,
                    nodes: r.nodes_held.len(),
                });
            } else if r.kill_at <= now + EPS {
                let r = self.running.swap_remove(i);
                self.release_run(now, &r);
                released = true;
                out.push(Departure::Killed {
                    job: r.job,
                    start: r.start,
                    end: now,
                    nodes: r.nodes_held.len(),
                });
            } else {
                i += 1;
            }
        }
        if released {
            self.capacity_released();
            if self.engine == SchedEngine::SlotSet {
                self.slots.merge();
            }
        }
        for d in &out {
            let job = match d {
                Departure::Completed { job, .. } | Departure::Killed { job, .. } => *job,
            };
            self.jobs[job].departed = true;
        }
        out
    }

    /// Return a departing run's nodes to the pool and to the unused tail
    /// of its slot window. A node still inside a fault exclusion (crash
    /// repair or drain window) only returns to the timeline where the
    /// exclusion ends — re-adding it from `now` would undo the carve.
    fn release_run(&mut self, now: f64, r: &Running) {
        self.pool.release(&r.nodes_held);
        if self.engine == SchedEngine::SlotSet && now < r.kill_at {
            if self.faults_active {
                let mut plain: Vec<usize> = Vec::new();
                for &n in &r.nodes_held {
                    let until = self.unavail_until[n];
                    if until > now + EPS {
                        if until < r.kill_at - EPS {
                            self.slots
                                .add_window(until, r.kill_at, &ProcSet::from_ids(&[n]));
                        }
                    } else {
                        plain.push(n);
                    }
                }
                if !plain.is_empty() {
                    self.slots
                        .add_window(now, r.kill_at, &ProcSet::from_ids(&plain));
                }
            } else {
                self.slots
                    .add_window(now, r.kill_at, &ProcSet::from_ids(&r.nodes_held));
            }
        }
    }

    /// Recompute every running job's slowdown from the current tenant mix.
    pub fn recompute_rates(&mut self) {
        let snapshot: Vec<(Vec<usize>, f64)> = self
            .running
            .iter()
            .map(|r| (r.racks.clone(), r.eff_cf))
            .collect();
        for (i, r) in self.running.iter_mut().enumerate() {
            if r.eff_cf <= 0.0 {
                r.slowdown = 1.0;
                continue;
            }
            let sharers: f64 = snapshot
                .iter()
                .enumerate()
                .filter(|(j, (racks, cf))| *j != i && *cf > 0.0 && share_links(&r.racks, racks))
                .map(|(_, (_, cf))| *cf)
                .sum();
            let m = self.contention.multiplier(sharers);
            r.slowdown = 1.0 - r.eff_cf + r.eff_cf * m;
        }
    }

    /// Earliest future event: a running job's completion estimate at
    /// current rates, a walltime kill, a drawn preemption, or (under
    /// conservative backfilling) the next reservation coming due.
    pub fn next_event(&self) -> Option<f64> {
        let run = self
            .running
            .iter()
            .map(|r| {
                let done = self.clock + r.remaining.max(0.0) * r.slowdown;
                let t = done.min(r.kill_at);
                match r.preempt_at {
                    Some(p) => t.min(p),
                    None => t,
                }
            })
            .min_by(|a, b| a.partial_cmp(b).expect("finite event times"));
        match (run, self.next_due) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    // -- Legacy free-node primitives -------------------------------------

    /// Walltime-based release profile of the running set: `(end, nodes)`
    /// sorted by end. Static upper bounds — never moved by contention.
    fn release_profile(&self) -> Vec<(f64, usize)> {
        let mut prof: Vec<(f64, usize)> = self
            .running
            .iter()
            .map(|r| (r.kill_at, self.jobs[r.job].view.nodes))
            .collect();
        prof.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite walltimes"));
        prof
    }

    /// EASY reservation for a job needing `need` nodes: `(shadow, extra)`,
    /// or `None` when the release profile never frees enough nodes (the
    /// caller surfaces that as a typed [`SchedError`]; validation makes it
    /// unreachable for well-formed inputs).
    fn easy_reservation(&self, need: usize) -> Option<(f64, usize)> {
        let mut free = self.pool.free_count();
        debug_assert!(free < need, "head would have started");
        for (end, n) in self.release_profile() {
            free += n;
            if free >= need {
                return Some((end, free - need));
            }
        }
        None
    }

    // -- Slot-set primitives ---------------------------------------------

    /// The slot walk from `now` on, as a `(base level, deltas)` pair in the
    /// shape the legacy `Profile` consumed — what makes conservative quotes
    /// on the two engines bit-identical.
    fn slot_profile(&self, now: f64) -> (i64, Vec<(f64, i64)>) {
        let slots = self.slots.slots();
        let i = self.slots.index_at(now);
        let base = slots[i].effective();
        let mut level = base;
        let mut deltas = Vec::with_capacity(slots.len() - i);
        for s in &slots[i + 1..] {
            let l = s.effective();
            deltas.push((s.begin, l - level));
            level = l;
        }
        (base, deltas)
    }

    /// EASY reservation off the slot walk: earliest breakpoint where the
    /// head's whole walltime window fits, plus the spare level there. On an
    /// unconstrained (monotone) profile this is exactly the legacy
    /// release-walk crossing.
    fn easy_reservation_slot(&self, now: f64, need: usize, walltime: f64) -> Option<(f64, i64)> {
        let slots = self.slots.slots();
        let i = self.slots.index_at(now);
        let mut points = Vec::with_capacity(slots.len() - i);
        points.push((now, slots[i].effective()));
        for s in &slots[i + 1..] {
            points.push((s.begin, s.effective()));
        }
        let shadow = earliest_fit(&points, need as i64, walltime)?;
        Some((shadow, level_at(&points, shadow) - need as i64))
    }

    /// The procs a job starting now may be placed on, or `None` when the
    /// placement policy cannot carve its width out of them. Unconstrained
    /// runs use the instantaneous availability (the legacy semantics);
    /// constrained runs intersect the job's whole walltime window so a
    /// start can never collide with a maintenance outage or a pinned
    /// reservation downstream.
    fn placement_fit(&self, now: f64, v: &JobView) -> Option<ProcSet> {
        let cand = if self.constrained() {
            self.slots.window_avail(now, now + v.walltime)
        } else {
            self.slots.avail_at(now).clone()
        };
        if self
            .pool
            .hierarchy()
            .feasible(&cand, v.nodes, self.placement)
        {
            Some(cand)
        } else {
            None
        }
    }

    /// Admission gate: would starting `need` more nodes for `job`'s
    /// project break an active quota rule?
    fn quota_ok(&self, now: f64, job: usize, need: usize) -> bool {
        let Some(p) = self.jobs[job].project else {
            return true;
        };
        for q in &self.quotas {
            if q.project != p {
                continue;
            }
            if let Some((b, e)) = q.window {
                if now < b - EPS || now >= e - EPS {
                    continue;
                }
            }
            let usage: usize = self
                .running
                .iter()
                .filter(|r| self.jobs[r.job].project == Some(p))
                .map(|r| r.nodes_held.len())
                .sum();
            if usage + need > q.max_nodes {
                return false;
            }
        }
        true
    }

    /// Commit a moldable job to the shape with the earliest estimated
    /// finish against the current slot profile (ties: fewer nodes, then
    /// declaration order). Called once, at submission.
    pub(crate) fn choose_shape(
        &self,
        now: f64,
        j: &SchedJob,
    ) -> Result<Option<JobShape>, SchedError> {
        if j.shapes.is_empty() {
            return Ok(None);
        }
        let (base, deltas) = self.slot_profile(now);
        let prof = Profile::new(now, base, deltas);
        let mut best: Option<(f64, usize, JobShape)> = None;
        for shape in &j.shapes {
            let start = prof.earliest(shape.nodes, shape.walltime).ok_or(
                SchedError::InsufficientNodes {
                    job: j.id,
                    need: shape.nodes,
                    limit: self.pool.nodes(),
                },
            )?;
            let finish = start + shape.runtime;
            let better = match &best {
                None => true,
                Some((f, n, _)) => {
                    finish < f - EPS || ((finish - f).abs() <= EPS && shape.nodes < *n)
                }
            };
            if better {
                best = Some((finish, shape.nodes, *shape));
            }
        }
        Ok(best.map(|(_, _, s)| s))
    }

    /// Start every pinned advance reservation whose time has come, on
    /// exactly its pre-split nodes.
    pub(crate) fn start_due_advance(&mut self, now: f64) -> Result<(), SchedError> {
        for i in 0..self.advance.len() {
            let (job, start, walltime, done) = {
                let a = &self.advance[i];
                (a.job, a.start, a.walltime, a.done)
            };
            if done || start > now + EPS {
                continue;
            }
            let procs = self.advance[i].procs.clone();
            let v = self.jobs[job].view;
            let held = self
                .pool
                .alloc_from(v.nodes, self.placement, &procs)
                .map_err(|_| SchedError::ReservationUnsatisfiable { job, at: start })?;
            // Kill at the pre-split window's exact end, so the departure
            // hands back precisely the slots the pin took.
            self.commence(job, now, &v, held, start + walltime, true);
            self.advance[i].done = true;
        }
        Ok(())
    }

    // -- Starting jobs ----------------------------------------------------

    /// Legacy path: allocate from the whole free pool.
    fn start_job(&mut self, pos: usize, now: f64) -> Result<(), SchedError> {
        let job = self.queue.remove(pos).expect("valid queue position");
        let v = self.jobs[job].view;
        let nodes_held = self.pool.alloc(v.nodes, self.placement)?;
        self.commence(job, now, &v, nodes_held, now + v.walltime, false);
        Ok(())
    }

    /// Slot path: allocate from the window's candidate procs and split the
    /// placement out of the slots over `[now, now + walltime)`.
    fn start_job_slot(&mut self, pos: usize, now: f64, cand: &ProcSet) -> Result<(), SchedError> {
        let job = self.queue.remove(pos).expect("valid queue position");
        let v = self.jobs[job].view;
        let nodes_held = self.pool.alloc_from(v.nodes, self.placement, cand)?;
        self.commence(job, now, &v, nodes_held, now + v.walltime, false);
        Ok(())
    }

    /// Shared tail of every start: record the reservation violation, split
    /// the slots (unless the window was pre-split by a pinned reservation),
    /// and push the running record.
    fn commence(
        &mut self,
        job: usize,
        now: f64,
        v: &JobView,
        nodes_held: Vec<usize>,
        kill_at: f64,
        presplit: bool,
    ) {
        if self.engine == SchedEngine::SlotSet && !presplit {
            self.slots
                .sub_window(now, kill_at, &ProcSet::from_ids(&nodes_held));
        }
        if let Some(promised) = self.jobs[job].reserved {
            if now > promised + EPS {
                self.head_delay_violations += 1;
            }
        }
        let racks = self.pool.racks_of(&nodes_held);
        let eff_cf = if nodes_held.len() > 1 {
            v.comm_fraction
        } else {
            0.0
        };
        self.running.push(Running {
            job,
            start: now,
            racks,
            eff_cf,
            remaining: v.runtime,
            slowdown: 1.0,
            kill_at,
            preempt_at: None,
            nodes_held,
        });
        // Clamp away the sub-ns residue of f64 -> SimTime rounding.
        let wait = (now - v.submit).max(0.0);
        self.started.push((job, now, wait));
    }

    /// Start every job the discipline allows at `now`. Starts are recorded
    /// in `self.started`; the caller recomputes rates afterwards.
    pub fn try_start(&mut self, now: f64) -> Result<(), SchedError> {
        self.release_gated();
        match (self.engine, self.discipline) {
            (SchedEngine::LegacyFreeNode, Discipline::Fcfs) => self.try_start_fcfs(now),
            (SchedEngine::LegacyFreeNode, Discipline::Easy) => self.try_start_backfill(now, true),
            (SchedEngine::LegacyFreeNode, Discipline::NaiveBackfill) => {
                self.try_start_backfill(now, false)
            }
            (SchedEngine::LegacyFreeNode, Discipline::Conservative) => {
                self.try_start_conservative(now)
            }
            (SchedEngine::SlotSet, Discipline::Fcfs) => self.try_start_fcfs_slot(now),
            (SchedEngine::SlotSet, Discipline::Easy) => self.try_start_backfill_slot(now, true),
            (SchedEngine::SlotSet, Discipline::NaiveBackfill) => {
                self.try_start_backfill_slot(now, false)
            }
            (SchedEngine::SlotSet, Discipline::Conservative) => {
                self.try_start_conservative_slot(now)
            }
        }
    }

    fn try_start_fcfs(&mut self, now: f64) -> Result<(), SchedError> {
        while let Some(&head) = self.queue.front() {
            if self.jobs[head].view.nodes > self.pool.free_count() {
                break;
            }
            self.start_job(0, now)?;
        }
        Ok(())
    }

    /// EASY (`respect_shadow`) and the naive foil (`!respect_shadow`) share
    /// a skeleton: start the head while it fits; otherwise reserve for the
    /// head and scan the rest of the queue for backfills — one pass, with
    /// starts taken in place. A start only removes capacity (free nodes
    /// shrink, `extra` shrinks or holds, the shadow holds: a window-fit
    /// start completes before it, an extra-fit start leaves the level at
    /// the shadow at or above the head's need), so every candidate that
    /// already failed re-fails and the historical restart-from-the-front
    /// rescan visits no new starts — this is the same schedule without the
    /// O(queue²) re-walk.
    fn try_start_backfill(&mut self, now: f64, respect_shadow: bool) -> Result<(), SchedError> {
        if self.backfill_fast_path() {
            return Ok(());
        }
        // Start the head while it fits.
        while let Some(&head) = self.queue.front() {
            if self.jobs[head].view.nodes > self.pool.free_count() {
                break;
            }
            self.start_job(0, now)?;
            self.scan_watermark = 0;
        }
        let Some(&head) = self.queue.front() else {
            self.scan_watermark = 0;
            return Ok(());
        };
        // Head blocked: quote (and pin) its reservation.
        let head_nodes = self.jobs[head].view.nodes;
        let quote = |st: &SiteState| {
            st.easy_reservation(head_nodes)
                .ok_or(SchedError::InsufficientNodes {
                    job: head,
                    need: head_nodes,
                    limit: st.pool.nodes(),
                })
        };
        let (mut shadow, mut extra) = quote(self)?;
        if self.jobs[head].reserved.is_none() {
            self.jobs[head].reserved = Some(shadow);
        }
        let mut pos = self.scan_watermark.max(1);
        while pos < self.queue.len() {
            let cand = self.queue[pos];
            let v = self.jobs[cand].view;
            if v.nodes > self.pool.free_count() {
                pos += 1;
                continue;
            }
            let fits_window = now + v.walltime <= shadow + EPS;
            let fits_extra = v.nodes <= extra;
            if respect_shadow && !fits_window && !fits_extra {
                pos += 1;
                continue;
            }
            self.start_job(pos, now)?;
            // The removal shifted the next candidate into `pos`; requote
            // against the new release profile (a start that consumed
            // extra nodes shrinks the recomputed extra automatically: its
            // walltime now sits in the profile past the shadow).
            (shadow, extra) = quote(self)?;
        }
        self.scan_watermark = self.queue.len();
        Ok(())
    }

    /// True when the last backfill scan covered the whole queue, nothing
    /// has released capacity since, and the blocked head already holds its
    /// pinned quote — every check would come out the same, so the pass is
    /// skipped outright. Only sound unconstrained: window-fit placement
    /// and quota windows move with `now` even without a release.
    fn backfill_fast_path(&self) -> bool {
        !self.constrained()
            && self.scan_watermark >= self.queue.len()
            && match self.queue.front() {
                Some(&head) => self.jobs[head].reserved.is_some(),
                None => true,
            }
    }

    /// Conservative backfilling with *persistent* reservations. A fresh
    /// quote is computed only once, on arrival, against the running set
    /// plus every existing reservation; after that the reservation may
    /// only be *compressed* — moved earlier when, holding all other
    /// reservations fixed, an earlier window is feasible. Re-quoting the
    /// whole queue from scratch at each event (the obvious implementation)
    /// silently breaks the no-delay guarantee: an early completion lets a
    /// predecessor re-pack earlier, and the re-flowed greedy profile can
    /// push a later job's window past its first quote.
    fn try_start_conservative(&mut self, now: f64) -> Result<(), SchedError> {
        self.next_due = None;
        let mut compress = self.resv_dirty;
        let mut any_start = false;
        loop {
            // Quote new arrivals in FCFS order, each against the running
            // set plus every reservation granted so far.
            for pos in 0..self.queue.len() {
                let job = self.queue[pos];
                if self.jobs[job].resv.is_some() {
                    continue;
                }
                let s = self.conservative_earliest(now, job)?;
                self.jobs[job].resv = Some(s);
                if self.jobs[job].reserved.is_none() {
                    self.jobs[job].reserved = Some(s);
                }
            }
            // Compression sweep: each job may move earlier while all
            // other reservations stay fixed, so the mutual feasibility of
            // the window set is preserved and no window ever moves later.
            // Skipped while no capacity has been released since the last
            // sweep: the profile only tightened (time advanced, quotes
            // were added), so no fresh quote can beat a pinned one.
            if compress {
                for pos in 0..self.queue.len() {
                    let job = self.queue[pos];
                    let s = self.conservative_earliest(now, job)?;
                    if s < self.jobs[job].resv.expect("quoted above") - EPS {
                        self.jobs[job].resv = Some(s);
                    }
                }
            }
            // Start the first job whose reservation has come due. Starting
            // occupies exactly the reserved window, so the remaining set
            // stays feasible; loop in case the compaction cascades.
            let due = (0..self.queue.len()).find(|&pos| {
                let job = self.queue[pos];
                self.jobs[job].resv.expect("quoted above") <= now + EPS
                    && self.jobs[job].view.nodes <= self.pool.free_count()
            });
            match due {
                Some(pos) => {
                    self.jobs[self.queue[pos]].resv = None;
                    self.start_job(pos, now)?;
                    // A start replaces a reservation window with real
                    // occupancy; keep the historical sweep-after-start.
                    compress = true;
                    any_start = true;
                }
                None => break,
            }
        }
        // A due start can shift a breakpoint by a sub-EPS residue (the
        // quote may sit up to EPS past `now`); leave the flag dirty so
        // the next event sweeps once more. Starts are rare, so the skip
        // still removes the O(queue²) cost from the common event.
        self.resv_dirty = any_start;
        // A reservation coming due must be a simulation event: a due job
        // that waited for the next departure would start after its quoted
        // time, sliding its occupancy past what every other window assumed.
        self.next_due = self
            .queue
            .iter()
            .filter_map(|&j| self.jobs[j].resv)
            .filter(|&s| s > now + EPS)
            .min_by(|a, b| a.partial_cmp(b).expect("finite reservations"));
        Ok(())
    }

    /// Earliest feasible start for `job` against the running set's walltime
    /// profile plus every *other* queued job's current reservation window.
    fn conservative_earliest(&self, now: f64, job: usize) -> Result<f64, SchedError> {
        let mut deltas: Vec<(f64, i64)> = self
            .release_profile()
            .into_iter()
            .map(|(t, n)| (t, n as i64))
            .collect();
        self.push_resv_deltas(now, job, &mut deltas);
        let prof = Profile::new(now, self.pool.free_count() as i64, deltas);
        let v = self.jobs[job].view;
        prof.earliest(v.nodes, v.walltime)
            .ok_or(SchedError::InsufficientNodes {
                job,
                need: v.nodes,
                limit: self.pool.nodes(),
            })
    }

    /// Append every *other* queued job's current reservation window to a
    /// profile's delta list. Batched: the [`Profile`] is built (and its
    /// deltas sorted) exactly once per quote — the historical
    /// reserve-and-rebuild per window produced the identical final
    /// breakpoints from the same delta list, minus O(queue) redundant
    /// intermediate sorts nobody read.
    fn push_resv_deltas(&self, now: f64, job: usize, deltas: &mut Vec<(f64, i64)>) {
        for &other in &self.queue {
            if other == job {
                continue;
            }
            if let Some(s) = self.jobs[other].resv {
                let ov = self.jobs[other].view;
                let start = s.max(now);
                deltas.push((start, -(ov.nodes as i64)));
                deltas.push((start + ov.walltime, ov.nodes as i64));
            }
        }
    }

    // -- Slot-set disciplines --------------------------------------------

    fn try_start_fcfs_slot(&mut self, now: f64) -> Result<(), SchedError> {
        while let Some(&head) = self.queue.front() {
            let v = self.jobs[head].view;
            let Some(cand) = self.placement_fit(now, &v) else {
                break;
            };
            if !self.quota_ok(now, head, v.nodes) {
                break;
            }
            self.start_job_slot(0, now, &cand)?;
        }
        Ok(())
    }

    /// Unconstrained slot-set backfill: the same single-pass scan as the
    /// legacy skeleton (availability is instantaneous and monotone under
    /// starts, so in-place continuation and the cross-event watermark are
    /// bit-identical to the restart-scan). Constrained runs take the
    /// windowed re-scan below.
    fn try_start_backfill_slot(
        &mut self,
        now: f64,
        respect_shadow: bool,
    ) -> Result<(), SchedError> {
        if self.constrained() {
            return self.try_start_backfill_slot_windowed(now, respect_shadow);
        }
        if self.backfill_fast_path() {
            return Ok(());
        }
        // Start the head while it fits.
        loop {
            let Some(&head) = self.queue.front() else {
                self.scan_watermark = 0;
                return Ok(());
            };
            let hv = self.jobs[head].view;
            match self.placement_fit(now, &hv) {
                Some(cand) => {
                    self.start_job_slot(0, now, &cand)?;
                    self.scan_watermark = 0;
                }
                None => break,
            }
        }
        let head = *self.queue.front().expect("checked above");
        let hv = self.jobs[head].view;
        // Head blocked: quote (and pin) its reservation. Unconstrained,
        // a placement miss is the only block, so the pin is unconditional
        // (cf. the quota-blocked case in the windowed scan).
        let quote = |st: &SiteState| {
            st.easy_reservation_slot(now, hv.nodes, hv.walltime).ok_or(
                SchedError::InsufficientNodes {
                    job: head,
                    need: hv.nodes,
                    limit: st.pool.nodes(),
                },
            )
        };
        let (mut shadow, mut extra) = quote(self)?;
        if self.jobs[head].reserved.is_none() {
            self.jobs[head].reserved = Some(shadow);
        }
        // Width against the instantaneous free set bounds every placement:
        // no policy can carve `nodes` out of fewer procs. Checking it (and
        // the pure window tests) before the feasibility walk is
        // outcome-neutral — all checks must pass to start.
        let mut free_len = self.slots.avail_at(now).len();
        let mut pos = self.scan_watermark.max(1);
        while pos < self.queue.len() {
            let cand_job = self.queue[pos];
            let v = self.jobs[cand_job].view;
            if v.nodes > free_len {
                pos += 1;
                continue;
            }
            let fits_window = now + v.walltime <= shadow + EPS;
            let fits_extra = v.nodes as i64 <= extra;
            if respect_shadow && !fits_window && !fits_extra {
                pos += 1;
                continue;
            }
            let Some(cand) = self.placement_fit(now, &v) else {
                pos += 1;
                continue;
            };
            self.start_job_slot(pos, now, &cand)?;
            (shadow, extra) = quote(self)?;
            free_len = self.slots.avail_at(now).len();
        }
        self.scan_watermark = self.queue.len();
        Ok(())
    }

    /// Constrained (quota / calendar / advance / fault) backfill: every
    /// check is a window fit that slides with `now`, so each pass re-scans
    /// from the front and nothing is cached across events.
    fn try_start_backfill_slot_windowed(
        &mut self,
        now: f64,
        respect_shadow: bool,
    ) -> Result<(), SchedError> {
        'sched: loop {
            let Some(&head) = self.queue.front() else {
                return Ok(());
            };
            let hv = self.jobs[head].view;
            let head_fit = self.placement_fit(now, &hv);
            if let Some(cand) = &head_fit {
                if self.quota_ok(now, head, hv.nodes) {
                    let cand = cand.clone();
                    self.start_job_slot(0, now, &cand)?;
                    continue;
                }
            }
            // Head blocked: quote its reservation. Only a capacity block
            // pins a promise — an admission (quota) block is not the
            // scheduler's to promise around, and the quote below still
            // bounds what may backfill safely.
            let (shadow, extra) = self
                .easy_reservation_slot(now, hv.nodes, hv.walltime)
                .ok_or(SchedError::InsufficientNodes {
                    job: head,
                    need: hv.nodes,
                    limit: self.pool.nodes(),
                })?;
            if head_fit.is_none() && self.jobs[head].reserved.is_none() {
                self.jobs[head].reserved = Some(shadow);
            }
            for pos in 1..self.queue.len() {
                let cand_job = self.queue[pos];
                let v = self.jobs[cand_job].view;
                let Some(cand) = self.placement_fit(now, &v) else {
                    continue;
                };
                if !self.quota_ok(now, cand_job, v.nodes) {
                    continue;
                }
                let fits_window = now + v.walltime <= shadow + EPS;
                let fits_extra = v.nodes as i64 <= extra;
                if respect_shadow && !fits_window && !fits_extra {
                    continue;
                }
                self.start_job_slot(pos, now, &cand)?;
                continue 'sched;
            }
            return Ok(());
        }
    }

    fn try_start_conservative_slot(&mut self, now: f64) -> Result<(), SchedError> {
        self.next_due = None;
        let mut compress = self.resv_dirty;
        let mut any_start = false;
        loop {
            for pos in 0..self.queue.len() {
                let job = self.queue[pos];
                if self.jobs[job].resv.is_some() {
                    continue;
                }
                let s = self.conservative_earliest_slot(now, job)?;
                self.jobs[job].resv = Some(s);
                if self.jobs[job].reserved.is_none() {
                    self.jobs[job].reserved = Some(s);
                }
            }
            // Same release-gated compression skip as the legacy loop; a
            // degrade only *restricts* the slot timeline, so it cannot
            // open an earlier window either.
            if compress {
                for pos in 0..self.queue.len() {
                    let job = self.queue[pos];
                    let s = self.conservative_earliest_slot(now, job)?;
                    if s < self.jobs[job].resv.expect("quoted above") - EPS {
                        self.jobs[job].resv = Some(s);
                    }
                }
            }
            // A due job must also clear the admission gate and the window
            // fit; one that does not stays queued (quotas may defer a
            // quoted start — admission control trumps the quote).
            let due = (0..self.queue.len()).find(|&pos| {
                let job = self.queue[pos];
                self.jobs[job].resv.expect("quoted above") <= now + EPS
                    && self.quota_ok(now, job, self.jobs[job].view.nodes)
                    && self.placement_fit(now, &self.jobs[job].view).is_some()
            });
            match due {
                Some(pos) => {
                    let job = self.queue[pos];
                    self.jobs[job].resv = None;
                    let cand = self
                        .placement_fit(now, &self.jobs[job].view)
                        .expect("checked in the due scan");
                    self.start_job_slot(pos, now, &cand)?;
                    compress = true;
                    any_start = true;
                }
                None => break,
            }
        }
        self.resv_dirty = any_start;
        self.next_due = self
            .queue
            .iter()
            .filter_map(|&j| self.jobs[j].resv)
            .filter(|&s| s > now + EPS)
            .min_by(|a, b| a.partial_cmp(b).expect("finite reservations"));
        Ok(())
    }

    /// [`Self::conservative_earliest`] fed from the slot walk instead of
    /// the running list — byte-identical quotes by construction.
    fn conservative_earliest_slot(&self, now: f64, job: usize) -> Result<f64, SchedError> {
        let (base, mut deltas) = self.slot_profile(now);
        self.push_resv_deltas(now, job, &mut deltas);
        let prof = Profile::new(now, base, deltas);
        let v = self.jobs[job].view;
        prof.earliest(v.nodes, v.walltime)
            .ok_or(SchedError::InsufficientNodes {
                job,
                need: v.nodes,
                limit: self.pool.nodes(),
            })
    }

    // -- Preemption (multi-site) -----------------------------------------

    /// Pull out every running job whose drawn preemption time has come:
    /// `(job, start, nominal seconds of work still unfinished)`. The nodes
    /// are released; the in-flight run is lost. Call after `advance(now)`.
    pub fn take_preempted(&mut self, now: f64) -> Vec<(usize, f64, f64)> {
        let mut out = Vec::new();
        let mut i = 0;
        let mut released = false;
        while i < self.running.len() {
            if self.running[i].preempt_at.is_some_and(|p| p <= now + EPS) {
                let r = self.running.swap_remove(i);
                self.release_run(now, &r);
                released = true;
                // A revoked job requeues as a fresh arrival: the promise it
                // was quoted before it started (and ran!) is void.
                self.jobs[r.job].reserved = None;
                self.jobs[r.job].resv = None;
                out.push((r.job, r.start, r.remaining.max(0.0)));
            } else {
                i += 1;
            }
        }
        if released {
            self.capacity_released();
            if self.engine == SchedEngine::SlotSet {
                self.slots.merge();
            }
        }
        out
    }

    /// Capacity came back (departure, preemption, crash kill, heal): every
    /// cached "nothing fits" verdict is void.
    fn capacity_released(&mut self) {
        self.scan_watermark = 0;
        self.resv_dirty = true;
    }

    // -- Unplanned faults (slot-set engine only) --------------------------

    /// An unplanned `NodeCrash` at `now`: carve the node out of slot
    /// availability until `repair_end` (a dynamic pre-split, like
    /// maintenance but unscheduled), kill whatever was running on it, and
    /// void every queued job's quote — the capacity the quotes were
    /// computed against no longer exists. Returns the killed runs as
    /// `(job, start, nominal seconds unfinished, nodes held)`.
    pub(crate) fn crash_node(
        &mut self,
        now: f64,
        repair_end: f64,
        node: usize,
    ) -> Vec<(usize, f64, f64, usize)> {
        debug_assert!(self.faults_active && self.engine == SchedEngine::SlotSet);
        self.capacity_released();
        self.fault_stats.crashes += 1;
        self.slots
            .sub_window(now, repair_end, &ProcSet::from_ids(&[node]));
        self.unavail_until[node] = self.unavail_until[node].max(repair_end);
        self.health[node] = NodeHealth::Repairing;
        let mut out = Vec::new();
        let mut i = 0;
        let mut released = false;
        while i < self.running.len() {
            if self.running[i].nodes_held.contains(&node) {
                let r = self.running.swap_remove(i);
                self.release_run(now, &r);
                released = true;
                out.push((r.job, r.start, r.remaining.max(0.0), r.nodes_held.len()));
            } else {
                i += 1;
            }
        }
        if released {
            self.slots.merge();
        }
        // Void quotes: a promise computed against pre-crash capacity is
        // not a promise the scheduler broke when the node died, and a
        // stale conservative reservation would pin the re-quote loop to a
        // window that may no longer exist.
        for k in 0..self.queue.len() {
            let j = self.queue[k];
            self.jobs[j].reserved = None;
            self.jobs[j].resv = None;
        }
        for &(j, ..) in &out {
            self.jobs[j].reserved = None;
            self.jobs[j].resv = None;
        }
        out
    }

    /// A fail-slow signal (`NicDegrade`) on `node` lasting until `end`:
    /// the node is excluded from new placements and marked Suspect; when
    /// it hosts running work it escalates to Draining — the job finishes
    /// out rather than being killed. A node already down for repair stays
    /// Repairing (the crash dominates), but the exclusion still extends.
    pub(crate) fn degrade_node(&mut self, now: f64, end: f64, node: usize) {
        debug_assert!(self.faults_active && self.engine == SchedEngine::SlotSet);
        self.slots.sub_window(now, end, &ProcSet::from_ids(&[node]));
        self.unavail_until[node] = self.unavail_until[node].max(end);
        if self.health[node] == NodeHealth::Repairing {
            return;
        }
        let hosted = self
            .running
            .iter()
            .find(|r| r.nodes_held.contains(&node))
            .map(|r| r.job);
        match hosted {
            Some(job) => {
                self.health[node] = NodeHealth::Draining;
                self.fault_stats.drains += 1;
                self.fault_events.push(FaultEvent {
                    t: now,
                    action: FaultAction::Drain,
                    node,
                    job: Some(job),
                });
            }
            None => self.health[node] = NodeHealth::Suspect,
        }
    }

    /// Return every node whose exclusion has expired to Healthy. Crash
    /// repairs get a REPAIR attribution row; fail-slow nodes recover
    /// silently (nothing was killed, nothing to attribute).
    pub(crate) fn heal(&mut self, now: f64) {
        if !self.faults_active {
            return;
        }
        for n in 0..self.health.len() {
            if self.health[n] != NodeHealth::Healthy && self.unavail_until[n] <= now + EPS {
                self.capacity_released();
                if self.health[n] == NodeHealth::Repairing {
                    self.fault_stats.repairs += 1;
                    self.fault_events.push(FaultEvent {
                        t: now,
                        action: FaultAction::Repair,
                        node: n,
                        job: None,
                    });
                }
                self.health[n] = NodeHealth::Healthy;
                self.unavail_until[n] = 0.0;
            }
        }
    }

    /// Arm the spot-revocation timer on a just-started job.
    pub fn set_preempt_at(&mut self, job: usize, at: f64) {
        if let Some(r) = self.running.iter_mut().find(|r| r.job == job) {
            r.preempt_at = Some(at);
        }
    }

    /// First-quoted reservations, for invariant checks.
    pub fn reservations(&self) -> Vec<(usize, f64)> {
        self.jobs
            .iter()
            .filter_map(|(j, r)| r.reserved.map(|t| (j, t)))
            .collect()
    }
}

/// Free-node availability profile for conservative reservations:
/// `(time, delta)` events prefix-summed into `(time, free-from-then-on)`
/// breakpoints. Built from the complete delta list in one (stable) sort —
/// the breakpoints depend only on the delta multiset, so batching every
/// reservation before construction yields the bytes the historical
/// rebuild-per-reservation produced. Deltas may be negative (maintenance
/// windows dip the profile); the earliest scan handles dips.
struct Profile {
    /// Sorted breakpoints; `points[i].1` is the free count from
    /// `points[i].0` until the next breakpoint. `points[0].0 == now`.
    points: Vec<(f64, i64)>,
}

impl Profile {
    fn new(now: f64, free_now: i64, mut deltas: Vec<(f64, i64)>) -> Profile {
        deltas.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        let mut points = Vec::with_capacity(deltas.len() + 1);
        points.push((now, free_now));
        let mut free = free_now;
        for (t, d) in deltas {
            free += d;
            match points.last_mut() {
                Some(last) if (t - last.0).abs() <= EPS => last.1 = free,
                _ => points.push((t, free)),
            }
        }
        Profile { points }
    }

    /// Earliest start at which `need` nodes stay free for `dur` seconds,
    /// or `None` when the profile never frees them. All reservations and
    /// outages end, so for validated inputs (width <= pool) the scan
    /// always lands; callers turn `None` into a typed [`SchedError`]
    /// instead of the historical panic.
    fn earliest(&self, need: usize, dur: f64) -> Option<f64> {
        earliest_fit(&self.points, need as i64, dur)
    }
}

/// Configuration of a single-site simulation.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    pub pool: NodePool,
    pub placement: PlacementPolicy,
    pub discipline: Discipline,
    pub contention: ContentionParams,
    pub engine: SchedEngine,
    pub calendar: Vec<Maintenance>,
    pub quotas: Vec<QuotaRule>,
    /// Seeded unplanned-fault feed; `None` (the default) keeps the
    /// zero-fault path bit-identical to the pre-fault engine.
    pub faults: Option<SiteFaults>,
}

impl SiteConfig {
    pub fn new(
        pool: NodePool,
        placement: PlacementPolicy,
        discipline: Discipline,
        contention: ContentionParams,
    ) -> SiteConfig {
        SiteConfig {
            pool,
            placement,
            discipline,
            contention,
            engine: SchedEngine::default(),
            calendar: Vec::new(),
            quotas: Vec::new(),
            faults: None,
        }
    }

    pub fn with_engine(mut self, engine: SchedEngine) -> SiteConfig {
        self.engine = engine;
        self
    }

    pub fn with_maintenance(mut self, m: Maintenance) -> SiteConfig {
        self.calendar.push(m);
        self
    }

    pub fn with_quota(mut self, q: QuotaRule) -> SiteConfig {
        self.quotas.push(q);
        self
    }

    pub fn with_faults(mut self, f: SiteFaults) -> SiteConfig {
        self.faults = Some(f);
        self
    }
}

pub(crate) fn validate(jobs: &[SchedJob], cfg: &SiteConfig) -> Result<(), SchedError> {
    use std::cmp::Ordering;
    // Windows must strictly increase; `partial_cmp` keeps NaN rejected.
    let increases = |a: f64, b: f64| a.partial_cmp(&b) == Some(Ordering::Less);
    let pool_nodes = cfg.pool.nodes();
    let legacy = cfg.engine == SchedEngine::LegacyFreeNode;
    for m in &cfg.calendar {
        if !increases(m.begin, m.end) || m.begin < 0.0 {
            return Err(SchedError::InvalidConfig {
                reason: format!("maintenance window [{}, {}) is inverted", m.begin, m.end),
            });
        }
        match &m.nodes {
            MaintNodes::Rack(r) if *r >= cfg.pool.n_racks() => {
                return Err(SchedError::InvalidConfig {
                    reason: format!("maintenance names rack {r} of {}", cfg.pool.n_racks()),
                })
            }
            MaintNodes::Nodes(ids) if ids.iter().any(|&n| n >= pool_nodes) => {
                return Err(SchedError::InvalidConfig {
                    reason: "maintenance names a node outside the pool".to_string(),
                })
            }
            _ => {}
        }
    }
    for q in &cfg.quotas {
        if q.max_nodes == 0 {
            return Err(SchedError::InvalidConfig {
                reason: format!("zero-node quota for project {}", q.project),
            });
        }
        if let Some((b, e)) = q.window {
            if !increases(b, e) {
                return Err(SchedError::InvalidConfig {
                    reason: format!("quota window [{b}, {e}) is inverted"),
                });
            }
        }
    }
    if legacy && !cfg.calendar.is_empty() {
        return Err(SchedError::LegacyEngineUnsupported {
            feature: "maintenance calendars",
        });
    }
    if legacy && !cfg.quotas.is_empty() {
        return Err(SchedError::LegacyEngineUnsupported {
            feature: "per-project quotas",
        });
    }
    if let Some(f) = &cfg.faults {
        if !f.model.is_null() {
            if legacy {
                return Err(SchedError::LegacyEngineUnsupported {
                    feature: "fault injection",
                });
            }
            if !f.mttr_secs.is_finite() || f.mttr_secs < 0.0 {
                return Err(SchedError::InvalidConfig {
                    reason: format!("fault MTTR {} is not a finite duration", f.mttr_secs),
                });
            }
            if !f.horizon_secs.is_finite() || f.horizon_secs <= 0.0 {
                return Err(SchedError::InvalidConfig {
                    reason: format!(
                        "fault horizon {} is not a positive duration",
                        f.horizon_secs
                    ),
                });
            }
        }
    }
    for (i, j) in jobs.iter().enumerate() {
        if legacy {
            if !j.deps.is_empty() {
                return Err(SchedError::LegacyEngineUnsupported {
                    feature: "job dependencies",
                });
            }
            if !j.shapes.is_empty() {
                return Err(SchedError::LegacyEngineUnsupported {
                    feature: "moldable jobs",
                });
            }
            if j.start_at.is_some() {
                return Err(SchedError::LegacyEngineUnsupported {
                    feature: "advance reservations",
                });
            }
        }
        // Field sanity for the rigid view: every downstream `expect` on
        // finite event times, walltimes and reservations leans on these
        // rejections — a NaN or infinite time entering the event queue
        // would otherwise panic deep inside a discipline.
        if !j.runtime.is_finite() || j.runtime <= 0.0 {
            return Err(SchedError::InvalidJob {
                job: i,
                reason: format!("runtime {} is not a positive finite duration", j.runtime),
            });
        }
        if !j.walltime.is_finite() || j.walltime <= 0.0 {
            return Err(SchedError::InvalidJob {
                job: i,
                reason: format!("walltime {} is not a positive finite duration", j.walltime),
            });
        }
        if !j.submit.is_finite() || j.submit < 0.0 {
            return Err(SchedError::InvalidJob {
                job: i,
                reason: format!("submit time {} is not finite and non-negative", j.submit),
            });
        }
        if !j.comm_fraction.is_finite() || !(0.0..=1.0).contains(&j.comm_fraction) {
            return Err(SchedError::InvalidJob {
                job: i,
                reason: format!("communication fraction {} outside [0, 1]", j.comm_fraction),
            });
        }
        let widths: Vec<usize> = if j.shapes.is_empty() {
            vec![j.nodes]
        } else {
            j.shapes.iter().map(|s| s.nodes).collect()
        };
        for &w in &widths {
            if w == 0 {
                return Err(SchedError::InvalidJob {
                    job: i,
                    reason: "zero-node shape".to_string(),
                });
            }
            if w > pool_nodes {
                return Err(SchedError::InsufficientNodes {
                    job: i,
                    need: w,
                    limit: pool_nodes,
                });
            }
            // RackStrict can never place a job wider than one rack.
            if cfg.placement == PlacementPolicy::RackStrict && w > cfg.pool.hierarchy().rack_size()
            {
                return Err(SchedError::InsufficientNodes {
                    job: i,
                    need: w,
                    limit: cfg.pool.hierarchy().rack_size(),
                });
            }
            // A windowless quota is a hard ceiling.
            if let Some(p) = j.project {
                for q in &cfg.quotas {
                    if q.project == p && q.window.is_none() && w > q.max_nodes {
                        return Err(SchedError::InsufficientNodes {
                            job: i,
                            need: w,
                            limit: q.max_nodes,
                        });
                    }
                }
            }
        }
        for s in &j.shapes {
            if !s.runtime.is_finite()
                || !s.walltime.is_finite()
                || !increases(0.0, s.runtime)
                || s.walltime < s.runtime
            {
                return Err(SchedError::InvalidJob {
                    job: i,
                    reason: "shape with non-finite or non-positive runtime, or walltime < runtime"
                        .to_string(),
                });
            }
        }
        if j.deps.iter().any(|&d| d >= jobs.len()) {
            return Err(SchedError::InvalidJob {
                job: i,
                reason: "dependency on an unknown job".to_string(),
            });
        }
        if let Some(t) = j.start_at {
            if !t.is_finite() {
                return Err(SchedError::InvalidJob {
                    job: i,
                    reason: format!("reservation start {t} is not finite"),
                });
            }
            if t < j.submit - EPS {
                return Err(SchedError::InvalidJob {
                    job: i,
                    reason: "reservation before submission".to_string(),
                });
            }
            if !j.deps.is_empty() || !j.shapes.is_empty() {
                return Err(SchedError::InvalidJob {
                    job: i,
                    reason: "advance reservations cannot be dependent or moldable".to_string(),
                });
            }
        }
    }
    // Dependency edges must form a DAG (a cycle waits on itself forever).
    let mut color = vec![0u8; jobs.len()]; // 0 white, 1 grey, 2 black
    fn dfs(v: usize, jobs: &[SchedJob], color: &mut [u8]) -> Result<(), SchedError> {
        color[v] = 1;
        for &d in &jobs[v].deps {
            match color[d] {
                1 => return Err(SchedError::DependencyCycle { job: d }),
                0 => dfs(d, jobs, color)?,
                _ => {}
            }
        }
        color[v] = 2;
        Ok(())
    }
    for v in 0..jobs.len() {
        if color[v] == 0 {
            dfs(v, jobs, &mut color)?;
        }
    }
    Ok(())
}

/// Run a job stream through one site's scheduler. Deterministic. Errors
/// are typed: fragmentation under a strict placement on the legacy engine,
/// unsatisfiable reservations, invalid configs — never a panic.
pub fn simulate_site(jobs: &[SchedJob], cfg: &SiteConfig) -> Result<SiteResult, SchedError> {
    #[derive(Clone, Copy)]
    enum Ev {
        Submit(usize),
        /// A static calendar instant (maintenance end, quota window end,
        /// reservation start, fault-window end): always valid, just
        /// re-runs the scheduler.
        Tick,
        Wake(u64),
        /// Unplanned `NodeCrash` window `k` of the pre-generated plan
        /// begins: kill co-located work, carve out the repair window.
        Crash(usize),
        /// Fail-slow `NicDegrade` window `k` begins: drain, don't kill.
        Degrade(usize),
        /// `(job, node)`: a killed job's backoff delay has elapsed.
        Requeue(usize, usize),
    }
    validate(jobs, cfg)?;
    let mut st = SiteState::new(
        cfg.pool.clone(),
        cfg.placement,
        cfg.discipline,
        cfg.contention,
        cfg.engine,
    );
    for j in jobs {
        st.admit(j);
    }
    st.set_quotas(&cfg.quotas);
    st.apply_calendar(&cfg.calendar);
    let mut q: EventQueue<Ev> = EventQueue::new();
    // Static wake-ups: only instants that can *enable* a start need an
    // event (window begins merely restrict, and are enforced inline).
    if cfg.engine == SchedEngine::SlotSet {
        for m in &cfg.calendar {
            q.push(SimTime::from_secs_f64(m.end), Ev::Tick);
        }
        for rule in &cfg.quotas {
            if let Some((_, e)) = rule.window {
                q.push(SimTime::from_secs_f64(e), Ev::Tick);
            }
        }
    }
    // Pre-generate the unplanned-fault plan: a pure function of
    // (model, pool, horizon, seed), so two runs at the same seed replay
    // the identical timeline. A null model leaves `faults_active` off and
    // every fault branch below dead — the zero-fault path is the old path
    // bit for bit.
    let mut crashes: Vec<(f64, f64, usize)> = Vec::new();
    let mut degrades: Vec<(f64, f64, usize)> = Vec::new();
    let mut requeue = RequeuePolicy::default();
    if let Some(f) = cfg.faults.as_ref().filter(|f| !f.model.is_null()) {
        st.attach_faults();
        requeue = f.requeue;
        let plan = FaultSchedule::generate(
            &f.model,
            cfg.pool.nodes(),
            SimDur::from_secs_f64(f.horizon_secs),
            f.seed,
        );
        for w in plan.windows() {
            let (start, end) = (w.start.as_secs_f64(), w.end.as_secs_f64());
            match w.kind {
                FaultKind::NodeCrash => crashes.push((start, end.max(start + f.mttr_secs), w.node)),
                FaultKind::NicDegrade { .. } => degrades.push((start, end, w.node)),
                // Steal storms, brownouts, spot revocation and SDC act at
                // the engine/burst level, not on the slot timeline.
                _ => {}
            }
        }
        for (k, &(start, repair_end, _)) in crashes.iter().enumerate() {
            q.push(SimTime::from_secs_f64(start), Ev::Crash(k));
            q.push(SimTime::from_secs_f64(repair_end), Ev::Tick);
        }
        for (k, &(start, end, _)) in degrades.iter().enumerate() {
            q.push(SimTime::from_secs_f64(start), Ev::Degrade(k));
            q.push(SimTime::from_secs_f64(end), Ev::Tick);
        }
    }
    for (i, j) in jobs.iter().enumerate() {
        if let Some(start) = j.start_at {
            let v = st.jobs[i].view;
            st.register_advance(i, start, &v)?;
            q.push(SimTime::from_secs_f64(start), Ev::Tick);
        }
        q.push(SimTime::from_secs_f64(j.submit), Ev::Submit(i));
    }
    let mut out: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
    while let Some((t, ev)) = q.pop() {
        let now = t.as_secs_f64();
        match ev {
            Ev::Submit(i) => {
                st.advance(now);
                if let Some(shape) = st.choose_shape(now, &jobs[i])? {
                    st.jobs[i].view.nodes = shape.nodes;
                    st.jobs[i].view.runtime = shape.runtime;
                    st.jobs[i].view.walltime = shape.walltime;
                }
                st.submit(i);
            }
            Ev::Tick => st.advance(now),
            Ev::Wake(gen) => {
                if gen != st.wake_gen {
                    continue;
                }
                st.advance(now);
            }
            Ev::Crash(k) => {
                st.advance(now);
                let (_, repair_end, node) = crashes[k];
                for (job, start, remaining, nodes) in st.crash_node(now, repair_end, node) {
                    st.fault_stats.kills += 1;
                    st.fault_events.push(FaultEvent {
                        t: now,
                        action: FaultAction::Kill,
                        node,
                        job: Some(job),
                    });
                    let v = st.jobs[job].view;
                    let done = (v.runtime - remaining).max(0.0);
                    let retained = requeue.checkpoint.map_or(0.0, |ck| ck.retained(done));
                    let lost = (done - retained).max(0.0);
                    st.jobs[job].fault_loss += lost;
                    st.fault_stats.work_lost_s += lost;
                    st.fault_stats.work_salvaged_s += retained;
                    st.jobs[job].kills += 1;
                    let attempt = st.jobs[job].kills;
                    if attempt > requeue.retry.max_retries {
                        // Retry budget exhausted: the job fails for good.
                        st.jobs[job].departed = true;
                        out[job] = Some(JobOutcome {
                            id: jobs[job].id,
                            start,
                            end: now,
                            wait: (start - v.submit).max(0.0),
                            inflation: ((now - start) - v.runtime).max(0.0),
                            completed: false,
                            nodes,
                            requeues: attempt,
                            fault_loss_s: st.jobs[job].fault_loss,
                        });
                    } else {
                        if retained > 0.0 {
                            // Checkpoint credit: the rerun owes only the
                            // un-checkpointed remainder plus the restore
                            // cost. The walltime is a static upper bound
                            // and never shrinks with it.
                            let restore = requeue.checkpoint.map_or(0.0, |ck| ck.restore_cost);
                            st.jobs[job].view.runtime = (v.runtime - retained + restore).max(EPS);
                        }
                        let delay = requeue.retry.delay_before(attempt);
                        q.push(SimTime::from_secs_f64(now + delay), Ev::Requeue(job, node));
                    }
                }
            }
            Ev::Degrade(k) => {
                st.advance(now);
                let (_, end, node) = degrades[k];
                st.degrade_node(now, end, node);
            }
            Ev::Requeue(job, node) => {
                st.advance(now);
                st.fault_stats.requeues += 1;
                st.fault_events.push(FaultEvent {
                    t: now,
                    action: FaultAction::Requeue,
                    node,
                    job: Some(job),
                });
                // Deps were already satisfied when the job first started;
                // it re-enters the queue as a fresh arrival at the tail.
                st.queue.push_back(job);
            }
        }
        for dep in st.departures(now) {
            let (job, start, end, nodes, completed) = match dep {
                Departure::Completed {
                    job,
                    start,
                    end,
                    nodes,
                } => (job, start, end, nodes, true),
                Departure::Killed {
                    job,
                    start,
                    end,
                    nodes,
                } => (job, start, end, nodes, false),
            };
            out[job] = Some(JobOutcome {
                id: jobs[job].id,
                start,
                end,
                wait: (start - st.jobs[job].view.submit).max(0.0),
                inflation: ((end - start) - st.jobs[job].view.runtime).max(0.0),
                completed,
                nodes,
                requeues: st.jobs[job].kills,
                fault_loss_s: st.jobs[job].fault_loss,
            });
        }
        st.heal(now);
        st.start_due_advance(now)?;
        st.try_start(now)?;
        st.started.clear();
        st.recompute_rates();
        st.wake_gen += 1;
        if let Some(te) = st.next_event() {
            q.push(SimTime::from_secs_f64(te.max(now)), Ev::Wake(st.wake_gen));
        }
    }
    let outcomes: Vec<JobOutcome> = out
        .into_iter()
        .map(|o| o.expect("every job departs"))
        .collect();
    let n = outcomes.len().max(1) as f64;
    let first_submit = jobs.iter().map(|j| j.submit).fold(f64::INFINITY, f64::min);
    let last_end = outcomes.iter().map(|o| o.end).fold(0.0, f64::max);
    Ok(SiteResult {
        makespan: if outcomes.is_empty() {
            0.0
        } else {
            last_end - first_submit
        },
        mean_wait: outcomes.iter().map(|o| o.wait).sum::<f64>() / n,
        total_inflation: outcomes.iter().map(|o| o.inflation).sum(),
        head_delay_violations: st.head_delay_violations,
        reservations: st.reservations(),
        fault_events: std::mem::take(&mut st.fault_events),
        fault_stats: st.fault_stats,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nodes: usize, rack: usize, d: Discipline) -> SiteConfig {
        SiteConfig::new(
            NodePool::new(nodes, rack),
            PlacementPolicy::Packed,
            d,
            ContentionParams::NONE,
        )
    }

    /// The canonical head-delay scenario: J0 holds 6/8 nodes until t=100;
    /// J1 (head) needs all 8; J2 is a 2-node, 150 s job.
    fn head_delay_jobs() -> Vec<SchedJob> {
        let mut j0 = SchedJob::new(0, 6, 0.0, 100.0, 0.0);
        j0.walltime = 100.0;
        let mut j1 = SchedJob::new(1, 8, 1.0, 50.0, 0.0);
        j1.walltime = 50.0;
        let mut j2 = SchedJob::new(2, 2, 2.0, 150.0, 0.0);
        j2.walltime = 150.0;
        vec![j0, j1, j2]
    }

    #[test]
    fn easy_rejects_head_delaying_backfill() {
        let r = simulate_site(&head_delay_jobs(), &cfg(8, 8, Discipline::Easy)).unwrap();
        // J2 must not backfill (ends at 152 > shadow 100, uses head nodes):
        // head starts exactly at the shadow.
        assert!((r.outcomes[1].start - 100.0).abs() < 1e-6, "{r:?}");
        assert_eq!(r.head_delay_violations, 0);
        // J2 runs after the head.
        assert!(r.outcomes[2].start >= 150.0 - 1e-6);
    }

    #[test]
    fn naive_backfill_delays_the_head() {
        let r = simulate_site(&head_delay_jobs(), &cfg(8, 8, Discipline::NaiveBackfill)).unwrap();
        // The naive rule starts J2 at t=2 on free nodes; the head can then
        // only start when J2 ends at t=152.
        assert!((r.outcomes[2].start - 2.0).abs() < 1e-6, "{r:?}");
        assert!((r.outcomes[1].start - 152.0).abs() < 1e-6, "{r:?}");
        assert_eq!(r.head_delay_violations, 1);
    }

    #[test]
    fn easy_backfills_within_the_shadow_window() {
        let mut jobs = head_delay_jobs();
        // A 2-node job short enough to finish before the shadow.
        jobs[2].runtime = 50.0;
        jobs[2].walltime = 50.0;
        let r = simulate_site(&jobs, &cfg(8, 8, Discipline::Easy)).unwrap();
        assert!((r.outcomes[2].start - 2.0).abs() < 1e-6, "{r:?}");
        assert!((r.outcomes[1].start - 100.0).abs() < 1e-6, "{r:?}");
        assert_eq!(r.head_delay_violations, 0);
    }

    #[test]
    fn conservative_honours_every_reservation() {
        let r = simulate_site(&head_delay_jobs(), &cfg(8, 8, Discipline::Conservative)).unwrap();
        assert_eq!(r.head_delay_violations, 0);
        // Conservative reserves J2 behind both: starts at 150.
        assert!((r.outcomes[1].start - 100.0).abs() < 1e-6, "{r:?}");
        assert!((r.outcomes[2].start - 150.0).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn fcfs_blocks_behind_the_head() {
        let r = simulate_site(&head_delay_jobs(), &cfg(8, 8, Discipline::Fcfs)).unwrap();
        assert!((r.outcomes[1].start - 100.0).abs() < 1e-6);
        assert!((r.outcomes[2].start - 150.0).abs() < 1e-6);
    }

    #[test]
    fn contention_inflates_colocated_comm_jobs() {
        // Two 2-node comm-heavy jobs in the same rack of a GigE-class
        // fabric: each sees the other as a sharer.
        let contention = ContentionParams {
            beta: 0.5,
            cap: 2.5,
        };
        let mk = |id, submit| {
            let mut j = SchedJob::new(id, 2, submit, 100.0, 0.8);
            j.walltime = 300.0;
            j
        };
        let cfg = SiteConfig::new(
            NodePool::new(4, 4),
            PlacementPolicy::Packed,
            Discipline::Fcfs,
            contention,
        );
        let r = simulate_site(&[mk(0, 0.0), mk(1, 0.0)], &cfg).unwrap();
        // Each job: slowdown = 1 - 0.8 + 0.8 * (1 + 0.5 * 0.8) = 1.32
        // while both run; the first to finish then runs uncontended — but
        // they're symmetric, so both finish at 132.
        for o in &r.outcomes {
            assert!(o.completed);
            assert!((o.inflation - 32.0).abs() < 0.5, "{o:?}");
        }
        // Solo control: no inflation.
        let solo = simulate_site(&[mk(0, 0.0)], &cfg).unwrap();
        assert!(solo.outcomes[0].inflation < 1e-6);
    }

    #[test]
    fn rack_aware_placement_avoids_cross_job_contention() {
        // Two 2-node jobs on a 2-rack pool: rack-aware puts them in
        // different racks (no shared links); scattered forces both across
        // the spine.
        let contention = ContentionParams {
            beta: 0.5,
            cap: 2.5,
        };
        let mk = |id| {
            let mut j = SchedJob::new(id, 2, 0.0, 100.0, 0.8);
            j.walltime = 300.0;
            j
        };
        let run = |placement| {
            let cfg = SiteConfig::new(NodePool::new(8, 4), placement, Discipline::Fcfs, contention);
            simulate_site(&[mk(0), mk(1)], &cfg)
                .unwrap()
                .total_inflation
        };
        // Packed best-fits both into rack 0 -> leaf contention.
        assert!(run(PlacementPolicy::Packed) > 10.0);
        assert!(run(PlacementPolicy::Scattered) > 10.0);
        assert!(run(PlacementPolicy::RackAware) < 1e-6);
    }

    #[test]
    fn walltime_overrun_kills_the_job() {
        let mut j = SchedJob::new(0, 2, 0.0, 100.0, 0.9);
        j.walltime = 100.0; // no headroom at all
        let mut rival = SchedJob::new(1, 2, 0.0, 100.0, 0.9);
        rival.walltime = 400.0;
        let cfg = SiteConfig::new(
            NodePool::new(4, 4),
            PlacementPolicy::Packed,
            Discipline::Fcfs,
            ContentionParams {
                beta: 0.5,
                cap: 2.5,
            },
        );
        let r = simulate_site(&[j, rival], &cfg).unwrap();
        assert!(!r.outcomes[0].completed, "{r:?}");
        assert!((r.outcomes[0].end - 100.0).abs() < 1e-6);
        assert!(r.outcomes[1].completed);
    }

    #[test]
    fn backfill_beats_fcfs_on_mean_wait() {
        let jobs = crate::job::lublin_mix(120, 16, 1.4, 42);
        let fcfs = simulate_site(&jobs, &cfg(16, 16, Discipline::Fcfs)).unwrap();
        let easy = simulate_site(&jobs, &cfg(16, 16, Discipline::Easy)).unwrap();
        assert!(easy.head_delay_violations == 0);
        assert!(
            easy.mean_wait <= fcfs.mean_wait,
            "easy {} vs fcfs {}",
            easy.mean_wait,
            fcfs.mean_wait
        );
        assert!(easy.makespan <= fcfs.makespan + 1e-6);
    }

    // -- Engine equivalence and the new capabilities ----------------------

    #[test]
    fn slot_engine_matches_the_legacy_oracle_on_a_seeded_mix() {
        let jobs = crate::job::lublin_mix(80, 16, 1.2, 7);
        for d in [
            Discipline::Fcfs,
            Discipline::Easy,
            Discipline::Conservative,
            Discipline::NaiveBackfill,
        ] {
            let slot = simulate_site(&jobs, &cfg(16, 4, d)).unwrap();
            let legacy = simulate_site(
                &jobs,
                &cfg(16, 4, d).with_engine(SchedEngine::LegacyFreeNode),
            )
            .unwrap();
            assert_eq!(slot.head_delay_violations, legacy.head_delay_violations);
            for (a, b) in slot.outcomes.iter().zip(&legacy.outcomes) {
                assert_eq!(a.start, b.start, "{} job {}", d.name(), a.id);
                assert_eq!(a.end, b.end, "{} job {}", d.name(), a.id);
                assert_eq!(a.nodes, b.nodes);
            }
        }
    }

    #[test]
    fn maintenance_window_forces_a_wait() {
        // All four nodes down over [10, 20): a job submitted at 5 whose
        // walltime crosses the outage must hold until the window clears.
        let mut j = SchedJob::new(0, 4, 5.0, 8.0, 0.0);
        j.walltime = 8.0;
        let c = cfg(4, 4, Discipline::Easy).with_maintenance(Maintenance {
            begin: 10.0,
            end: 20.0,
            nodes: MaintNodes::All,
        });
        let r = simulate_site(&[j], &c).unwrap();
        assert!((r.outcomes[0].start - 20.0).abs() < 1e-6, "{r:?}");
        assert!(r.outcomes[0].completed);
    }

    #[test]
    fn quota_caps_concurrent_project_nodes() {
        // Four 2-node jobs billed to project 0 with a 4-node cap: two run,
        // two wait for the first pair to depart.
        let jobs: Vec<SchedJob> = (0..4)
            .map(|i| {
                let mut j = SchedJob::new(i, 2, 0.0, 100.0, 0.0).with_project(0);
                j.walltime = 100.0;
                j
            })
            .collect();
        let c = cfg(8, 8, Discipline::Fcfs).with_quota(QuotaRule {
            project: 0,
            max_nodes: 4,
            window: None,
        });
        let r = simulate_site(&jobs, &c).unwrap();
        let early = r.outcomes.iter().filter(|o| o.start < 1e-6).count();
        assert_eq!(early, 2, "{r:?}");
        for o in &r.outcomes[2..] {
            assert!(o.start >= 100.0 - 1e-6, "{o:?}");
        }
    }

    #[test]
    fn dependency_gates_until_the_dep_departs() {
        let mut j0 = SchedJob::new(0, 2, 0.0, 100.0, 0.0);
        j0.walltime = 100.0;
        let j1 = SchedJob::new(1, 2, 0.0, 50.0, 0.0).with_deps(&[0]);
        let r = simulate_site(&[j0, j1], &cfg(8, 8, Discipline::Easy)).unwrap();
        assert!((r.outcomes[1].start - 100.0).abs() < 1e-6, "{r:?}");
        let cyclic = vec![
            SchedJob::new(0, 1, 0.0, 10.0, 0.0).with_deps(&[1]),
            SchedJob::new(1, 1, 0.0, 10.0, 0.0).with_deps(&[0]),
        ];
        assert!(matches!(
            simulate_site(&cyclic, &cfg(8, 8, Discipline::Easy)),
            Err(SchedError::DependencyCycle { .. })
        ));
    }

    #[test]
    fn moldable_job_commits_to_the_earliest_finishing_shape() {
        let j = SchedJob::new(0, 4, 0.0, 100.0, 0.0).with_shapes(&[
            JobShape {
                nodes: 4,
                runtime: 100.0,
                walltime: 100.0,
            },
            JobShape {
                nodes: 8,
                runtime: 60.0,
                walltime: 60.0,
            },
        ]);
        let r = simulate_site(&[j], &cfg(8, 8, Discipline::Easy)).unwrap();
        assert_eq!(r.outcomes[0].nodes, 8, "{r:?}");
        assert!((r.outcomes[0].end - 60.0).abs() < 1e-6);
        // With half the pool held, the wide shape queues behind a long
        // walltime while the narrow one starts immediately — narrow wins.
        let mut blocker = SchedJob::new(0, 4, 0.0, 500.0, 0.0);
        blocker.walltime = 500.0;
        let mold = SchedJob::new(1, 4, 1.0, 100.0, 0.0).with_shapes(&[
            JobShape {
                nodes: 4,
                runtime: 100.0,
                walltime: 100.0,
            },
            JobShape {
                nodes: 8,
                runtime: 60.0,
                walltime: 60.0,
            },
        ]);
        let r = simulate_site(&[blocker, mold], &cfg(8, 8, Discipline::Easy)).unwrap();
        assert_eq!(r.outcomes[1].nodes, 4, "{r:?}");
        assert!(r.outcomes[1].start < 2.0);
    }

    #[test]
    fn advance_reservation_starts_exactly_on_time() {
        // A 4-node reservation at t=500 pins nodes; a 4-node batch job
        // routes around the pin and runs immediately.
        let mut resv = SchedJob::new(0, 4, 0.0, 200.0, 0.0).at(500.0);
        resv.walltime = 200.0;
        let mut batch = SchedJob::new(1, 4, 0.0, 1000.0, 0.0);
        batch.walltime = 1000.0;
        let r = simulate_site(&[resv, batch], &cfg(8, 8, Discipline::Easy)).unwrap();
        assert!((r.outcomes[0].start - 500.0).abs() < 1e-6, "{r:?}");
        assert!(r.outcomes[1].start < 1e-6, "{r:?}");
        assert!(r.outcomes[0].completed && r.outcomes[1].completed);
    }

    #[test]
    fn legacy_engine_rejects_the_new_capabilities() {
        let dep = vec![
            SchedJob::new(0, 1, 0.0, 10.0, 0.0),
            SchedJob::new(1, 1, 0.0, 10.0, 0.0).with_deps(&[0]),
        ];
        let legacy = cfg(8, 8, Discipline::Easy).with_engine(SchedEngine::LegacyFreeNode);
        assert!(matches!(
            simulate_site(&dep, &legacy),
            Err(SchedError::LegacyEngineUnsupported {
                feature: "job dependencies"
            })
        ));
        let quota_cfg = cfg(8, 8, Discipline::Easy)
            .with_engine(SchedEngine::LegacyFreeNode)
            .with_quota(QuotaRule {
                project: 0,
                max_nodes: 4,
                window: None,
            });
        assert!(matches!(
            simulate_site(&[SchedJob::new(0, 1, 0.0, 10.0, 0.0)], &quota_cfg),
            Err(SchedError::LegacyEngineUnsupported { .. })
        ));
    }

    // -- Unplanned faults -------------------------------------------------

    /// A fail-stop-only model hot enough that an hour-long batch on a
    /// small pool is guaranteed several crash windows.
    fn crashy_model() -> sim_faults::FaultModel {
        sim_faults::FaultModel {
            name: "test-crashy",
            scale: 1.0,
            crash_per_node_hour: 2.0,
            crash_mean_secs: 60.0,
            ..sim_faults::FaultModel::none()
        }
    }

    fn fault_jobs(n: usize) -> Vec<SchedJob> {
        (0..n)
            .map(|i| {
                let mut j = SchedJob::new(i, 2, (i as f64) * 30.0, 600.0, 0.0);
                j.walltime = 1e5; // generous: only crashes can kill
                j
            })
            .collect()
    }

    #[test]
    fn null_fault_model_is_bitwise_inert() {
        let jobs = head_delay_jobs();
        let base = simulate_site(&jobs, &cfg(8, 8, Discipline::Easy)).unwrap();
        let nulled = cfg(8, 8, Discipline::Easy)
            .with_faults(SiteFaults::new(sim_faults::FaultModel::none(), 42));
        let r = simulate_site(&jobs, &nulled).unwrap();
        for (a, b) in base.outcomes.iter().zip(&r.outcomes) {
            assert_eq!(a.start.to_bits(), b.start.to_bits());
            assert_eq!(a.end.to_bits(), b.end.to_bits());
            assert_eq!(a.wait.to_bits(), b.wait.to_bits());
        }
        assert!(r.fault_events.is_empty());
        assert_eq!(r.fault_stats, FaultStats::default());
    }

    #[test]
    fn fault_runs_are_bit_identical_per_seed() {
        let jobs = fault_jobs(12);
        let mk = || {
            cfg(8, 4, Discipline::Easy)
                .with_faults(SiteFaults::new(crashy_model(), 7).with_mttr(300.0))
        };
        let a = simulate_site(&jobs, &mk()).unwrap();
        let b = simulate_site(&jobs, &mk()).unwrap();
        assert!(a.fault_stats.crashes > 0, "model not hot enough: {a:?}");
        assert_eq!(a.fault_stats, b.fault_stats);
        assert_eq!(a.fault_events, b.fault_events);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.start.to_bits(), y.start.to_bits());
            assert_eq!(x.end.to_bits(), y.end.to_bits());
        }
    }

    #[test]
    fn crash_kills_requeue_and_eventually_finish() {
        let jobs = fault_jobs(8);
        let f = SiteFaults::new(crashy_model(), 3).with_mttr(120.0);
        let r = simulate_site(&jobs, &cfg(8, 4, Discipline::Easy).with_faults(f)).unwrap();
        assert!(r.fault_stats.kills > 0, "{:?}", r.fault_stats);
        // Every kill is either requeued or a terminal failure.
        let failed = r
            .outcomes
            .iter()
            .filter(|o| !o.completed && o.requeues > 0)
            .count();
        assert_eq!(r.fault_stats.requeues + failed, r.fault_stats.kills);
        // Attribution rows match the counters.
        let count = |a: FaultAction| r.fault_events.iter().filter(|e| e.action == a).count();
        assert_eq!(count(FaultAction::Kill), r.fault_stats.kills);
        assert_eq!(count(FaultAction::Requeue), r.fault_stats.requeues);
        assert_eq!(count(FaultAction::Repair), r.fault_stats.repairs);
        assert!(r.fault_stats.repairs <= r.fault_stats.crashes);
        // With a 16-retry default budget everything still completes.
        assert!(r.outcomes.iter().all(|o| o.completed), "{:?}", r.outcomes);
        assert!(r.outcomes.iter().any(|o| o.requeues > 0));
        assert!(r.fault_stats.work_lost_s > 0.0);
    }

    #[test]
    fn zero_retry_budget_fails_killed_jobs_for_good() {
        let jobs = fault_jobs(8);
        let retry = sim_faults::RetryPolicy {
            max_retries: 0,
            ..Default::default()
        };
        let f = SiteFaults::new(crashy_model(), 3)
            .with_mttr(120.0)
            .with_requeue(RequeuePolicy::default().with_retry(retry));
        let r = simulate_site(&jobs, &cfg(8, 4, Discipline::Easy).with_faults(f)).unwrap();
        assert!(r.fault_stats.kills > 0);
        assert_eq!(r.fault_stats.requeues, 0);
        for o in &r.outcomes {
            if o.requeues > 0 {
                assert!(!o.completed, "{o:?}");
                assert_eq!(o.requeues, 1);
            }
        }
    }

    #[test]
    fn checkpoints_salvage_work_lost_to_crashes() {
        let jobs = fault_jobs(8);
        let mk = |ck: Option<CheckpointSpec>| {
            let rq = RequeuePolicy {
                checkpoint: ck,
                ..Default::default()
            };
            let f = SiteFaults::new(crashy_model(), 5)
                .with_mttr(120.0)
                .with_requeue(rq);
            simulate_site(&jobs, &cfg(8, 4, Discipline::Easy).with_faults(f)).unwrap()
        };
        let plain = mk(None);
        assert!(plain.fault_stats.kills > 0);
        assert_eq!(plain.fault_stats.work_salvaged_s, 0.0);
        let ck = mk(Some(CheckpointSpec {
            interval: 30.0,
            restore_cost: 5.0,
        }));
        assert!(ck.fault_stats.work_salvaged_s > 0.0, "{:?}", ck.fault_stats);
    }

    #[test]
    fn degrade_drains_rather_than_kills() {
        let nic_model = sim_faults::FaultModel {
            name: "test-nicky",
            scale: 1.0,
            nic_per_node_hour: 2.0,
            nic_mean_secs: 300.0,
            nic_factor: 4.0,
            ..sim_faults::FaultModel::none()
        };
        let jobs = fault_jobs(8);
        let f = SiteFaults::new(nic_model, 11);
        let r = simulate_site(&jobs, &cfg(8, 4, Discipline::Easy).with_faults(f)).unwrap();
        // Fail-slow never kills; jobs all finish, some drains attributed.
        assert_eq!(r.fault_stats.kills, 0);
        assert_eq!(r.fault_stats.crashes, 0);
        assert!(r.outcomes.iter().all(|o| o.completed));
        assert!(r.fault_stats.drains > 0, "{:?}", r.fault_stats);
        assert!(r
            .fault_events
            .iter()
            .all(|e| e.action == FaultAction::Drain));
    }

    #[test]
    fn node_health_lifecycle_transitions() {
        let mut st = SiteState::new(
            NodePool::new(4, 4),
            PlacementPolicy::Packed,
            Discipline::Easy,
            ContentionParams::NONE,
            SchedEngine::SlotSet,
        );
        st.attach_faults();
        assert_eq!(st.node_health(0), NodeHealth::Healthy);
        // Degrade an idle node: Suspect, then Healthy once it expires.
        st.degrade_node(0.0, 50.0, 1);
        assert_eq!(st.node_health(1), NodeHealth::Suspect);
        st.heal(49.0);
        assert_eq!(st.node_health(1), NodeHealth::Suspect);
        st.heal(50.0);
        assert_eq!(st.node_health(1), NodeHealth::Healthy);
        // Crash: Repairing until the repair window ends; a degrade signal
        // during repair does not demote the state.
        st.crash_node(60.0, 200.0, 2);
        assert_eq!(st.node_health(2), NodeHealth::Repairing);
        st.degrade_node(70.0, 100.0, 2);
        assert_eq!(st.node_health(2), NodeHealth::Repairing);
        st.heal(200.0);
        assert_eq!(st.node_health(2), NodeHealth::Healthy);
        assert_eq!(st.fault_stats.crashes, 1);
        assert_eq!(st.fault_stats.repairs, 1);
    }

    #[test]
    fn faults_on_legacy_engine_are_rejected() {
        let c = cfg(8, 8, Discipline::Easy)
            .with_engine(SchedEngine::LegacyFreeNode)
            .with_faults(SiteFaults::new(crashy_model(), 1));
        assert!(matches!(
            simulate_site(&fault_jobs(2), &c),
            Err(SchedError::LegacyEngineUnsupported {
                feature: "fault injection"
            })
        ));
    }
}
