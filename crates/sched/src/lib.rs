//! `sim-sched` — a multi-tenant cluster scheduler over the simulator.
//!
//! Turns the one-job-at-a-time instrument into a cluster-scale system: a
//! stream of jobs is scheduled onto a shared node pool per platform with
//!
//! * **a slot-set core** — time is a sorted list of contiguous slots, each
//!   holding the available [`ProcSet`] over the site's hierarchical
//!   resource tree ([`hierarchy::Hierarchy`]: site → rack → node → core);
//!   every scheduling decision is interval intersection and slot
//!   split/merge ([`slot::SlotSet`]). The historical free-node-counting
//!   core survives as [`SchedEngine::LegacyFreeNode`], an equivalence
//!   oracle the tests pin the slot engine against bit-for-bit;
//! * **queue disciplines** — FCFS, EASY backfill and conservative
//!   backfill ([`Discipline`], [`simulate_site`]), with walltime estimates
//!   and the EASY invariant (backfilled jobs never delay the queue head's
//!   reservation);
//! * **calendars and contracts** — advance reservations ([`SchedJob::at`])
//!   and maintenance windows ([`Maintenance`]) pre-split into the slot
//!   set, per-project concurrency quotas ([`QuotaRule`]), job dependency
//!   DAGs and moldable jobs ([`JobShape`]) — slot-set engine only;
//! * **placement policies** — packed, scattered, rack-aware, rack-strict
//!   ([`PlacementPolicy`]) over the platform's switch topology, where
//!   co-located jobs sharing links pay the contention multiplier
//!   ([`sim_net::ContentionParams`] — the same model the MPI engine
//!   applies to a run's fabric when given a background load);
//! * **cloud bursting** — ARRIVE-F-style relocation across sites with
//!   spot preemption, checkpoint/restart requeue costs and price-model
//!   accounting ([`simulate_burst`], [`pricing::PriceModel`]).
//!
//! Per-job attribution (queue wait, contention inflation, preemption loss)
//! feeds the IPM-style [`sim_ipm::SchedReport`] via [`sched_report`].

pub(crate) mod arena;
pub mod burst;
pub mod error;
pub mod hierarchy;
pub mod job;
pub mod pool;
pub mod pricing;
pub mod site;
pub mod slot;
pub mod stream;

pub use burst::{
    simulate_burst, BurstJob, BurstOutcome, BurstPolicy, BurstSite, BurstStats, CheckpointSpec,
    PreemptSpec,
};
pub use error::SchedError;
pub use hierarchy::Hierarchy;
pub use job::{lublin_burst_mix, lublin_mix, JobShape, LublinBurstMix, LublinMix, SchedJob};
pub use pool::{share_links, NodePool, PlacementPolicy};
pub use pricing::PriceModel;
pub use site::{
    simulate_site, Discipline, FaultAction, FaultEvent, FaultStats, JobOutcome, MaintNodes,
    Maintenance, NodeHealth, QuotaRule, RequeuePolicy, SchedEngine, SiteConfig, SiteFaults,
    SiteResult,
};
pub use slot::{ProcSet, SlotSet};
pub use stream::{simulate_site_stream, StreamStats};

use sim_ipm::{SchedEventRow, SchedJobRow, SchedReport};

/// Job class tag for report attribution: reservations, moldable jobs,
/// dependency-gated jobs and project-billed jobs are distinguishable in
/// the IPM-style table.
fn job_kind(j: &SchedJob) -> String {
    if j.start_at.is_some() {
        "resv".to_string()
    } else if !j.shapes.is_empty() {
        "mold".to_string()
    } else if !j.deps.is_empty() {
        "dep".to_string()
    } else if let Some(p) = j.project {
        format!("p{p}")
    } else {
        "batch".to_string()
    }
}

/// Build the IPM-style scheduler report from a single-site result.
pub fn sched_report(site: &str, jobs: &[SchedJob], result: &SiteResult) -> SchedReport {
    let rows = jobs
        .iter()
        .zip(&result.outcomes)
        .map(|(j, o)| SchedJobRow {
            id: j.id,
            name: j.name.clone(),
            kind: job_kind(j),
            nodes: o.nodes,
            wait: o.wait,
            runtime: (o.end - o.start).max(0.0),
            contention_inflation: o.inflation,
            preempt_loss: o.fault_loss_s,
            completed: o.completed,
        })
        .collect();
    let events = result
        .fault_events
        .iter()
        .map(|e| SchedEventRow {
            t: e.t,
            action: e.action.name().to_string(),
            node: e.node,
            job: e.job,
        })
        .collect();
    SchedReport {
        site: site.to_string(),
        rows,
        events,
    }
}

/// Build the IPM-style scheduler report from a multi-site burst result,
/// attributing each job to the site it finally ran on.
pub fn burst_report(sites: &[BurstSite], jobs: &[BurstJob], stats: &BurstStats) -> SchedReport {
    let rows = jobs
        .iter()
        .zip(&stats.jobs)
        .map(|(j, o)| SchedJobRow {
            id: j.id,
            name: format!("{}@{}", j.name, sites[o.site].name),
            kind: if o.site == 0 { "home" } else { "cloud" }.to_string(),
            nodes: j.nodes,
            wait: o.wait,
            runtime: o.runtime + o.inflation,
            contention_inflation: o.inflation,
            preempt_loss: o.preempt_loss,
            completed: o.completed,
        })
        .collect();
    SchedReport {
        site: "multi-site".to_string(),
        rows,
        events: vec![],
    }
}
