//! Jobs as the scheduler sees them, and the seeded synthetic arrival
//! mixes every sweep draws from.

use crate::burst::BurstJob;
use sim_des::DetRng;

/// One candidate shape of a moldable job: the scheduler evaluates each
/// shape against the slot set and commits to the one that finishes
/// earliest (ties: fewer nodes, then declaration order).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobShape {
    pub nodes: usize,
    /// Nominal (uncontended) runtime at this width, seconds.
    pub runtime: f64,
    /// Walltime estimate at this width, seconds.
    pub walltime: f64,
}

/// One job submitted to a single-site scheduler.
#[derive(Debug, Clone)]
pub struct SchedJob {
    pub id: usize,
    pub name: String,
    /// Nodes the job occupies.
    pub nodes: usize,
    /// Submission time, seconds.
    pub submit: f64,
    /// Nominal (uncontended) runtime on this site, seconds.
    pub runtime: f64,
    /// User-supplied walltime estimate, seconds. The scheduler's
    /// reservations are computed from this, never from `runtime`: walltimes
    /// are static upper bounds (the job is killed when it exceeds one), so
    /// reservations cannot move when contention stretches actual runtimes —
    /// which is what makes the EASY invariant provable. Must be >=
    /// `runtime` times the worst-case contention multiplier.
    pub walltime: f64,
    /// Fraction of the nominal runtime spent in inter-node communication,
    /// in `[0, 1]`. This is what link contention acts on.
    pub comm_fraction: f64,
    /// Accounting project for per-project quotas; `None` is unmetered.
    pub project: Option<u32>,
    /// Job ids (indices into the same submission list) that must depart —
    /// complete or be killed — before this job becomes eligible.
    pub deps: Vec<usize>,
    /// Moldable shapes. Empty for a rigid job (the common case); when
    /// non-empty these *replace* the rigid `nodes`/`runtime`/`walltime`.
    pub shapes: Vec<JobShape>,
    /// Advance reservation: the job must start exactly at this time (the
    /// calendar holds the nodes from then on). `None` is a batch job.
    pub start_at: Option<f64>,
}

impl SchedJob {
    /// A job with `walltime` defaulted to a safely padded estimate (3x the
    /// nominal runtime covers the contention model's cap of 2.5).
    pub fn new(id: usize, nodes: usize, submit: f64, runtime: f64, comm_fraction: f64) -> SchedJob {
        SchedJob {
            id,
            name: format!("job{id}"),
            nodes,
            submit,
            runtime,
            walltime: runtime * 3.0,
            comm_fraction,
            project: None,
            deps: Vec::new(),
            shapes: Vec::new(),
            start_at: None,
        }
    }

    /// Bill this job to a project (see [`crate::site::QuotaRule`]).
    pub fn with_project(mut self, project: u32) -> SchedJob {
        self.project = Some(project);
        self
    }

    /// Gate eligibility on the departure of other jobs.
    pub fn with_deps(mut self, deps: &[usize]) -> SchedJob {
        self.deps = deps.to_vec();
        self
    }

    /// Make the job moldable over the given shapes.
    pub fn with_shapes(mut self, shapes: &[JobShape]) -> SchedJob {
        self.shapes = shapes.to_vec();
        self
    }

    /// Turn the job into an advance reservation starting at `t`.
    pub fn at(mut self, t: f64) -> SchedJob {
        self.start_at = Some(t);
        self
    }
}

/// A Lublin-style synthetic mix: power-of-two biased node counts,
/// log-uniform service times, Poisson arrivals scaled so `load` = 1
/// saturates a `pool_nodes`-node pool. Deterministic in `seed`.
///
/// (Lublin & Feitelson's workload model is the standard synthetic stand-in
/// for production batch traces; we keep its qualitative shape — many small
/// short jobs, few wide long ones — without the full hyper-Gamma fit.)
///
/// This materialises the whole trace; [`LublinMix`] is the same sequence
/// as a streaming iterator for traces too long to hold.
pub fn lublin_mix(n_jobs: usize, pool_nodes: usize, load: f64, seed: u64) -> Vec<SchedJob> {
    LublinMix::new(n_jobs, pool_nodes, load, seed).collect()
}

/// Streaming form of [`lublin_mix`]: yields the bit-identical job sequence
/// in O(1) memory, however long the trace.
///
/// The batch constructor needs the mix's mean node-seconds demand *before*
/// the first arrival can be drawn (the Poisson rate is calibrated to it),
/// which is why it materialised the shape pass. The stream instead runs
/// the calibration pass over a second generator seeded identically: the
/// batch version draws all `3 * n_jobs` shape values first and then the
/// arrival values from the same generator, so after the calibration pass
/// consumes exactly the shape draws, `arrival_rng` sits precisely where
/// the batch arrival pass began — and a fresh `shape_rng` replays the
/// shape draws job by job during iteration.
#[derive(Debug, Clone)]
pub struct LublinMix {
    shape_rng: DetRng,
    arrival_rng: DetRng,
    max_pow: u32,
    pool_nodes: usize,
    mean_interarrival: f64,
    t: f64,
    next_id: usize,
    n_jobs: usize,
}

impl LublinMix {
    pub fn new(n_jobs: usize, pool_nodes: usize, load: f64, seed: u64) -> LublinMix {
        assert!(pool_nodes >= 1 && load > 0.0);
        let shape_rng = DetRng::new(seed, 0x0010_B114);
        let mut arrival_rng = DetRng::new(seed, 0x0010_B114);
        // Widest job: a quarter of the pool (power of two), at least 1 node.
        let max_pow = (pool_nodes / 4).max(1).ilog2();
        // Calibration pass: consume the shape draws to find the mean
        // demand the arrival rate is scaled against. Same summation
        // order as the batch pass, so the rate is bit-identical.
        let mut node_secs = 0.0;
        for _ in 0..n_jobs {
            let (nodes, runtime, _) = draw_shape(&mut arrival_rng, max_pow, pool_nodes);
            node_secs += nodes as f64 * runtime;
        }
        let mean_node_secs = node_secs / n_jobs.max(1) as f64;
        LublinMix {
            shape_rng,
            arrival_rng,
            max_pow,
            pool_nodes,
            mean_interarrival: mean_node_secs / (pool_nodes as f64 * load),
            t: 0.0,
            next_id: 0,
            n_jobs,
        }
    }
}

/// One job's shape draws, in the draw order both passes replay.
fn draw_shape(rng: &mut DetRng, max_pow: u32, pool_nodes: usize) -> (usize, f64, f64) {
    // Power-of-two bias: exponent uniform, so each doubling is equally
    // likely and small jobs dominate node-count mass.
    let pow = rng.index(max_pow as usize + 1) as u32;
    let nodes = (1usize << pow).min(pool_nodes);
    // Log-uniform service time over 30 s .. 3000 s.
    let runtime = 30.0 * (100.0_f64).powf(rng.uniform());
    // Wide jobs lean communication-heavy (halo exchanges grow with the
    // process grid); narrow ones compute-bound.
    let cf = (0.05 + 0.5 * rng.uniform() + 0.05 * pow as f64).min(0.85);
    (nodes, runtime, cf)
}

impl Iterator for LublinMix {
    type Item = SchedJob;

    fn next(&mut self) -> Option<SchedJob> {
        if self.next_id >= self.n_jobs {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        let (nodes, runtime, cf) = draw_shape(&mut self.shape_rng, self.max_pow, self.pool_nodes);
        self.t += self.arrival_rng.exponential(self.mean_interarrival);
        let mut job = SchedJob::new(id, nodes, self.t, runtime, cf);
        // Walltime pad: 2.5x (the contention cap) plus user sloppiness —
        // real estimates are notoriously loose.
        job.walltime = runtime * (2.5 + 1.5 * self.arrival_rng.uniform());
        Some(job)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.n_jobs - self.next_id;
        (left, Some(left))
    }
}

impl ExactSizeIterator for LublinMix {}

/// The same seeded Lublin mix lifted to multi-site burst jobs: one
/// runtime per site, where `cloud_slowdowns[s] = (base, per_cf)` stretches
/// the home runtime to `runtime * (base + per_cf * comm_fraction)` on
/// cloud site `s + 1`. Cloud friendliness is the complement of the
/// communication fraction — compute-bound jobs migrate well.
///
/// This is *the* shared constructor behind every contended sweep
/// (`contended_mix` in the driver crate and the burst tests draw from it),
/// so the two can never drift apart on RNG order or coefficients.
pub fn lublin_burst_mix(
    n_jobs: usize,
    pool_nodes: usize,
    load: f64,
    seed: u64,
    cloud_slowdowns: &[(f64, f64)],
) -> Vec<BurstJob> {
    LublinBurstMix::new(n_jobs, pool_nodes, load, seed, cloud_slowdowns).collect()
}

/// Streaming form of [`lublin_burst_mix`]: the [`LublinMix`] source lifted
/// job-by-job to multi-site [`BurstJob`]s. The lift is a pure per-job map,
/// so the stream is bit-identical to the batch vector by construction.
#[derive(Debug, Clone)]
pub struct LublinBurstMix {
    inner: LublinMix,
    cloud_slowdowns: Vec<(f64, f64)>,
}

impl LublinBurstMix {
    pub fn new(
        n_jobs: usize,
        pool_nodes: usize,
        load: f64,
        seed: u64,
        cloud_slowdowns: &[(f64, f64)],
    ) -> LublinBurstMix {
        LublinBurstMix {
            inner: LublinMix::new(n_jobs, pool_nodes, load, seed),
            cloud_slowdowns: cloud_slowdowns.to_vec(),
        }
    }
}

impl Iterator for LublinBurstMix {
    type Item = BurstJob;

    fn next(&mut self) -> Option<BurstJob> {
        let j = self.inner.next()?;
        let cf = j.comm_fraction;
        let mut runtime = vec![j.runtime];
        runtime.extend(
            self.cloud_slowdowns
                .iter()
                .map(|&(base, per_cf)| j.runtime * (base + per_cf * cf)),
        );
        Some(BurstJob {
            id: j.id,
            name: j.name,
            nodes: j.nodes,
            submit: j.submit,
            runtime,
            comm_fraction: cf,
            friendliness: (1.0 - cf).clamp(0.0, 1.0),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for LublinBurstMix {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_well_formed() {
        let a = lublin_mix(100, 32, 1.0, 7);
        let b = lublin_mix(100, 32, 1.0, 7);
        assert_eq!(a.len(), 100);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.submit, y.submit);
            assert_eq!(x.nodes, y.nodes);
            assert_eq!(x.runtime, y.runtime);
        }
        let mut last = 0.0;
        for j in &a {
            assert!(
                j.nodes >= 1 && j.nodes <= 8,
                "quarter-pool cap: {}",
                j.nodes
            );
            assert!(j.nodes.is_power_of_two());
            assert!((30.0..=3000.0).contains(&j.runtime));
            assert!(j.walltime >= 2.5 * j.runtime);
            assert!((0.0..=1.0).contains(&j.comm_fraction));
            assert!(j.submit >= last);
            last = j.submit;
        }
    }

    #[test]
    fn streaming_mix_matches_batch_and_knows_its_length() {
        let mut stream = LublinMix::new(300, 64, 1.1, 17);
        assert_eq!(stream.len(), 300);
        let batch = lublin_mix(300, 64, 1.1, 17);
        for (i, want) in batch.iter().enumerate() {
            let got = stream.next().expect("stream ends with the batch");
            assert_eq!(stream.len(), 300 - i - 1);
            assert_eq!(got.id, want.id);
            assert_eq!(got.nodes, want.nodes);
            assert_eq!(got.submit.to_bits(), want.submit.to_bits());
            assert_eq!(got.runtime.to_bits(), want.runtime.to_bits());
            assert_eq!(got.walltime.to_bits(), want.walltime.to_bits());
            assert_eq!(got.comm_fraction.to_bits(), want.comm_fraction.to_bits());
        }
        assert!(stream.next().is_none());
    }

    #[test]
    fn higher_load_packs_arrivals_tighter() {
        let lo = lublin_mix(200, 32, 0.5, 3);
        let hi = lublin_mix(200, 32, 2.0, 3);
        assert!(hi.last().unwrap().submit < lo.last().unwrap().submit);
    }

    #[test]
    fn burst_mix_tracks_the_site_mix() {
        let base = lublin_mix(50, 16, 1.2, 9);
        let burst = lublin_burst_mix(50, 16, 1.2, 9, &[(1.05, 0.9), (1.10, 1.3)]);
        assert_eq!(burst.len(), base.len());
        for (b, j) in burst.iter().zip(&base) {
            assert_eq!(b.submit, j.submit, "same arrivals, same RNG draw order");
            assert_eq!(b.nodes, j.nodes);
            assert_eq!(b.runtime.len(), 3);
            assert_eq!(b.runtime[0], j.runtime);
            assert_eq!(b.runtime[1], j.runtime * (1.05 + 0.9 * j.comm_fraction));
            assert_eq!(b.runtime[2], j.runtime * (1.10 + 1.3 * j.comm_fraction));
            assert_eq!(b.friendliness, (1.0 - j.comm_fraction).clamp(0.0, 1.0));
        }
    }

    #[test]
    fn streaming_burst_mix_matches_batch() {
        let slow = [(1.05, 0.9), (1.10, 1.3)];
        let batch = lublin_burst_mix(50, 16, 1.2, 9, &slow);
        let mut stream = LublinBurstMix::new(50, 16, 1.2, 9, &slow);
        assert_eq!(stream.len(), batch.len());
        for want in &batch {
            let got = stream.next().expect("stream ends with the batch");
            assert_eq!(got.id, want.id);
            assert_eq!(got.nodes, want.nodes);
            assert_eq!(got.submit.to_bits(), want.submit.to_bits());
            assert_eq!(got.runtime.len(), want.runtime.len());
            for (g, w) in got.runtime.iter().zip(&want.runtime) {
                assert_eq!(g.to_bits(), w.to_bits());
            }
            assert_eq!(got.friendliness.to_bits(), want.friendliness.to_bits());
        }
        assert!(stream.next().is_none());
    }

    #[test]
    fn job_builders_compose() {
        let j = SchedJob::new(3, 4, 10.0, 100.0, 0.2)
            .with_project(1)
            .with_deps(&[0, 1])
            .with_shapes(&[
                JobShape {
                    nodes: 4,
                    runtime: 100.0,
                    walltime: 300.0,
                },
                JobShape {
                    nodes: 8,
                    runtime: 60.0,
                    walltime: 180.0,
                },
            ])
            .at(500.0);
        assert_eq!(j.project, Some(1));
        assert_eq!(j.deps, vec![0, 1]);
        assert_eq!(j.shapes.len(), 2);
        assert_eq!(j.start_at, Some(500.0));
    }
}
