//! Jobs as the scheduler sees them, and a synthetic arrival mix.

use sim_des::DetRng;

/// One job submitted to a single-site scheduler.
#[derive(Debug, Clone)]
pub struct SchedJob {
    pub id: usize,
    pub name: String,
    /// Nodes the job occupies.
    pub nodes: usize,
    /// Submission time, seconds.
    pub submit: f64,
    /// Nominal (uncontended) runtime on this site, seconds.
    pub runtime: f64,
    /// User-supplied walltime estimate, seconds. The scheduler's
    /// reservations are computed from this, never from `runtime`: walltimes
    /// are static upper bounds (the job is killed when it exceeds one), so
    /// reservations cannot move when contention stretches actual runtimes —
    /// which is what makes the EASY invariant provable. Must be >=
    /// `runtime` times the worst-case contention multiplier.
    pub walltime: f64,
    /// Fraction of the nominal runtime spent in inter-node communication,
    /// in `[0, 1]`. This is what link contention acts on.
    pub comm_fraction: f64,
}

impl SchedJob {
    /// A job with `walltime` defaulted to a safely padded estimate (3x the
    /// nominal runtime covers the contention model's cap of 2.5).
    pub fn new(id: usize, nodes: usize, submit: f64, runtime: f64, comm_fraction: f64) -> SchedJob {
        SchedJob {
            id,
            name: format!("job{id}"),
            nodes,
            submit,
            runtime,
            walltime: runtime * 3.0,
            comm_fraction,
        }
    }
}

/// A Lublin-style synthetic mix: power-of-two biased node counts,
/// log-uniform service times, Poisson arrivals scaled so `load` = 1
/// saturates a `pool_nodes`-node pool. Deterministic in `seed`.
///
/// (Lublin & Feitelson's workload model is the standard synthetic stand-in
/// for production batch traces; we keep its qualitative shape — many small
/// short jobs, few wide long ones — without the full hyper-Gamma fit.)
pub fn lublin_mix(n_jobs: usize, pool_nodes: usize, load: f64, seed: u64) -> Vec<SchedJob> {
    assert!(pool_nodes >= 1 && load > 0.0);
    let mut rng = DetRng::new(seed, 0x0010_B114);
    // Widest job: a quarter of the pool (power of two), at least 1 node.
    let max_pow = (pool_nodes / 4).max(1).ilog2();
    // Shape pass: sample sizes and service times first so the arrival rate
    // can be scaled to the mix's actual mean demand.
    let shapes: Vec<(usize, f64, f64)> = (0..n_jobs)
        .map(|_| {
            // Power-of-two bias: exponent uniform, so each doubling is
            // equally likely and small jobs dominate node-count mass.
            let pow = rng.index(max_pow as usize + 1) as u32;
            let nodes = (1usize << pow).min(pool_nodes);
            // Log-uniform service time over 30 s .. 3000 s.
            let runtime = 30.0 * (100.0_f64).powf(rng.uniform());
            // Wide jobs lean communication-heavy (halo exchanges grow with
            // the process grid); narrow ones compute-bound.
            let cf = (0.05 + 0.5 * rng.uniform() + 0.05 * pow as f64).min(0.85);
            (nodes, runtime, cf)
        })
        .collect();
    let mean_node_secs =
        shapes.iter().map(|(n, r, _)| *n as f64 * r).sum::<f64>() / n_jobs.max(1) as f64;
    let mean_interarrival = mean_node_secs / (pool_nodes as f64 * load);

    let mut t = 0.0;
    shapes
        .into_iter()
        .enumerate()
        .map(|(id, (nodes, runtime, cf))| {
            t += rng.exponential(mean_interarrival);
            SchedJob {
                id,
                name: format!("job{id}"),
                nodes,
                submit: t,
                runtime,
                // Walltime pad: 2.5x (the contention cap) plus user
                // sloppiness — real estimates are notoriously loose.
                walltime: runtime * (2.5 + 1.5 * rng.uniform()),
                comm_fraction: cf,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_well_formed() {
        let a = lublin_mix(100, 32, 1.0, 7);
        let b = lublin_mix(100, 32, 1.0, 7);
        assert_eq!(a.len(), 100);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.submit, y.submit);
            assert_eq!(x.nodes, y.nodes);
            assert_eq!(x.runtime, y.runtime);
        }
        let mut last = 0.0;
        for j in &a {
            assert!(
                j.nodes >= 1 && j.nodes <= 8,
                "quarter-pool cap: {}",
                j.nodes
            );
            assert!(j.nodes.is_power_of_two());
            assert!((30.0..=3000.0).contains(&j.runtime));
            assert!(j.walltime >= 2.5 * j.runtime);
            assert!((0.0..=1.0).contains(&j.comm_fraction));
            assert!(j.submit >= last);
            last = j.submit;
        }
    }

    #[test]
    fn higher_load_packs_arrivals_tighter() {
        let lo = lublin_mix(200, 32, 0.5, 3);
        let hi = lublin_mix(200, 32, 2.0, 3);
        assert!(hi.last().unwrap().submit < lo.last().unwrap().submit);
    }
}
