//! Cost models for the three platforms.
//!
//! The paper's conclusion plans to "integrate Amazon EC2 spot-pricing into
//! our local ANUPBS scheduler, to avail of price competitive compute
//! resources". This module supplies the missing piece: per-platform price
//! models (2012-era rates) and cost-to-solution arithmetic, including a
//! simple spot-price discount.

use sim_platform::ClusterSpec;

/// Pricing for one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceModel {
    /// Dollars per node-hour at on-demand rates.
    pub on_demand_per_node_hour: f64,
    /// Spot/opportunistic discount factor in `(0, 1]` (1 = no spot market).
    pub spot_factor: f64,
    /// Fixed per-job overhead hours billed (cloud VMs bill whole hours;
    /// HPC queues don't).
    pub billing_granularity_hours: f64,
}

impl PriceModel {
    /// Amazon cc1.4xlarge, us-east-1, 2012: $1.30/hr on demand; spot
    /// instances historically cleared near ~35% of on-demand.
    pub fn ec2_2012() -> PriceModel {
        PriceModel {
            on_demand_per_node_hour: 1.30,
            spot_factor: 0.35,
            billing_granularity_hours: 1.0,
        }
    }

    /// A private cloud's amortized cost: hardware + power + admin spread
    /// over the fleet, no billing granularity.
    pub fn private_cloud() -> PriceModel {
        PriceModel {
            on_demand_per_node_hour: 0.45,
            spot_factor: 1.0,
            billing_granularity_hours: 0.0,
        }
    }

    /// Supercomputer service-unit charge converted to node-hours (8 cores
    /// per Vayu node at a typical ~$0.10/core-hour academic rate).
    pub fn hpc_service_units() -> PriceModel {
        PriceModel {
            on_demand_per_node_hour: 0.80,
            spot_factor: 1.0,
            billing_granularity_hours: 0.0,
        }
    }

    /// The default model for a named platform preset.
    pub fn for_platform(cluster: &ClusterSpec) -> PriceModel {
        match cluster.name {
            "ec2" => PriceModel::ec2_2012(),
            "dcc" => PriceModel::private_cloud(),
            _ => PriceModel::hpc_service_units(),
        }
    }

    /// Dollars to run `nodes` nodes for `elapsed_secs`, at on-demand rates.
    pub fn cost(&self, nodes: usize, elapsed_secs: f64) -> f64 {
        let hours = elapsed_secs / 3600.0;
        let billed = if self.billing_granularity_hours > 0.0 {
            (hours / self.billing_granularity_hours).ceil() * self.billing_granularity_hours
        } else {
            hours
        };
        billed * nodes as f64 * self.on_demand_per_node_hour
    }

    /// Same, at spot rates.
    pub fn spot_cost(&self, nodes: usize, elapsed_secs: f64) -> f64 {
        self.cost(nodes, elapsed_secs) * self.spot_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_platform::presets;

    #[test]
    fn platform_lookup() {
        assert_eq!(
            PriceModel::for_platform(&presets::ec2()),
            PriceModel::ec2_2012()
        );
        assert_eq!(
            PriceModel::for_platform(&presets::dcc()),
            PriceModel::private_cloud()
        );
        assert_eq!(
            PriceModel::for_platform(&presets::vayu()),
            PriceModel::hpc_service_units()
        );
    }

    #[test]
    fn ec2_bills_whole_hours() {
        let p = PriceModel::ec2_2012();
        // A 10-minute run on 4 nodes bills a full hour each.
        assert!((p.cost(4, 600.0) - 4.0 * 1.30).abs() < 1e-9);
        // 61 minutes bills two hours.
        assert!((p.cost(1, 3660.0) - 2.0 * 1.30).abs() < 1e-9);
    }

    #[test]
    fn hpc_bills_linearly() {
        let p = PriceModel::hpc_service_units();
        assert!((p.cost(2, 1800.0) - 2.0 * 0.5 * 0.80).abs() < 1e-9);
    }

    #[test]
    fn spot_discount_applies() {
        let p = PriceModel::ec2_2012();
        let full = p.cost(4, 7200.0);
        assert!((p.spot_cost(4, 7200.0) - full * 0.35).abs() < 1e-9);
    }

    #[test]
    fn zero_time_zero_cost_on_linear_models() {
        assert_eq!(PriceModel::private_cloud().cost(8, 0.0), 0.0);
        // Granular billing still charges the first hour once started.
        assert!(PriceModel::ec2_2012().cost(1, 1.0) > 1.0);
    }
}
