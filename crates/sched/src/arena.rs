//! ID-indexed job storage for a site scheduler's state.
//!
//! Historically `SiteState` kept half a dozen parallel `Vec`s sized to the
//! whole input trace (`reserved`, `resv`, `project`, `deps`, ...), and every
//! discipline threaded a `&[JobView]` slice alongside — fine for a few
//! thousand jobs, wrong for a million: the resident set scaled with trace
//! length even though only queued + running jobs are ever touched. The
//! arena collapses all of it into one record per *admitted* job. The batch
//! driver admits everything up front (ids == input indices, bit-identical
//! to the old layout); the streaming driver admits jobs as they arrive and
//! retires each record once its outcome is reported, recycling slots
//! through a free list so memory tracks the number of live jobs, not the
//! trace length. [`JobArena::peak_live`] is the flat-memory witness the
//! scaling tests pin.

use crate::site::JobView;
use std::ops::{Index, IndexMut};

/// Everything the scheduler tracks about one admitted job.
#[derive(Debug, Clone)]
pub(crate) struct JobRec {
    pub view: JobView,
    /// Accounting project for per-project quotas; `None` is unmetered.
    pub project: Option<u32>,
    /// Arena ids that must depart (complete or be killed) first.
    pub deps: Vec<usize>,
    /// Departed — what dependents gate on. Outlives the queue/running
    /// membership of the job itself.
    pub departed: bool,
    /// First-quoted reservation (None = never quoted); head-delay oracle.
    pub reserved: Option<f64>,
    /// Current conservative reservation. Persistent: only moves earlier.
    pub resv: Option<f64>,
    /// Crash-kill count: drives the retry budget and backoff position.
    pub kills: u32,
    /// Nominal seconds of completed work destroyed by crash kills.
    pub fault_loss: f64,
}

impl JobRec {
    pub fn new(view: JobView) -> JobRec {
        JobRec {
            view,
            project: None,
            deps: Vec::new(),
            departed: false,
            reserved: None,
            resv: None,
            kills: 0,
            fault_loss: 0.0,
        }
    }
}

/// Slot-recycling arena of [`JobRec`]s.
#[derive(Debug, Default)]
pub(crate) struct JobArena {
    recs: Vec<Option<JobRec>>,
    free: Vec<usize>,
    live: usize,
    peak_live: usize,
}

impl JobArena {
    /// Admit a job and return its id. Freed slots are reused before the
    /// arena grows, so batch admission (no retirement) yields dense ids
    /// `0..n` in input order.
    pub fn insert(&mut self, rec: JobRec) -> usize {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        match self.free.pop() {
            Some(id) => {
                self.recs[id] = Some(rec);
                id
            }
            None => {
                self.recs.push(Some(rec));
                self.recs.len() - 1
            }
        }
    }

    /// Drop a departed job's record and recycle its slot.
    pub fn retire(&mut self, id: usize) {
        debug_assert!(self.recs[id].is_some(), "double retire of job {id}");
        self.recs[id] = None;
        self.free.push(id);
        self.live -= 1;
    }

    /// Live records in id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &JobRec)> {
        self.recs
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
    }

    /// Jobs currently admitted.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of simultaneously live jobs: with retirement on,
    /// this stays near the queue + running peak however long the trace is.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }
}

impl Index<usize> for JobArena {
    type Output = JobRec;
    fn index(&self, id: usize) -> &JobRec {
        self.recs[id].as_ref().expect("live job id")
    }
}

impl IndexMut<usize> for JobArena {
    fn index_mut(&mut self, id: usize) -> &mut JobRec {
        self.recs[id].as_mut().expect("live job id")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> JobView {
        JobView {
            nodes: 1,
            runtime: 10.0,
            walltime: 30.0,
            comm_fraction: 0.0,
            submit: 0.0,
        }
    }

    #[test]
    fn slots_recycle_and_peak_tracks_live() {
        let mut a = JobArena::default();
        let i0 = a.insert(JobRec::new(view()));
        let i1 = a.insert(JobRec::new(view()));
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(a.peak_live(), 2);
        a.retire(i0);
        assert_eq!(a.live(), 1);
        let i2 = a.insert(JobRec::new(view()));
        assert_eq!(i2, i0, "freed slot reused before growth");
        assert_eq!(a.peak_live(), 2, "peak is a high-water mark");
        assert_eq!(a.iter().count(), 2);
    }
}
