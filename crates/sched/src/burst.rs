//! Multi-site scheduling with ARRIVE-F-style cloud bursting.
//!
//! Site 0 is the home HPC partition; the rest are burst targets. A job is
//! relocated at submission time only (ARRIVE-F relocates at schedule time):
//! if the home partition can't start it right away, it is cloud-friendly
//! enough, and a cloud site has idle room within budget, it goes to the
//! cloud site with the best predicted runtime. Each site then runs its own
//! queue discipline, placement policy and contention model from
//! [`crate::site`].
//!
//! Cloud sites are revocable: a started job draws a spot time-to-preempt;
//! if it fires first the run is lost (checkpointing can salvage completed
//! intervals) and the job requeues at the back of the home partition —
//! the conservative recovery, since the home site can always run it. The
//! wait clock keeps running from the original submission.

use crate::arena::JobRec;
use crate::error::SchedError;
use crate::pool::{NodePool, PlacementPolicy};
use crate::pricing::PriceModel;
use crate::site::{Departure, Discipline, JobView, SchedEngine, SiteState};
use sim_des::{DetRng, EventQueue, SimTime};
use sim_net::ContentionParams;

/// RNG stream tag for spot-preemption draws. Matches the historical
/// single-queue implementation so preemption realisations are preserved
/// across the port.
const PREEMPT_STREAM: u64 = 0x9EE2_0000;

/// One schedulable site.
#[derive(Debug, Clone)]
pub struct BurstSite {
    pub name: &'static str,
    pub nodes: usize,
    /// Nodes per rack (= leaf switch radix); `nodes` for one big switch.
    pub rack_size: usize,
    pub placement: PlacementPolicy,
    pub discipline: Discipline,
    pub contention: ContentionParams,
    /// Which scheduling core runs this site's queue (see
    /// [`crate::site::SchedEngine`]). Both give identical schedules on the
    /// capabilities they share; the legacy engine is kept as an oracle.
    pub engine: SchedEngine,
    pub price: PriceModel,
    /// Walltime estimate as a multiple of nominal runtime. Must cover the
    /// contention cap when `contention` is active (jobs are killed at
    /// their walltime).
    pub walltime_factor: f64,
    /// Spot revocations per node-hour; 0 = non-revocable.
    pub preempt_per_node_hour: f64,
}

impl BurstSite {
    /// A plain FCFS, contention-free, non-revocable site — the historical
    /// single-queue model's site semantics.
    pub fn plain(name: &'static str, nodes: usize, price: PriceModel) -> BurstSite {
        BurstSite {
            name,
            nodes,
            rack_size: nodes.max(1),
            placement: PlacementPolicy::Packed,
            discipline: Discipline::Fcfs,
            contention: ContentionParams::NONE,
            engine: SchedEngine::SlotSet,
            price,
            walltime_factor: 1.0,
            preempt_per_node_hour: 0.0,
        }
    }
}

/// One job in a multi-site mix.
#[derive(Debug, Clone)]
pub struct BurstJob {
    pub id: usize,
    pub name: String,
    pub nodes: usize,
    pub submit: f64,
    /// Predicted nominal runtime on each site, seconds.
    pub runtime: Vec<f64>,
    pub comm_fraction: f64,
    /// Profiled cloud-friendliness in `[0, 1]`.
    pub friendliness: f64,
}

/// Where bursting is allowed and on what terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BurstPolicy {
    /// All jobs queue on the home partition.
    HpcOnly,
    /// Burst jobs with friendliness >= `threshold` when home is busy.
    CloudBurst { threshold: f64 },
    /// Burst only within a per-job spot budget.
    CostAwareBurst { threshold: f64, max_dollars: f64 },
}

/// Spot preemption on the cloud sites' revocable capacity.
#[derive(Debug, Clone, Copy)]
pub struct PreemptSpec {
    pub seed: u64,
}

/// Periodic checkpointing: a preempted job retains its last completed
/// `interval`-sized chunk of work and pays `restore_cost` to resume on the
/// home partition. Without it a preemption loses the whole run.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointSpec {
    pub interval: f64,
    pub restore_cost: f64,
}

impl CheckpointSpec {
    /// Nominal seconds of work retained from `done` completed seconds:
    /// the last fully completed `interval`-sized chunk. The single credit
    /// formula shared by spot-preemption requeues and crash requeues.
    pub fn retained(&self, done: f64) -> f64 {
        if self.interval > 0.0 {
            (done / self.interval).floor() * self.interval
        } else {
            0.0
        }
    }
}

/// Final outcome of one job.
#[derive(Debug, Clone)]
pub struct BurstOutcome {
    pub id: usize,
    /// Site index the job finally completed on.
    pub site: usize,
    pub wait: f64,
    /// Nominal runtime billed on the final site.
    pub runtime: f64,
    /// Actual minus nominal elapsed on the final run (contention).
    pub inflation: f64,
    /// Nominal seconds of completed work destroyed by preemptions.
    pub preempt_loss: f64,
    pub cost: f64,
    pub completed: bool,
}

/// Aggregate metrics of a multi-site simulation.
#[derive(Debug, Clone)]
pub struct BurstStats {
    pub jobs: Vec<BurstOutcome>,
    pub mean_wait: f64,
    pub mean_turnaround: f64,
    pub burst_fraction: f64,
    pub preemptions: usize,
    pub total_cost: f64,
    /// Summed over sites; must stay 0 for EASY/conservative.
    pub head_delay_violations: usize,
}

/// Simulate a job stream over `sites` under `policy`. Deterministic.
pub fn simulate_burst(
    jobs: &[BurstJob],
    sites: &[BurstSite],
    policy: BurstPolicy,
    preempt: Option<PreemptSpec>,
    checkpoint: Option<CheckpointSpec>,
) -> Result<BurstStats, SchedError> {
    assert!(!sites.is_empty(), "need at least the home site");
    for j in jobs {
        assert_eq!(j.runtime.len(), sites.len(), "job {} runtimes", j.id);
    }
    #[derive(Clone, Copy)]
    enum Ev {
        Submit(usize),
        Wake { site: usize, gen: u64 },
    }
    // Each site's arena holds a per-site view of every job (site-specific
    // runtimes/walltimes); requeues after a preemption rewrite the
    // home-site view.
    let mut states: Vec<SiteState> = sites
        .iter()
        .enumerate()
        .map(|(s, site)| {
            let mut st = SiteState::new(
                NodePool::new(site.nodes, site.rack_size),
                site.placement,
                site.discipline,
                site.contention,
                site.engine,
            );
            for j in jobs {
                st.jobs.insert(JobRec::new(JobView {
                    nodes: j.nodes,
                    runtime: j.runtime[s],
                    walltime: j.runtime[s] * site.walltime_factor,
                    comm_fraction: j.comm_fraction,
                    submit: j.submit,
                }));
            }
            st
        })
        .collect();
    let mut q: EventQueue<Ev> = EventQueue::new();
    for (i, j) in jobs.iter().enumerate() {
        q.push(SimTime::from_secs_f64(j.submit), Ev::Submit(i));
    }
    let mut out: Vec<Option<BurstOutcome>> = vec![None; jobs.len()];
    let mut preempt_loss = vec![0.0f64; jobs.len()];
    let mut bursts = 0usize;
    let mut preemptions = 0usize;

    // One scheduling pass on a site at `now`: departures, preemptions,
    // starts (arming spot timers), rate recompute, wake rescheduling.
    // Returns jobs to requeue on the home site.
    let step = |site: usize,
                now: f64,
                states: &mut Vec<SiteState>,
                out: &mut Vec<Option<BurstOutcome>>,
                preempt_loss: &mut Vec<f64>,
                preemptions: &mut usize,
                q: &mut EventQueue<Ev>|
     -> Result<Vec<usize>, SchedError> {
        // Spot revocations first: a preempted run never completes
        // (matching the historical model, where a drawn preemption
        // replaced the completion event outright).
        let mut requeue = Vec::new();
        for (job, _start, remaining) in states[site].take_preempted(now) {
            *preemptions += 1;
            let nominal = states[site].jobs[job].view.runtime;
            let done = (nominal - remaining).max(0.0);
            let retained = checkpoint.map_or(0.0, |ck| ck.retained(done));
            preempt_loss[job] += done - retained;
            // Requeue on the home partition for the unfinished fraction
            // (plus the restore cost, if any work was salvaged).
            let frac_left = if nominal > 0.0 {
                1.0 - retained / nominal
            } else {
                0.0
            };
            let home_nominal = jobs[job].runtime[0] * frac_left
                + if retained > 0.0 {
                    checkpoint.map_or(0.0, |ck| ck.restore_cost)
                } else {
                    0.0
                };
            states[0].jobs[job].view.runtime = home_nominal;
            states[0].jobs[job].view.walltime = home_nominal * sites[0].walltime_factor;
            out[job] = None;
            requeue.push(job);
        }
        let st = &mut states[site];
        for dep in st.departures(now) {
            let (job, start, end, completed) = match dep {
                Departure::Completed {
                    job, start, end, ..
                } => (job, start, end, true),
                Departure::Killed {
                    job, start, end, ..
                } => (job, start, end, false),
            };
            let nominal = st.jobs[job].view.runtime;
            let elapsed = end - start;
            out[job] = Some(BurstOutcome {
                id: jobs[job].id,
                site,
                wait: (start - jobs[job].submit).max(0.0),
                runtime: nominal,
                inflation: (elapsed - nominal).max(0.0),
                preempt_loss: preempt_loss[job],
                cost: sites[site].price.spot_cost(jobs[job].nodes, elapsed),
                completed,
            });
        }
        st.started.clear();
        st.try_start(now)?;
        let started = std::mem::take(&mut st.started);
        for &(job, start, _wait) in &started {
            // Revocable capacity: draw the instance's time-to-preempt; if
            // it fires before the nominal runtime, the run dies mid-flight.
            let rate = sites[site].preempt_per_node_hour;
            if site != 0 && rate > 0.0 {
                if let Some(p) = preempt {
                    let mut rng = DetRng::new(p.seed, PREEMPT_STREAM ^ job as u64);
                    let mean = 3600.0 / (rate * jobs[job].nodes as f64);
                    let t = rng.exponential(mean);
                    if t < st.jobs[job].view.runtime {
                        st.set_preempt_at(job, start + t);
                    }
                }
            }
        }
        st.recompute_rates();
        st.wake_gen += 1;
        if let Some(te) = st.next_event() {
            q.push(
                SimTime::from_secs_f64(te.max(now)),
                Ev::Wake {
                    site,
                    gen: st.wake_gen,
                },
            );
        }
        Ok(requeue)
    };

    while let Some((t, ev)) = q.pop() {
        let now = t.as_secs_f64();
        let site = match ev {
            Ev::Submit(i) => {
                let j = &jobs[i];
                let mut site = 0usize;
                let burst_params = match policy {
                    BurstPolicy::HpcOnly => None,
                    BurstPolicy::CloudBurst { threshold } => Some((threshold, f64::INFINITY)),
                    BurstPolicy::CostAwareBurst {
                        threshold,
                        max_dollars,
                    } => Some((threshold, max_dollars)),
                };
                if let Some((threshold, max_dollars)) = burst_params {
                    // Burst only when the home partition can't start the
                    // job right now and an idle cloud site can.
                    let home_busy =
                        states[0].pool.free_count() < j.nodes || !states[0].queue.is_empty();
                    if home_busy && j.friendliness >= threshold {
                        let mut best: Option<usize> = None;
                        for cand in 1..sites.len() {
                            if states[cand].pool.free_count() >= j.nodes
                                && states[cand].queue.is_empty()
                            {
                                let cost = sites[cand].price.spot_cost(j.nodes, j.runtime[cand]);
                                if cost > max_dollars {
                                    continue;
                                }
                                let better =
                                    best.map(|b| j.runtime[cand] < j.runtime[b]).unwrap_or(true);
                                if better {
                                    best = Some(cand);
                                }
                            }
                        }
                        if let Some(b) = best {
                            site = b;
                            bursts += 1;
                        }
                    }
                }
                states[site].advance(now);
                states[site].queue.push_back(i);
                site
            }
            Ev::Wake { site, gen } => {
                if gen != states[site].wake_gen {
                    continue;
                }
                states[site].advance(now);
                site
            }
        };
        let requeue = step(
            site,
            now,
            &mut states,
            &mut out,
            &mut preempt_loss,
            &mut preemptions,
            &mut q,
        )?;
        if !requeue.is_empty() {
            states[0].advance(now);
            for job in requeue {
                states[0].queue.push_back(job);
            }
            let more = step(
                0,
                now,
                &mut states,
                &mut out,
                &mut preempt_loss,
                &mut preemptions,
                &mut q,
            )?;
            debug_assert!(more.is_empty(), "home partition is non-revocable");
        }
    }

    let jobs_out: Vec<BurstOutcome> = out
        .into_iter()
        .map(|o| o.expect("every job completes"))
        .collect();
    let n = jobs_out.len().max(1) as f64;
    Ok(BurstStats {
        mean_wait: jobs_out.iter().map(|s| s.wait).sum::<f64>() / n,
        mean_turnaround: jobs_out.iter().map(|s| s.wait + s.runtime).sum::<f64>() / n,
        burst_fraction: bursts as f64 / n,
        preemptions,
        total_cost: jobs_out.iter().map(|s| s.cost).sum(),
        head_delay_violations: states.iter().map(|s| s.head_delay_violations).sum(),
        jobs: jobs_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites() -> Vec<BurstSite> {
        vec![
            BurstSite::plain("hpc", 8, PriceModel::hpc_service_units()),
            BurstSite::plain("dcc", 4, PriceModel::private_cloud()),
            BurstSite {
                preempt_per_node_hour: 0.0,
                ..BurstSite::plain("ec2", 2, PriceModel::ec2_2012())
            },
        ]
    }

    fn quick_jobs() -> Vec<BurstJob> {
        (0..8)
            .map(|i| BurstJob {
                id: i,
                name: format!("j{i}"),
                nodes: 4,
                submit: i as f64,
                runtime: vec![100.0, 140.0, 160.0],
                comm_fraction: 0.0,
                friendliness: if i % 2 == 0 { 0.9 } else { 0.1 },
            })
            .collect()
    }

    #[test]
    fn bursting_cuts_waits_and_respects_threshold() {
        let hpc =
            simulate_burst(&quick_jobs(), &sites(), BurstPolicy::HpcOnly, None, None).unwrap();
        let burst = simulate_burst(
            &quick_jobs(),
            &sites(),
            BurstPolicy::CloudBurst { threshold: 0.5 },
            None,
            None,
        )
        .unwrap();
        assert!(burst.mean_wait < hpc.mean_wait);
        assert!(burst.burst_fraction > 0.0);
        for s in &burst.jobs {
            if s.id % 2 == 1 {
                assert_eq!(s.site, 0, "{s:?}");
            }
        }
    }

    #[test]
    fn checkpoint_salvages_preempted_work() {
        let mut sites = sites();
        // Hot revocation on both clouds: every cloud run dies.
        sites[1].preempt_per_node_hour = 1e6;
        sites[2].preempt_per_node_hour = 1e6;
        let policy = BurstPolicy::CloudBurst { threshold: 0.5 };
        let p = Some(PreemptSpec { seed: 11 });
        let lost = simulate_burst(&quick_jobs(), &sites, policy, p, None).unwrap();
        assert!(lost.preemptions > 0);
        // With an absurdly hostile rate the kill lands in the first
        // instants: nothing was completed, so checkpointing salvages
        // nothing and requeued runtimes match the no-checkpoint case.
        let ck = simulate_burst(
            &quick_jobs(),
            &sites,
            policy,
            p,
            Some(CheckpointSpec {
                interval: 10.0,
                restore_cost: 5.0,
            }),
        )
        .unwrap();
        assert_eq!(lost.preemptions, ck.preemptions);
        for (a, b) in lost.jobs.iter().zip(&ck.jobs) {
            assert!(b.runtime <= a.runtime + 1e-9);
        }
    }

    #[test]
    fn cloud_runs_are_billed() {
        let burst = simulate_burst(
            &quick_jobs(),
            &sites(),
            BurstPolicy::CloudBurst { threshold: 0.5 },
            None,
            None,
        )
        .unwrap();
        let cloud_cost: f64 = burst
            .jobs
            .iter()
            .filter(|s| s.site != 0)
            .map(|s| s.cost)
            .sum();
        assert!(cloud_cost > 0.0);
        assert!(burst.total_cost >= cloud_cost);
    }

    #[test]
    fn engines_agree_on_a_seeded_burst_mix() {
        // The slot-set and legacy cores must burst identically: same
        // relocations, same preemption realisations, same outcomes.
        let jobs = crate::job::lublin_burst_mix(60, 8, 1.3, 21, &[(1.05, 0.9), (1.10, 1.3)]);
        let policy = BurstPolicy::CloudBurst { threshold: 0.5 };
        let p = Some(PreemptSpec { seed: 5 });
        let mut spot = sites();
        spot[2].preempt_per_node_hour = 2.0;
        let slot = simulate_burst(&jobs, &spot, policy, p, None).unwrap();
        let mut legacy_sites = spot.clone();
        for s in &mut legacy_sites {
            s.engine = SchedEngine::LegacyFreeNode;
        }
        let legacy = simulate_burst(&jobs, &legacy_sites, policy, p, None).unwrap();
        assert_eq!(slot.preemptions, legacy.preemptions);
        assert_eq!(slot.burst_fraction, legacy.burst_fraction);
        for (a, b) in slot.jobs.iter().zip(&legacy.jobs) {
            assert_eq!(a.site, b.site, "job {}", a.id);
            assert_eq!(a.wait, b.wait, "job {}", a.id);
            assert_eq!(a.runtime, b.runtime, "job {}", a.id);
        }
    }
}
