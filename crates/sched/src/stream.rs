//! Streaming single-site driver: a million-job trace in flat memory.
//!
//! [`super::simulate_site`] admits the whole input slice up front and
//! materialises a `Vec` of outcomes — O(trace) resident memory twice
//! over, before the scheduler has placed a single job. This driver takes
//! the jobs as an *iterator* (pair it with [`crate::job::LublinMix`] and
//! the trace never exists in memory at all), injects each arrival into
//! the event loop when simulation time reaches it, reports outcomes
//! through a callback as jobs depart, and retires each job's arena record
//! once its outcome is final. Memory tracks the number of *live* jobs —
//! queued, running, or awaiting a crash requeue — not the trace length;
//! [`StreamStats::peak_live_jobs`] is the witness.
//!
//! ## Equivalence to the batch driver
//!
//! For the same job sequence the per-job outcomes are bit-identical to
//! `simulate_site` (the tests zip the two). The one delicate point is
//! event order at equal timestamps: the batch driver's queue buckets are
//! FIFO, and it pushes all static calendar/fault events, then every
//! submit, before the first dynamic wake exists — so a tied bucket drains
//! as `[statics][submits][dynamics]`. The stream keeps a count of pending
//! static events per instant and injects an arrival tied with the queue
//! head exactly when no static remains at that instant: before any
//! same-time dynamic event, after every same-time static.
//!
//! ## What the stream rejects
//!
//! Dependencies, moldable shapes and advance reservations all reference
//! jobs or instants that a forward-only stream cannot resolve (a dep on a
//! job id not yet seen, a calendar pin behind the arrival front); they
//! stay batch-only and are rejected per job, with typed errors, as are
//! arrivals that go back in time.

use crate::error::SchedError;
use crate::job::SchedJob;
use crate::site::{
    validate, Departure, FaultAction, FaultEvent, FaultStats, JobOutcome, RequeuePolicy,
    SchedEngine, SiteConfig, SiteState,
};
use sim_des::{EventQueue, SimDur, SimTime};
use sim_faults::{FaultKind, FaultSchedule};
use std::collections::HashMap;

/// Aggregates of one streamed run. Per-job detail goes through the
/// `on_outcome` callback (in departure order — the stream holds no
/// per-trace storage to reorder them); what remains here is O(1).
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    /// Jobs consumed from the source.
    pub n_jobs: usize,
    /// Jobs that ran to completion (no walltime kill, no exhausted
    /// crash-retry budget).
    pub completed: usize,
    /// Last departure minus first arrival; 0 for an empty trace.
    pub makespan: f64,
    /// Mean queue wait, accumulated in departure order (the batch driver
    /// sums in submission order, so the two may differ in the last ulps;
    /// per-job waits are bit-identical).
    pub mean_wait: f64,
    /// Total seconds lost to link contention.
    pub total_inflation: f64,
    /// Starts that broke a quoted reservation.
    pub head_delay_violations: usize,
    /// High-water mark of simultaneously admitted jobs (queued + running +
    /// awaiting requeue) — the flat-memory witness: for a stable queue
    /// this stays put while the trace grows without bound.
    pub peak_live_jobs: usize,
    /// Fault-pipeline counters (all zero without a fault feed).
    pub fault_stats: FaultStats,
}

enum Ev {
    /// A static calendar instant (maintenance end, quota window end,
    /// fault-window begin/end): always valid, just re-runs the scheduler.
    Tick,
    Wake(u64),
    /// Unplanned `NodeCrash` window `k` of the pre-generated plan begins.
    Crash(usize),
    /// Fail-slow `NicDegrade` window `k` begins: drain, don't kill.
    Degrade(usize),
    /// `(job, node)`: a killed job's backoff delay has elapsed.
    Requeue(usize, usize),
}

/// Per-arrival validation: the batch checks that apply to one job in
/// isolation, plus the stream's own restrictions.
fn validate_job(
    n: usize,
    j: &SchedJob,
    cfg: &SiteConfig,
    last_submit: f64,
) -> Result<(), SchedError> {
    if !j.deps.is_empty() || !j.shapes.is_empty() || j.start_at.is_some() {
        return Err(SchedError::InvalidJob {
            job: n,
            reason: "streaming runs take rigid batch jobs only (no deps, shapes, or reservations)"
                .to_string(),
        });
    }
    // One-element batch validation covers field sanity, pool width, the
    // rack-strict ceiling and windowless quota ceilings; the job index in
    // its errors is 0, so rewrite it to the stream position.
    validate(std::slice::from_ref(j), cfg).map_err(|e| match e {
        SchedError::InvalidJob { reason, .. } => SchedError::InvalidJob { job: n, reason },
        SchedError::InsufficientNodes { need, limit, .. } => SchedError::InsufficientNodes {
            job: n,
            need,
            limit,
        },
        other => other,
    })?;
    if j.submit < last_submit {
        return Err(SchedError::InvalidJob {
            job: n,
            reason: format!(
                "stream arrivals must be non-decreasing ({} after {last_submit})",
                j.submit
            ),
        });
    }
    Ok(())
}

/// Run a stream of jobs (non-decreasing submit times) through one site's
/// scheduler, invoking `on_outcome` for each job as its outcome becomes
/// final. Deterministic; per-job outcomes are bit-identical to
/// [`super::simulate_site`] on the same sequence.
pub fn simulate_site_stream<I, F>(
    jobs: I,
    cfg: &SiteConfig,
    mut on_outcome: F,
) -> Result<StreamStats, SchedError>
where
    I: IntoIterator<Item = SchedJob>,
    F: FnMut(&JobOutcome),
{
    validate(&[], cfg)?;
    let mut st = SiteState::new(
        cfg.pool.clone(),
        cfg.placement,
        cfg.discipline,
        cfg.contention,
        cfg.engine,
    );
    st.set_quotas(&cfg.quotas);
    st.apply_calendar(&cfg.calendar);
    let mut q: EventQueue<Ev> = EventQueue::new();
    // Pending static events per instant: the tie-break ledger (see the
    // module docs). Every push below pairs with a count.
    let mut statics: HashMap<SimTime, usize> = HashMap::new();
    let mut push_static = |q: &mut EventQueue<Ev>, t: f64, ev: Ev| {
        let at = SimTime::from_secs_f64(t);
        q.push(at, ev);
        *statics.entry(at).or_insert(0) += 1;
    };
    if cfg.engine == SchedEngine::SlotSet {
        for m in &cfg.calendar {
            push_static(&mut q, m.end, Ev::Tick);
        }
        for rule in &cfg.quotas {
            if let Some((_, e)) = rule.window {
                push_static(&mut q, e, Ev::Tick);
            }
        }
    }
    let mut crashes: Vec<(f64, f64, usize)> = Vec::new();
    let mut degrades: Vec<(f64, f64, usize)> = Vec::new();
    let mut requeue = RequeuePolicy::default();
    if let Some(f) = cfg.faults.as_ref().filter(|f| !f.model.is_null()) {
        st.attach_faults();
        requeue = f.requeue;
        let plan = FaultSchedule::generate(
            &f.model,
            cfg.pool.nodes(),
            SimDur::from_secs_f64(f.horizon_secs),
            f.seed,
        );
        for w in plan.windows() {
            let (start, end) = (w.start.as_secs_f64(), w.end.as_secs_f64());
            match w.kind {
                FaultKind::NodeCrash => crashes.push((start, end.max(start + f.mttr_secs), w.node)),
                FaultKind::NicDegrade { .. } => degrades.push((start, end, w.node)),
                _ => {}
            }
        }
        for (k, &(start, repair_end, _)) in crashes.iter().enumerate() {
            push_static(&mut q, start, Ev::Crash(k));
            push_static(&mut q, repair_end, Ev::Tick);
        }
        for (k, &(start, end, _)) in degrades.iter().enumerate() {
            push_static(&mut q, start, Ev::Degrade(k));
            push_static(&mut q, end, Ev::Tick);
        }
    }

    let mut source = jobs.into_iter();
    let mut stats = StreamStats::default();
    let mut last_submit = 0.0_f64;
    let mut first_submit = f64::INFINITY;
    let mut last_end = 0.0_f64;
    let mut wait_sum = 0.0_f64;
    // Arena ids are recycled; the input's own id rides alongside for the
    // outcome rows. Sized to peak-live, not the trace.
    let mut input_id: Vec<usize> = Vec::new();
    let fetch = |source: &mut I::IntoIter,
                 last_submit: &mut f64,
                 n: usize|
     -> Result<Option<(SimTime, SchedJob)>, SchedError> {
        match source.next() {
            Some(j) => {
                validate_job(n, &j, cfg, *last_submit)?;
                *last_submit = j.submit;
                Ok(Some((SimTime::from_secs_f64(j.submit), j)))
            }
            None => Ok(None),
        }
    };
    let mut next_arrival = fetch(&mut source, &mut last_submit, stats.n_jobs)?;

    loop {
        // Arrival-vs-queue tie-break: see the module docs.
        let inject = match (&next_arrival, q.peek_time()) {
            (Some((at, _)), Some(t)) => {
                *at < t || (*at == t && statics.get(&t).copied().unwrap_or(0) == 0)
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let now;
        if inject {
            let (at, j) = next_arrival.take().expect("checked above");
            now = at.as_secs_f64();
            st.advance(now);
            first_submit = first_submit.min(j.submit);
            let id = st.admit(&j);
            if id == input_id.len() {
                input_id.push(j.id);
            } else {
                input_id[id] = j.id;
            }
            st.submit(id);
            stats.n_jobs += 1;
            next_arrival = fetch(&mut source, &mut last_submit, stats.n_jobs)?;
        } else {
            let (t, ev) = q.pop().expect("checked above");
            now = t.as_secs_f64();
            match ev {
                Ev::Tick | Ev::Crash(_) | Ev::Degrade(_) => {
                    *statics.get_mut(&t).expect("static was counted") -= 1;
                }
                _ => {}
            }
            match ev {
                Ev::Tick => st.advance(now),
                Ev::Wake(gen) => {
                    if gen != st.wake_gen {
                        continue;
                    }
                    st.advance(now);
                }
                Ev::Crash(k) => {
                    st.advance(now);
                    let (_, repair_end, node) = crashes[k];
                    for (job, start, remaining, nodes) in st.crash_node(now, repair_end, node) {
                        st.fault_stats.kills += 1;
                        st.fault_events.push(FaultEvent {
                            t: now,
                            action: FaultAction::Kill,
                            node,
                            job: Some(job),
                        });
                        let v = st.jobs[job].view;
                        let done = (v.runtime - remaining).max(0.0);
                        let retained = requeue.checkpoint.map_or(0.0, |ck| ck.retained(done));
                        let lost = (done - retained).max(0.0);
                        st.jobs[job].fault_loss += lost;
                        st.fault_stats.work_lost_s += lost;
                        st.fault_stats.work_salvaged_s += retained;
                        st.jobs[job].kills += 1;
                        let attempt = st.jobs[job].kills;
                        if attempt > requeue.retry.max_retries {
                            // Retry budget exhausted: fails for good.
                            let o = JobOutcome {
                                id: input_id[job],
                                start,
                                end: now,
                                wait: (start - v.submit).max(0.0),
                                inflation: ((now - start) - v.runtime).max(0.0),
                                completed: false,
                                nodes,
                                requeues: attempt,
                                fault_loss_s: st.jobs[job].fault_loss,
                            };
                            last_end = last_end.max(o.end);
                            wait_sum += o.wait;
                            stats.total_inflation += o.inflation;
                            on_outcome(&o);
                            st.jobs.retire(job);
                        } else {
                            if retained > 0.0 {
                                // Checkpoint credit: the rerun owes only
                                // the un-checkpointed remainder plus the
                                // restore cost.
                                let restore = requeue.checkpoint.map_or(0.0, |ck| ck.restore_cost);
                                st.jobs[job].view.runtime =
                                    (v.runtime - retained + restore).max(crate::slot::EPS);
                            }
                            let delay = requeue.retry.delay_before(attempt);
                            q.push(SimTime::from_secs_f64(now + delay), Ev::Requeue(job, node));
                        }
                    }
                }
                Ev::Degrade(k) => {
                    st.advance(now);
                    let (_, end, node) = degrades[k];
                    st.degrade_node(now, end, node);
                }
                Ev::Requeue(job, node) => {
                    st.advance(now);
                    st.fault_stats.requeues += 1;
                    st.fault_events.push(FaultEvent {
                        t: now,
                        action: FaultAction::Requeue,
                        node,
                        job: Some(job),
                    });
                    st.queue.push_back(job);
                }
            }
        }
        for dep in st.departures(now) {
            let (job, start, end, nodes, completed) = match dep {
                Departure::Completed {
                    job,
                    start,
                    end,
                    nodes,
                } => (job, start, end, nodes, true),
                Departure::Killed {
                    job,
                    start,
                    end,
                    nodes,
                } => (job, start, end, nodes, false),
            };
            let o = JobOutcome {
                id: input_id[job],
                start,
                end,
                wait: (start - st.jobs[job].view.submit).max(0.0),
                inflation: ((end - start) - st.jobs[job].view.runtime).max(0.0),
                completed,
                nodes,
                requeues: st.jobs[job].kills,
                fault_loss_s: st.jobs[job].fault_loss,
            };
            last_end = last_end.max(o.end);
            wait_sum += o.wait;
            stats.total_inflation += o.inflation;
            if completed {
                stats.completed += 1;
            }
            on_outcome(&o);
            st.jobs.retire(job);
        }
        st.heal(now);
        st.try_start(now)?;
        st.started.clear();
        st.recompute_rates();
        st.wake_gen += 1;
        if let Some(te) = st.next_event() {
            q.push(SimTime::from_secs_f64(te.max(now)), Ev::Wake(st.wake_gen));
        }
    }
    stats.makespan = if stats.n_jobs == 0 {
        0.0
    } else {
        last_end - first_submit
    };
    stats.mean_wait = wait_sum / stats.n_jobs.max(1) as f64;
    stats.head_delay_violations = st.head_delay_violations;
    stats.peak_live_jobs = st.jobs.peak_live();
    stats.fault_stats = st.fault_stats;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{lublin_mix, JobShape};
    use crate::pool::{NodePool, PlacementPolicy};
    use crate::site::{simulate_site, Discipline, Maintenance, QuotaRule, SiteFaults};
    use sim_net::ContentionParams;

    fn cfg(nodes: usize, rack: usize, d: Discipline) -> SiteConfig {
        SiteConfig::new(
            NodePool::new(nodes, rack),
            PlacementPolicy::Packed,
            d,
            ContentionParams::NONE,
        )
    }

    /// Stream and batch must agree bit-for-bit, job by job.
    fn assert_stream_matches_batch(jobs: &[SchedJob], cfg: &SiteConfig) {
        let batch = simulate_site(jobs, cfg).expect("batch run");
        let mut by_id: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
        let stats = simulate_site_stream(jobs.iter().cloned(), cfg, |o| {
            assert!(by_id[o.id].is_none(), "outcome delivered twice: {o:?}");
            by_id[o.id] = Some(o.clone());
        })
        .expect("stream run");
        assert_eq!(stats.n_jobs, jobs.len());
        for (want, got) in batch.outcomes.iter().zip(&by_id) {
            let got = got.as_ref().expect("every job departs");
            assert_eq!(want.id, got.id);
            assert_eq!(want.start.to_bits(), got.start.to_bits());
            assert_eq!(want.end.to_bits(), got.end.to_bits());
            assert_eq!(want.wait.to_bits(), got.wait.to_bits());
            assert_eq!(want.inflation.to_bits(), got.inflation.to_bits());
            assert_eq!(want.completed, got.completed);
            assert_eq!(want.nodes, got.nodes);
            assert_eq!(want.requeues, got.requeues);
            assert_eq!(want.fault_loss_s.to_bits(), got.fault_loss_s.to_bits());
        }
        assert_eq!(stats.head_delay_violations, batch.head_delay_violations);
        assert_eq!(stats.fault_stats, batch.fault_stats);
        assert_eq!(stats.makespan.to_bits(), batch.makespan.to_bits());
        assert!((stats.mean_wait - batch.mean_wait).abs() <= 1e-9 * (1.0 + batch.mean_wait));
        assert!(stats.peak_live_jobs <= jobs.len());
    }

    #[test]
    fn stream_is_bit_identical_to_batch_across_disciplines_and_engines() {
        for seed in [1_u64, 42, 0x5EED] {
            let jobs = lublin_mix(400, 16, 1.1, seed);
            for d in [
                Discipline::Fcfs,
                Discipline::Easy,
                Discipline::NaiveBackfill,
                Discipline::Conservative,
            ] {
                for engine in [SchedEngine::SlotSet, SchedEngine::LegacyFreeNode] {
                    let c = cfg(16, 8, d).with_engine(engine);
                    assert_stream_matches_batch(&jobs, &c);
                }
            }
        }
    }

    #[test]
    fn stream_matches_batch_under_contention() {
        let jobs = lublin_mix(300, 32, 1.3, 9);
        let c = SiteConfig::new(
            NodePool::new(32, 8),
            PlacementPolicy::RackAware,
            Discipline::Easy,
            ContentionParams {
                beta: 0.35,
                cap: 2.5,
            },
        );
        assert_stream_matches_batch(&jobs, &c);
    }

    #[test]
    fn stream_matches_batch_with_calendar_and_quotas() {
        let mut jobs = lublin_mix(200, 16, 1.0, 5);
        for (i, j) in jobs.iter_mut().enumerate() {
            if i % 3 == 0 {
                j.project = Some(1);
            }
        }
        let c = cfg(16, 8, Discipline::Easy)
            .with_maintenance(Maintenance {
                begin: 5_000.0,
                end: 9_000.0,
                nodes: crate::site::MaintNodes::All,
            })
            .with_quota(QuotaRule {
                project: 1,
                max_nodes: 6,
                window: Some((0.0, 50_000.0)),
            });
        assert_stream_matches_batch(&jobs, &c);
    }

    #[test]
    fn stream_matches_batch_under_crash_faults() {
        let crashy = sim_faults::FaultModel {
            name: "test-crashy",
            scale: 1.0,
            crash_per_node_hour: 2.0,
            crash_mean_secs: 60.0,
            ..sim_faults::FaultModel::none()
        };
        let jobs: Vec<SchedJob> = (0..24)
            .map(|i| {
                let mut j = SchedJob::new(i, 2, (i as f64) * 30.0, 600.0, 0.0);
                j.walltime = 1e5;
                j
            })
            .collect();
        let c =
            cfg(8, 4, Discipline::Easy).with_faults(SiteFaults::new(crashy, 7).with_mttr(300.0));
        let batch = simulate_site(&jobs, &c).expect("batch");
        assert!(batch.fault_stats.kills > 0, "model not hot enough");
        assert_stream_matches_batch(&jobs, &c);
    }

    #[test]
    fn peak_live_stays_flat_as_the_trace_grows() {
        // A drained load: the queue reaches a steady state, so quadrupling
        // the trace must not grow the high-water mark of live jobs.
        let run = |n: usize| {
            let c = cfg(32, 8, Discipline::Easy);
            simulate_site_stream(crate::job::LublinMix::new(n, 32, 0.7, 11), &c, |_| {})
                .expect("stream run")
        };
        let small = run(2_000);
        let large = run(8_000);
        assert_eq!(small.n_jobs, 2_000);
        assert_eq!(large.n_jobs, 8_000);
        assert!(
            large.peak_live_jobs <= small.peak_live_jobs * 2,
            "live set grew with trace length: {} -> {}",
            small.peak_live_jobs,
            large.peak_live_jobs
        );
        assert!(large.peak_live_jobs < 500, "{}", large.peak_live_jobs);
    }

    #[test]
    fn stream_rejects_what_it_cannot_replay() {
        let c = cfg(8, 8, Discipline::Easy);
        let dep = SchedJob::new(1, 1, 1.0, 10.0, 0.0).with_deps(&[0]);
        assert!(matches!(
            simulate_site_stream([SchedJob::new(0, 1, 0.0, 10.0, 0.0), dep], &c, |_| {}),
            Err(SchedError::InvalidJob { job: 1, .. })
        ));
        let mold = SchedJob::new(0, 1, 0.0, 10.0, 0.0).with_shapes(&[JobShape {
            nodes: 2,
            runtime: 6.0,
            walltime: 18.0,
        }]);
        assert!(matches!(
            simulate_site_stream([mold], &c, |_| {}),
            Err(SchedError::InvalidJob { job: 0, .. })
        ));
        let resv = SchedJob::new(0, 1, 0.0, 10.0, 0.0).at(100.0);
        assert!(matches!(
            simulate_site_stream([resv], &c, |_| {}),
            Err(SchedError::InvalidJob { job: 0, .. })
        ));
        let back_in_time = [
            SchedJob::new(0, 1, 50.0, 10.0, 0.0),
            SchedJob::new(1, 1, 20.0, 10.0, 0.0),
        ];
        assert!(matches!(
            simulate_site_stream(back_in_time, &c, |_| {}),
            Err(SchedError::InvalidJob { job: 1, .. })
        ));
    }
}
