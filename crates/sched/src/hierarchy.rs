//! The hierarchical resource tree behind the slot set: site → rack → node
//! → core, derived from the platform's interconnect topology.
//!
//! Scheduling granularity is the **node** level (a `ProcSet` id is a node
//! index); racks group nodes behind a shared leaf switch (a fat tree's
//! leaf radix, or one big rack for a single switch) and the core level
//! only widens the leaves for reporting (`total_cores`). Placement
//! policies select concrete nodes *from a `ProcSet`* of candidates — the
//! slot-set engine hands them the intersection of the hard availability
//! over the job's whole window, so a choice made now can never collide
//! with a maintenance window or a pinned reservation later.

use crate::error::SchedError;
use crate::pool::PlacementPolicy;
use crate::slot::ProcSet;

/// The static shape of one site's resources: `nodes` nodes in racks of
/// `rack_size`, each node carrying `cores_per_node` cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    nodes: usize,
    rack_size: usize,
    cores_per_node: usize,
}

impl Hierarchy {
    pub fn new(nodes: usize, rack_size: usize, cores_per_node: usize) -> Hierarchy {
        assert!(nodes >= 1 && rack_size >= 1 && cores_per_node >= 1);
        Hierarchy {
            nodes,
            rack_size,
            cores_per_node,
        }
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }

    pub fn rack_size(&self) -> usize {
        self.rack_size
    }

    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Leaf count of the full tree: every core of every node.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// The whole site as a proc set.
    pub fn site(&self) -> ProcSet {
        ProcSet::range(0, self.nodes - 1)
    }

    pub fn rack_of(&self, node: usize) -> usize {
        node / self.rack_size
    }

    pub fn n_racks(&self) -> usize {
        self.nodes.div_ceil(self.rack_size)
    }

    /// Physical width of rack `r` (the final rack may be ragged).
    pub fn rack_capacity(&self, r: usize) -> usize {
        (self.nodes - r * self.rack_size).min(self.rack_size)
    }

    /// The nodes of rack `r` as a proc set.
    pub fn rack_set(&self, r: usize) -> ProcSet {
        let lo = r * self.rack_size;
        let hi = (lo + self.rack_size).min(self.nodes) - 1;
        ProcSet::range(lo, hi)
    }

    /// Sorted, deduplicated rack ids spanned by a node list.
    pub fn racks_of(&self, nodes: &[usize]) -> Vec<usize> {
        let mut racks: Vec<usize> = nodes.iter().map(|&n| self.rack_of(n)).collect();
        racks.sort_unstable();
        racks.dedup();
        racks
    }

    /// Whether `policy` can carve `n` nodes out of `avail` at all. For the
    /// preference-shaping policies this is just `avail.len() >= n`; only
    /// [`PlacementPolicy::RackStrict`] turns preference into feasibility
    /// (the job must fit inside one rack's available nodes).
    pub fn feasible(&self, avail: &ProcSet, n: usize, policy: PlacementPolicy) -> bool {
        if n == 0 || avail.len() < n {
            return n == 0;
        }
        match policy {
            PlacementPolicy::RackStrict => {
                (0..self.n_racks()).any(|r| avail.intersect(&self.rack_set(r)).len() >= n)
            }
            _ => true,
        }
    }

    /// Choose `n` nodes from `avail` under `policy`. Preference orders are
    /// byte-identical to the historical free-list pickers; only
    /// `RackStrict` can fail when `avail.len() >= n` (fragmentation), and
    /// then it fails typed instead of panicking.
    pub fn select(
        &self,
        avail: &ProcSet,
        n: usize,
        policy: PlacementPolicy,
    ) -> Result<Vec<usize>, SchedError> {
        if n == 0 || n > avail.len() {
            return Err(SchedError::PlacementUnsatisfiable {
                need: n,
                policy: policy.name(),
                free: avail.len(),
            });
        }
        let picked = match policy {
            PlacementPolicy::Packed => avail.iter().take(n).collect(),
            PlacementPolicy::Scattered => self.pick_scattered(avail, n),
            PlacementPolicy::RackAware => self.pick_rack_aware(avail, n),
            PlacementPolicy::RackStrict => {
                self.pick_rack_strict(avail, n)
                    .ok_or(SchedError::PlacementUnsatisfiable {
                        need: n,
                        policy: policy.name(),
                        free: avail.len(),
                    })?
            }
        };
        debug_assert_eq!(picked.len(), n);
        Ok(picked)
    }

    fn pick_scattered(&self, avail: &ProcSet, n: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(n);
        // Round-robin across racks: offset-major traversal takes at most
        // one node per rack per sweep.
        for offset in 0..self.rack_size {
            for rack in 0..self.n_racks() {
                let node = rack * self.rack_size + offset;
                if node < self.nodes && avail.contains(node) {
                    out.push(node);
                    if out.len() == n {
                        return out;
                    }
                }
            }
        }
        out
    }

    fn free_per_rack(&self, avail: &ProcSet) -> Vec<usize> {
        let mut free = vec![0usize; self.n_racks()];
        for node in avail.iter() {
            free[self.rack_of(node)] += 1;
        }
        free
    }

    fn pick_rack_aware(&self, avail: &ProcSet, n: usize) -> Vec<usize> {
        let n_racks = self.n_racks();
        let free_per_rack = self.free_per_rack(avail);
        // An idle rack avoids leaf-switch co-tenancy entirely; failing
        // that, best-fit into an occupied rack (the fullest one that still
        // takes the whole job, keeping big holes intact for wide jobs).
        let idle = (0..n_racks)
            .filter(|&r| free_per_rack[r] >= n && free_per_rack[r] == self.rack_capacity(r))
            .min_by_key(|&r| free_per_rack[r]);
        let single = idle.or_else(|| {
            (0..n_racks)
                .filter(|&r| free_per_rack[r] >= n)
                .min_by_key(|&r| free_per_rack[r])
        });
        let rack_order: Vec<usize> = match single {
            Some(r) => {
                let mut order = vec![r];
                order.extend((0..n_racks).filter(|&x| x != r));
                order
            }
            None => {
                // Spill across the fewest racks: emptiest racks first.
                let mut order: Vec<usize> = (0..n_racks).collect();
                order.sort_by_key(|&r| std::cmp::Reverse(free_per_rack[r]));
                order
            }
        };
        let mut out = Vec::with_capacity(n);
        for rack in rack_order {
            let lo = rack * self.rack_size;
            let hi = (lo + self.rack_size).min(self.nodes);
            for node in lo..hi {
                if avail.contains(node) {
                    out.push(node);
                    if out.len() == n {
                        return out;
                    }
                }
            }
        }
        out
    }

    /// Single-rack-or-nothing: an idle rack that fits, else the best-fit
    /// occupied rack. `None` when no single rack holds `n` available
    /// nodes — the fragmentation case `RackAware` spills over and this
    /// policy refuses.
    fn pick_rack_strict(&self, avail: &ProcSet, n: usize) -> Option<Vec<usize>> {
        let free_per_rack = self.free_per_rack(avail);
        let n_racks = self.n_racks();
        let idle = (0..n_racks)
            .filter(|&r| free_per_rack[r] >= n && free_per_rack[r] == self.rack_capacity(r))
            .min_by_key(|&r| free_per_rack[r]);
        let rack = idle.or_else(|| {
            (0..n_racks)
                .filter(|&r| free_per_rack[r] >= n)
                .min_by_key(|&r| free_per_rack[r])
        })?;
        Some(
            avail
                .intersect(&self.rack_set(rack))
                .iter()
                .take(n)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_shape() {
        let h = Hierarchy::new(13, 4, 8);
        assert_eq!(h.n_racks(), 4);
        assert_eq!(h.rack_capacity(0), 4);
        assert_eq!(h.rack_capacity(3), 1, "ragged final rack");
        assert_eq!(h.total_cores(), 104);
        assert_eq!(h.rack_set(1), ProcSet::range(4, 7));
        assert_eq!(h.site().len(), 13);
        assert_eq!(h.racks_of(&[0, 5, 6, 12]), vec![0, 1, 3]);
    }

    #[test]
    fn rack_strict_fails_typed_on_fragmentation() {
        let h = Hierarchy::new(8, 4, 1);
        // Two free nodes in each rack: capacity admits 3, no rack does.
        let avail = ProcSet::from_ids(&[2, 3, 6, 7]);
        assert!(h.feasible(&avail, 2, PlacementPolicy::RackStrict));
        assert!(!h.feasible(&avail, 3, PlacementPolicy::RackStrict));
        assert!(h.feasible(&avail, 3, PlacementPolicy::RackAware));
        let err = h
            .select(&avail, 3, PlacementPolicy::RackStrict)
            .unwrap_err();
        assert!(matches!(
            err,
            SchedError::PlacementUnsatisfiable {
                need: 3,
                free: 4,
                ..
            }
        ));
        assert_eq!(
            h.select(&avail, 2, PlacementPolicy::RackStrict).unwrap(),
            vec![2, 3],
            "best-fit lands in the fuller rack's hole"
        );
    }
}
