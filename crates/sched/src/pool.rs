//! The shared node pool: racks, free sets and placement policies.
//!
//! Rack structure comes from the platform's interconnect topology
//! ([`sim_net::Shape`]): a fat tree's leaf radix partitions nodes into
//! racks behind shared uplinks; a single switch is one big rack. The pool
//! is a thin stateful wrapper over a [`Hierarchy`] and a free
//! [`ProcSet`]; placement decides which free nodes a job gets, which in
//! turn decides which jobs share links — and therefore who pays
//! contention (see [`crate::site`]).

use crate::error::SchedError;
use crate::hierarchy::Hierarchy;
use crate::slot::ProcSet;
use sim_net::topology::Shape;
use sim_platform::ClusterSpec;

/// How a job's nodes are chosen from the free pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Lowest-numbered free nodes first. Dense, cache-friendly for the
    /// scheduler, incidentally rack-local for small jobs.
    Packed,
    /// One node per rack, round-robin — the worst case for link sharing,
    /// kept as the contention foil (and as what naive load balancers do).
    Scattered,
    /// Topology-aware: an idle rack that fits first (no co-tenants on the
    /// leaf switch at all), else the best-fitting single rack, else the
    /// fewest racks. Minimizes shared links.
    RackAware,
    /// Single rack or nothing: like `RackAware` but refuses to spill, so a
    /// fragmented free set can fail a request that raw capacity admits.
    /// The only policy for which placement constrains feasibility.
    RackStrict,
}

impl PlacementPolicy {
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::Packed => "packed",
            PlacementPolicy::Scattered => "scattered",
            PlacementPolicy::RackAware => "rack-aware",
            PlacementPolicy::RackStrict => "rack-strict",
        }
    }
}

/// A pool of identical nodes grouped into racks of `rack_size`.
#[derive(Debug, Clone)]
pub struct NodePool {
    hier: Hierarchy,
    free: ProcSet,
}

impl NodePool {
    pub fn new(nodes: usize, rack_size: usize) -> NodePool {
        let hier = Hierarchy::new(nodes.max(1), rack_size.max(1), 1);
        let free = hier.site();
        NodePool { hier, free }
    }

    /// Derive the pool from a platform preset: fat-tree leaf radix =
    /// rack size; a single switch is one rack. Cores per node ride along
    /// from the node spec so the hierarchy's leaf level is real.
    pub fn from_cluster(cluster: &ClusterSpec) -> NodePool {
        let rack_size = match cluster.topology.shape {
            Shape::SingleSwitch => cluster.nodes.max(1),
            Shape::FatTree { radix, .. } => radix.max(1),
        };
        let hier = Hierarchy::new(
            cluster.nodes.max(1),
            rack_size,
            cluster.node.logical_cores().max(1),
        );
        let free = hier.site();
        NodePool { hier, free }
    }

    /// A modeled partition of `nodes` nodes with the cluster's rack
    /// granularity: fat-tree leaf radix racks, or one big rack behind a
    /// single switch. Not capped at the preset's testbed size — schedulers
    /// are studied on partitions scaled to the job mix, keeping only the
    /// platform's topology *character*.
    pub fn partition_of(cluster: &ClusterSpec, nodes: usize) -> NodePool {
        let rack_size = match cluster.topology.shape {
            Shape::SingleSwitch => nodes.max(1),
            Shape::FatTree { radix, .. } => radix.max(1),
        };
        let hier = Hierarchy::new(nodes.max(1), rack_size, cluster.node.logical_cores().max(1));
        let free = hier.site();
        NodePool { hier, free }
    }

    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    pub fn nodes(&self) -> usize {
        self.hier.nodes()
    }

    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// The currently free nodes as a proc set.
    pub fn free_set(&self) -> &ProcSet {
        &self.free
    }

    pub fn rack_of(&self, node: usize) -> usize {
        self.hier.rack_of(node)
    }

    pub fn n_racks(&self) -> usize {
        self.hier.n_racks()
    }

    /// Sorted, deduplicated rack ids spanned by a node set.
    pub fn racks_of(&self, nodes: &[usize]) -> Vec<usize> {
        self.hier.racks_of(nodes)
    }

    /// Allocate `n` free nodes under `policy`. For the preference-shaping
    /// policies this succeeds whenever `free_count >= n`; `RackStrict` can
    /// additionally fail on fragmentation, and every failure is a typed
    /// [`SchedError`] instead of a panic in the caller.
    pub fn alloc(&mut self, n: usize, policy: PlacementPolicy) -> Result<Vec<usize>, SchedError> {
        let candidates = self.free.clone();
        self.alloc_from(n, policy, &candidates)
    }

    /// Allocate `n` nodes under `policy`, restricted to `candidates` — the
    /// slot-set engine passes the hard availability intersected over the
    /// job's whole window here. `candidates` not currently free are
    /// ignored.
    pub fn alloc_from(
        &mut self,
        n: usize,
        policy: PlacementPolicy,
        candidates: &ProcSet,
    ) -> Result<Vec<usize>, SchedError> {
        let avail = self.free.intersect(candidates);
        let picked = self.hier.select(&avail, n, policy)?;
        self.free = self.free.difference(&ProcSet::from_ids(&picked));
        Ok(picked)
    }

    pub fn release(&mut self, nodes: &[usize]) {
        let released = ProcSet::from_ids(nodes);
        debug_assert!(self.free.intersect(&released).is_empty());
        self.free = self.free.union(&released);
    }
}

/// Whether two placements contend for interconnect links: they share a
/// rack (its leaf switch), or both span racks (both load the spine).
pub fn share_links(racks_a: &[usize], racks_b: &[usize]) -> bool {
    if racks_a.len() > 1 && racks_b.len() > 1 {
        return true;
    }
    // Both sorted: linear intersection test.
    let (mut i, mut j) = (0, 0);
    while i < racks_a.len() && j < racks_b.len() {
        match racks_a[i].cmp(&racks_b[j]) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_fills_low_nodes() {
        let mut p = NodePool::new(16, 4);
        assert_eq!(p.alloc(3, PlacementPolicy::Packed).unwrap(), vec![0, 1, 2]);
        assert_eq!(p.alloc(2, PlacementPolicy::Packed).unwrap(), vec![3, 4]);
        assert_eq!(p.free_count(), 11);
    }

    #[test]
    fn scattered_spreads_one_per_rack_first() {
        let mut p = NodePool::new(16, 4);
        let got = p.alloc(4, PlacementPolicy::Scattered).unwrap();
        assert_eq!(got, vec![0, 4, 8, 12]);
        assert_eq!(p.racks_of(&got).len(), 4);
    }

    #[test]
    fn rack_aware_prefers_an_idle_rack() {
        let mut p = NodePool::new(16, 4);
        // Occupy half of rack 0: racks 1..3 are idle, rack 0 has a hole.
        let first = p.alloc(2, PlacementPolicy::Packed).unwrap();
        let got = p.alloc(3, PlacementPolicy::RackAware).unwrap();
        assert_eq!(p.racks_of(&got), vec![1]);
        // The next small job avoids both occupied racks: fresh leaf switch.
        let small = p.alloc(2, PlacementPolicy::RackAware).unwrap();
        assert_eq!(p.racks_of(&small), vec![2]);
        // With no idle rack left that fits 4, best-fit lands in rack 3 and
        // then the next job must reuse rack 0's hole.
        let wide = p.alloc(4, PlacementPolicy::RackAware).unwrap();
        assert_eq!(p.racks_of(&wide), vec![3]);
        let hole = p.alloc(2, PlacementPolicy::RackAware).unwrap();
        assert_eq!(p.racks_of(&hole), vec![0]);
        p.release(&first);
        p.release(&got);
        p.release(&small);
        p.release(&wide);
        p.release(&hole);
        assert_eq!(p.free_count(), 16);
    }

    #[test]
    fn rack_aware_spills_over_fewest_racks() {
        let mut p = NodePool::new(16, 4);
        let wide = p.alloc(6, PlacementPolicy::RackAware).unwrap();
        assert_eq!(p.racks_of(&wide).len(), 2);
    }

    #[test]
    fn alloc_always_succeeds_when_nodes_suffice() {
        for policy in [
            PlacementPolicy::Packed,
            PlacementPolicy::Scattered,
            PlacementPolicy::RackAware,
        ] {
            let mut p = NodePool::new(13, 4); // ragged final rack
            let a = p.alloc(7, policy).unwrap();
            let b = p.alloc(6, policy).unwrap();
            assert!(p.alloc(1, policy).is_err());
            p.release(&a);
            p.release(&b);
            assert_eq!(p.free_count(), 13);
        }
    }

    #[test]
    fn rack_strict_errors_on_fragmentation_instead_of_spilling() {
        let mut p = NodePool::new(8, 4);
        // Leave holes of 2 in each rack: 4 free total, no rack has 3.
        let a = p.alloc(2, PlacementPolicy::Packed).unwrap(); // [0, 1]
        let b = p
            .alloc_from(3, PlacementPolicy::Packed, &ProcSet::range(4, 7))
            .unwrap(); // [4, 5, 6]
        assert_eq!(p.free_count(), 3);
        // RackAware happily spills; RackStrict reports the fragmentation.
        let err = p.alloc(3, PlacementPolicy::RackStrict).unwrap_err();
        assert_eq!(
            err,
            SchedError::PlacementUnsatisfiable {
                need: 3,
                policy: "rack-strict",
                free: 3,
            }
        );
        let ok = p.alloc(2, PlacementPolicy::RackStrict).unwrap();
        assert_eq!(p.racks_of(&ok).len(), 1);
        p.release(&a);
        p.release(&b);
        p.release(&ok);
        assert_eq!(p.free_count(), 8);
    }

    #[test]
    fn alloc_from_respects_the_candidate_set() {
        let mut p = NodePool::new(16, 4);
        let got = p
            .alloc_from(2, PlacementPolicy::Packed, &ProcSet::range(8, 15))
            .unwrap();
        assert_eq!(got, vec![8, 9]);
        let err = p
            .alloc_from(9, PlacementPolicy::Packed, &ProcSet::range(8, 15))
            .unwrap_err();
        assert!(matches!(
            err,
            SchedError::PlacementUnsatisfiable { free: 6, .. }
        ));
    }

    #[test]
    fn link_sharing_rules() {
        assert!(share_links(&[0], &[0]));
        assert!(!share_links(&[0], &[1]));
        assert!(share_links(&[0, 1], &[2, 3]), "both span the spine");
        assert!(share_links(&[0, 1], &[1]));
        assert!(!share_links(&[2], &[3]));
    }
}
