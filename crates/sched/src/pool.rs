//! The shared node pool: racks, free lists and placement policies.
//!
//! Rack structure comes from the platform's interconnect topology
//! ([`sim_net::Shape`]): a fat tree's leaf radix partitions nodes into
//! racks behind shared uplinks; a single switch is one big rack. Placement
//! decides which free nodes a job gets, which in turn decides which jobs
//! share links — and therefore who pays contention (see
//! [`crate::site`]).

use sim_net::topology::Shape;
use sim_platform::ClusterSpec;

/// How a job's nodes are chosen from the free pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Lowest-numbered free nodes first. Dense, cache-friendly for the
    /// scheduler, incidentally rack-local for small jobs.
    Packed,
    /// One node per rack, round-robin — the worst case for link sharing,
    /// kept as the contention foil (and as what naive load balancers do).
    Scattered,
    /// Topology-aware: an idle rack that fits first (no co-tenants on the
    /// leaf switch at all), else the best-fitting single rack, else the
    /// fewest racks. Minimizes shared links.
    RackAware,
}

impl PlacementPolicy {
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::Packed => "packed",
            PlacementPolicy::Scattered => "scattered",
            PlacementPolicy::RackAware => "rack-aware",
        }
    }
}

/// A pool of identical nodes grouped into racks of `rack_size`.
#[derive(Debug, Clone)]
pub struct NodePool {
    nodes: usize,
    rack_size: usize,
    free: Vec<bool>,
    free_count: usize,
}

impl NodePool {
    pub fn new(nodes: usize, rack_size: usize) -> NodePool {
        assert!(nodes >= 1 && rack_size >= 1);
        NodePool {
            nodes,
            rack_size,
            free: vec![true; nodes],
            free_count: nodes,
        }
    }

    /// Derive the pool from a platform preset: fat-tree leaf radix =
    /// rack size; a single switch is one rack.
    pub fn from_cluster(cluster: &ClusterSpec) -> NodePool {
        let rack_size = match cluster.topology.shape {
            Shape::SingleSwitch => cluster.nodes.max(1),
            Shape::FatTree { radix, .. } => radix.max(1),
        };
        NodePool::new(cluster.nodes, rack_size)
    }

    /// A modeled partition of `nodes` nodes with the cluster's rack
    /// granularity: fat-tree leaf radix racks, or one big rack behind a
    /// single switch. Not capped at the preset's testbed size — schedulers
    /// are studied on partitions scaled to the job mix, keeping only the
    /// platform's topology *character*.
    pub fn partition_of(cluster: &ClusterSpec, nodes: usize) -> NodePool {
        let rack_size = match cluster.topology.shape {
            Shape::SingleSwitch => nodes.max(1),
            Shape::FatTree { radix, .. } => radix.max(1),
        };
        NodePool::new(nodes.max(1), rack_size)
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }

    pub fn free_count(&self) -> usize {
        self.free_count
    }

    pub fn rack_of(&self, node: usize) -> usize {
        node / self.rack_size
    }

    pub fn n_racks(&self) -> usize {
        self.nodes.div_ceil(self.rack_size)
    }

    /// Sorted, deduplicated rack ids spanned by a node set.
    pub fn racks_of(&self, nodes: &[usize]) -> Vec<usize> {
        let mut racks: Vec<usize> = nodes.iter().map(|&n| self.rack_of(n)).collect();
        racks.sort_unstable();
        racks.dedup();
        racks
    }

    /// Allocate `n` free nodes under `policy`. Always succeeds when
    /// `free_count >= n` (policies shape preference order, never
    /// feasibility).
    pub fn alloc(&mut self, n: usize, policy: PlacementPolicy) -> Option<Vec<usize>> {
        if n == 0 || n > self.free_count {
            return None;
        }
        let picked = match policy {
            PlacementPolicy::Packed => self.pick_packed(n),
            PlacementPolicy::Scattered => self.pick_scattered(n),
            PlacementPolicy::RackAware => self.pick_rack_aware(n),
        };
        debug_assert_eq!(picked.len(), n);
        for &node in &picked {
            debug_assert!(self.free[node]);
            self.free[node] = false;
        }
        self.free_count -= n;
        Some(picked)
    }

    pub fn release(&mut self, nodes: &[usize]) {
        for &node in nodes {
            debug_assert!(!self.free[node]);
            self.free[node] = true;
        }
        self.free_count += nodes.len();
    }

    fn pick_packed(&self, n: usize) -> Vec<usize> {
        (0..self.nodes).filter(|&i| self.free[i]).take(n).collect()
    }

    fn pick_scattered(&self, n: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(n);
        // Round-robin across racks: offset-major traversal takes at most
        // one node per rack per sweep.
        for offset in 0..self.rack_size {
            for rack in 0..self.n_racks() {
                let node = rack * self.rack_size + offset;
                if node < self.nodes && self.free[node] {
                    out.push(node);
                    if out.len() == n {
                        return out;
                    }
                }
            }
        }
        out
    }

    fn pick_rack_aware(&self, n: usize) -> Vec<usize> {
        let n_racks = self.n_racks();
        let mut free_per_rack = vec![0usize; n_racks];
        for i in 0..self.nodes {
            if self.free[i] {
                free_per_rack[self.rack_of(i)] += 1;
            }
        }
        let rack_capacity = |r: usize| (self.nodes - r * self.rack_size).min(self.rack_size);
        // An idle rack avoids leaf-switch co-tenancy entirely; failing
        // that, best-fit into an occupied rack (the fullest one that still
        // takes the whole job, keeping big holes intact for wide jobs).
        let idle = (0..n_racks)
            .filter(|&r| free_per_rack[r] >= n && free_per_rack[r] == rack_capacity(r))
            .min_by_key(|&r| free_per_rack[r]);
        let single = idle.or_else(|| {
            (0..n_racks)
                .filter(|&r| free_per_rack[r] >= n)
                .min_by_key(|&r| free_per_rack[r])
        });
        let rack_order: Vec<usize> = match single {
            Some(r) => {
                let mut order = vec![r];
                order.extend((0..n_racks).filter(|&x| x != r));
                order
            }
            None => {
                // Spill across the fewest racks: emptiest racks first.
                let mut order: Vec<usize> = (0..n_racks).collect();
                order.sort_by_key(|&r| std::cmp::Reverse(free_per_rack[r]));
                order
            }
        };
        let mut out = Vec::with_capacity(n);
        for rack in rack_order {
            let lo = rack * self.rack_size;
            let hi = (lo + self.rack_size).min(self.nodes);
            for node in lo..hi {
                if self.free[node] {
                    out.push(node);
                    if out.len() == n {
                        return out;
                    }
                }
            }
        }
        out
    }
}

/// Whether two placements contend for interconnect links: they share a
/// rack (its leaf switch), or both span racks (both load the spine).
pub fn share_links(racks_a: &[usize], racks_b: &[usize]) -> bool {
    if racks_a.len() > 1 && racks_b.len() > 1 {
        return true;
    }
    // Both sorted: linear intersection test.
    let (mut i, mut j) = (0, 0);
    while i < racks_a.len() && j < racks_b.len() {
        match racks_a[i].cmp(&racks_b[j]) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_fills_low_nodes() {
        let mut p = NodePool::new(16, 4);
        assert_eq!(p.alloc(3, PlacementPolicy::Packed).unwrap(), vec![0, 1, 2]);
        assert_eq!(p.alloc(2, PlacementPolicy::Packed).unwrap(), vec![3, 4]);
        assert_eq!(p.free_count(), 11);
    }

    #[test]
    fn scattered_spreads_one_per_rack_first() {
        let mut p = NodePool::new(16, 4);
        let got = p.alloc(4, PlacementPolicy::Scattered).unwrap();
        assert_eq!(got, vec![0, 4, 8, 12]);
        assert_eq!(p.racks_of(&got).len(), 4);
    }

    #[test]
    fn rack_aware_prefers_an_idle_rack() {
        let mut p = NodePool::new(16, 4);
        // Occupy half of rack 0: racks 1..3 are idle, rack 0 has a hole.
        let first = p.alloc(2, PlacementPolicy::Packed).unwrap();
        let got = p.alloc(3, PlacementPolicy::RackAware).unwrap();
        assert_eq!(p.racks_of(&got), vec![1]);
        // The next small job avoids both occupied racks: fresh leaf switch.
        let small = p.alloc(2, PlacementPolicy::RackAware).unwrap();
        assert_eq!(p.racks_of(&small), vec![2]);
        // With no idle rack left that fits 4, best-fit lands in rack 3 and
        // then the next job must reuse rack 0's hole.
        let wide = p.alloc(4, PlacementPolicy::RackAware).unwrap();
        assert_eq!(p.racks_of(&wide), vec![3]);
        let hole = p.alloc(2, PlacementPolicy::RackAware).unwrap();
        assert_eq!(p.racks_of(&hole), vec![0]);
        p.release(&first);
        p.release(&got);
        p.release(&small);
        p.release(&wide);
        p.release(&hole);
        assert_eq!(p.free_count(), 16);
    }

    #[test]
    fn rack_aware_spills_over_fewest_racks() {
        let mut p = NodePool::new(16, 4);
        let wide = p.alloc(6, PlacementPolicy::RackAware).unwrap();
        assert_eq!(p.racks_of(&wide).len(), 2);
    }

    #[test]
    fn alloc_always_succeeds_when_nodes_suffice() {
        for policy in [
            PlacementPolicy::Packed,
            PlacementPolicy::Scattered,
            PlacementPolicy::RackAware,
        ] {
            let mut p = NodePool::new(13, 4); // ragged final rack
            let a = p.alloc(7, policy).unwrap();
            let b = p.alloc(6, policy).unwrap();
            assert!(p.alloc(1, policy).is_none());
            p.release(&a);
            p.release(&b);
            assert_eq!(p.free_count(), 13);
        }
    }

    #[test]
    fn link_sharing_rules() {
        assert!(share_links(&[0], &[0]));
        assert!(!share_links(&[0], &[1]));
        assert!(share_links(&[0, 1], &[2, 3]), "both span the spine");
        assert!(share_links(&[0, 1], &[1]));
        assert!(!share_links(&[2], &[3]));
    }
}
