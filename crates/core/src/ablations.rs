//! Ablation studies: remove one modelled effect at a time and quantify how
//! much of the paper's story it carries.
//!
//! DESIGN.md calls out four design choices, each matching one of the
//! paper's causal claims:
//!
//! 1. **Interconnect** — "the importance of the cluster interconnect":
//!    re-run DCC with QDR InfiniBand swapped in.
//! 2. **NUMA masking** — the paper's explanation for CG's drop at 8
//!    processes on DCC: expose the topology to the guest.
//! 3. **HyperThreading over-subscription** — the EC2 vs EC2-4 story.
//! 4. **Hypervisor jitter** — the "system jitter" the paper blames for
//!    EC2's EP fluctuation and DCC's irregular imbalance: run DCC's
//!    hardware bare-metal.

use crate::experiment::{parallel_map, Experiment};
use crate::figures::ReproConfig;
use crate::table::{fmt_pct, fmt_ratio, Table};
use sim_net::{FabricParams, Topology};
use sim_platform::{presets, ClusterSpec, HypervisorModel, Strategy};
use workloads::{Kernel, Npb, Workload};

/// DCC with the interconnect swapped for Vayu's QDR InfiniBand.
pub fn dcc_with_infiniband() -> ClusterSpec {
    let mut c = presets::dcc();
    c.name = "dcc+ib";
    c.topology = Topology::single_switch(FabricParams::qdr_infiniband(), c.topology.intra.clone());
    c
}

/// DCC with guest-visible NUMA (a hypervisor with affinity support).
pub fn dcc_numa_exposed() -> ClusterSpec {
    let mut c = presets::dcc();
    c.name = "dcc+numa";
    c.node.hypervisor.numa_masked = false;
    c
}

/// DCC's blades run bare-metal: no ESX overhead, no scheduling stalls (the
/// vSwitch fabric is kept — this isolates the *hypervisor*, not the NIC).
pub fn dcc_bare_metal() -> ClusterSpec {
    let mut c = presets::dcc();
    c.name = "dcc-bare";
    c.node.hypervisor = HypervisorModel::bare_metal();
    c
}

/// Ablation 1 + 2 + 4: CG across DCC variants, per rank count.
pub fn ablation_dcc_variants(cfg: &ReproConfig) -> Table {
    let w = Npb::new(Kernel::Cg, cfg.npb_class);
    let variants = [
        presets::dcc(),
        dcc_with_infiniband(),
        dcc_numa_exposed(),
        dcc_bare_metal(),
        presets::vayu(),
    ];
    let mut t = Table::new(
        format!(
            "Ablation — {} elapsed time by DCC model variant (normalized to stock dcc)",
            w.name()
        ),
        vec!["np", "dcc", "dcc+ib", "dcc+numa", "dcc-bare", "vayu"],
    );
    let nps = vec![4usize, 8, 16, 32];
    let rows = parallel_map(nps, |np| {
        let times: Vec<f64> = variants
            .iter()
            .map(|c| {
                Experiment::new(&w, c, np)
                    .repeats(cfg.repeats)
                    .run_min()
                    .expect("ablation run")
                    .0
                    .elapsed_secs()
            })
            .collect();
        let base = times[0];
        let mut cells = vec![np.to_string()];
        cells.push(fmt_ratio(1.0));
        for t in &times[1..] {
            cells.push(fmt_ratio(t / base));
        }
        cells
    });
    for r in rows {
        t.row(r);
    }
    t.note(
        "below 1.0 = faster than stock DCC; NUMA exposure carries the single-node gap, while the",
    );
    t.note("multi-node gap splits between the NIC (grows with class) and hypervisor stalls (dominate at small classes)");
    t
}

/// Ablation 3: HyperThread packing vs spreading on EC2, several kernels.
pub fn ablation_ht_packing(cfg: &ReproConfig) -> Table {
    let mut t = Table::new(
        "Ablation — EC2 at 32 ranks: packed on 2 nodes (HT) vs spread over 4",
        vec![
            "kernel",
            "packed_s",
            "spread_s",
            "packed/spread",
            "%comm_packed",
            "%comm_spread",
        ],
    );
    let kernels = vec![Kernel::Ep, Kernel::Cg, Kernel::Mg, Kernel::Ft];
    let c = presets::ec2();
    let rows = parallel_map(kernels, |k| {
        let w = Npb::new(k, cfg.npb_class);
        let run = |strategy| {
            Experiment::new(&w, &c, 32)
                .strategy(strategy)
                .repeats(cfg.repeats)
                .run_min()
                .expect("ht run")
                .0
        };
        let packed = run(Strategy::Block);
        let spread = run(Strategy::Spread { nodes: 4 });
        vec![
            w.name(),
            format!("{:.2}", packed.elapsed_secs()),
            format!("{:.2}", spread.elapsed_secs()),
            fmt_ratio(packed.elapsed_secs() / spread.elapsed_secs()),
            fmt_pct(packed.comm_pct()),
            fmt_pct(spread.comm_pct()),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t.note(
        "paper Table III: packing MetUM onto 2 nodes at 32 ranks costs ~2x (rcomp 2.39 vs 1.17)",
    );
    t
}

/// All ablation tables.
pub fn all_ablations(cfg: &ReproConfig) -> Vec<Table> {
    vec![ablation_dcc_variants(cfg), ablation_ht_packing(cfg)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_differ_only_where_intended() {
        let ib = dcc_with_infiniband();
        assert_eq!(ib.topology.inter.name, "QDR InfiniBand");
        assert!(ib.node.hypervisor.numa_masked, "hypervisor untouched");
        let numa = dcc_numa_exposed();
        assert!(!numa.node.hypervisor.numa_masked);
        assert_eq!(numa.topology.inter.name, "GigE (VMware vSwitch)");
        let bare = dcc_bare_metal();
        assert_eq!(bare.node.hypervisor.compute_overhead, 0.0);
    }

    /// Jitter sampling consumes a variable number of RNG draws per op
    /// (spikes draw a tail magnitude, quiet ops don't), so per-rank noise
    /// streams desynchronize across cluster variants and a single seed can
    /// rank them arbitrarily. Min-of-N — the paper's own methodology —
    /// damps that before comparing variants.
    fn repeated() -> ReproConfig {
        ReproConfig {
            repeats: 5,
            ..ReproConfig::quick()
        }
    }

    #[test]
    fn multi_node_gap_decomposes_into_nic_and_hypervisor() {
        let t = ablation_dcc_variants(&repeated());
        // At np=32 (row 3): every single-component fix helps, and the
        // jitter-free bare-metal variant helps most at this small class
        // (class W's per-iteration compute is so short that hypervisor
        // stalls, not wire time, dominate — at class B the NIC share
        // grows). Vayu bounds them all from below.
        let row = &t.rows[3];
        assert_eq!(row[0], "32");
        let ib: f64 = row[2].parse().unwrap();
        let bare: f64 = row[4].parse().unwrap();
        let vayu: f64 = row[5].parse().unwrap();
        assert!(ib < 1.0, "dcc+ib at 32 ranks: {ib}");
        assert!(bare < 0.7, "dcc-bare at 32 ranks: {bare}");
        assert!(vayu <= bare + 0.05 && vayu <= ib, "{row:?}");
    }

    #[test]
    fn numa_exposure_helps_single_node_cg() {
        let t = ablation_dcc_variants(&repeated());
        // np=8 row: stock dcc == 1, dcc+numa < 1.
        let row = &t.rows[1];
        assert_eq!(row[0], "8");
        let numa: f64 = row[3].parse().unwrap();
        assert!(numa < 0.97, "dcc+numa at 8 ranks: {numa}");
    }

    #[test]
    fn ht_packing_costs_about_2x_for_compute_bound() {
        let cfg = ReproConfig::quick();
        let t = ablation_ht_packing(&cfg);
        let ep_row = &t.rows[0];
        assert_eq!(ep_row[0], "ep.W");
        let ratio: f64 = ep_row[3].parse().unwrap();
        assert!((1.7..2.3).contains(&ratio), "EP packed/spread {ratio}");
    }
}
