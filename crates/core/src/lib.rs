//! `cloudsim` — the public facade of the HPC / private-cloud / public-cloud
//! performance study.
//!
//! This crate ties the whole reproduction together:
//!
//! * re-exports the platform presets (`vayu`, `dcc`, `ec2` — the paper's
//!   Table I), the MPI simulator, the IPM-style profiler and all workload
//!   generators;
//! * [`Experiment`] — the min-of-N-repeats runner matching the paper's
//!   measurement methodology;
//! * [`figures`] — one driver per figure/table of the evaluation section,
//!   each returning a renderable [`Table`].
//!
//! # Quickstart
//!
//! ```
//! use cloudsim::prelude::*;
//!
//! // Run NPB CG class W on the EC2 model at 16 ranks, with profiling.
//! let workload = Npb::new(Kernel::Cg, Class::W);
//! let cluster = presets::ec2();
//! let (result, report) = cloudsim::Experiment::new(&workload, &cluster, 16)
//!     .run_min()
//!     .unwrap();
//! println!("elapsed {:.2}s, {:.1}% in MPI", result.elapsed_secs(), result.comm_pct());
//! println!("{}", report.to_text());
//! ```

pub mod ablations;
pub mod advisor;
pub mod experiment;
pub mod figures;
pub mod plot;
pub mod scheduler;
pub mod table;

/// Platform price models now live with the scheduler subsystem
/// (`sim-sched` uses them for burst budgeting); re-exported here so
/// `cloudsim::pricing::PriceModel` keeps working.
pub use sim_sched::pricing;

pub use ablations::{ablation_dcc_variants, ablation_ht_packing, all_ablations};
pub use advisor::{advise, advisor_service, PlatformForecast, Recommendation, WorkloadProfile};
pub use experiment::{parallel_map, Experiment, PAPER_REPEATS};
pub use figures::{
    all_figures, faultsched, faultsched_points, faultsched_with, faultsweep, faultsweep_points,
    faultsweep_with, fig1_osu_bandwidth, fig2_osu_latency, fig3_npb_serial, fig4_kernel,
    fig4_npb_speedups, fig5_chaste, fig6_metum, fig7_load_balance, recoverysweep,
    recoverysweep_points, recoverysweep_with, schedsweep, schedsweep_points, schedsweep_with,
    tab2_npb_comm, tab3_metum, FaultPoint, FaultSchedPoint, RecoveryPoint, ReproConfig, SchedPoint,
    DEFAULT_SEED, FAULTSCHED_CALIB, FAULTSCHED_SCALES, FAULTSWEEP_SCALES,
    RECOVERYSWEEP_SDC_PER_NODE, SCHEDSWEEP_LOADS, SCHEDSWEEP_NODES,
};
pub use plot::AsciiChart;
pub use pricing::PriceModel;
pub use scheduler::{
    arrive_f_rerun_table, arrive_f_table, contended_mix, contended_sites, simulate_queue,
    simulate_queue_preemptible, synthetic_mix, Capacities, Job, Policy, Preemption, QueueStats,
    Site,
};
pub use table::{fmt_pct, fmt_ratio, fmt_secs, Table};

// Re-export the component crates under stable names.
pub use numerics;
pub use sim_advisor;
pub use sim_des;
pub use sim_faults;
pub use sim_ipm;
pub use sim_mpi;
pub use sim_net;
pub use sim_platform;
pub use sim_platform::presets;
pub use sim_sched;
pub use sim_sweep;
pub use workloads;

/// Everything most programs need.
pub mod prelude {
    pub use crate::experiment::{parallel_map, Experiment};
    pub use crate::figures::ReproConfig;
    pub use crate::table::Table;
    pub use sim_faults::{FaultModel, FaultSpec, RecoveryStrategy, RetryPolicy};
    pub use sim_ipm::{profile_run, IpmReport};
    pub use sim_mpi::{run_job, CollOp, JobSpec, NullSink, Op, SimConfig, SimResult};
    pub use sim_platform::{presets, ClusterSpec, Placement, Strategy};
    pub use workloads::{
        Chaste, CheckpointPolicy, Checkpointed, Class, Kernel, MetUm, Npb, Verified, VerifyPolicy,
        Workload,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_a_full_pipeline() {
        let w = Npb::new(Kernel::Ep, Class::S);
        let c = presets::vayu();
        let (res, rep) = crate::Experiment::new(&w, &c, 4).run_once().unwrap();
        assert!(res.elapsed_secs() > 0.0);
        assert_eq!(rep.np, 4);
    }

    #[test]
    fn presets_reachable_through_facade() {
        assert_eq!(crate::presets::dcc().nodes, 8);
        assert_eq!(crate::presets::ec2().nodes, 4);
        assert_eq!(crate::presets::vayu().nodes, 1492);
    }
}
