//! Batch-queue and cloud-bursting simulation — the ARRIVE-F experiment.
//!
//! The paper's motivation (§II) describes the ARRIVE-F framework: profile
//! the jobs in a compute farm, predict their runtimes on each hardware
//! platform and relocate them to the best-suited one, improving "average
//! job waiting times by up to 33%". This module reproduces that experiment
//! end to end on the simulator:
//!
//! * a discrete-event **batch queue** (FCFS with optional backfill) over a
//!   fixed node pool, built on `sim_des::EventQueue`;
//! * a **runtime oracle** that predicts each job's per-platform runtime by
//!   actually simulating it once per platform;
//! * two **policies**: everything-on-the-supercomputer vs. ARRIVE-F-style
//!   cloud-bursting of the cloud-friendly fraction of the mix.

use crate::advisor::WorkloadProfile;
use crate::experiment::Experiment;
use crate::table::{fmt_pct, fmt_ratio, fmt_secs, Table};
use sim_des::{DetRng, EventQueue, SimDur, SimTime};
use sim_platform::{presets, Strategy};
use workloads::{Class, Kernel, Npb, Workload};

/// One job in the mix.
#[derive(Debug, Clone)]
pub struct Job {
    pub id: usize,
    pub name: String,
    /// Nodes the job occupies on its home (HPC) partition.
    pub nodes: usize,
    /// Submission time (seconds).
    pub submit: f64,
    /// Predicted runtime on each platform, seconds: [vayu, dcc, ec2].
    pub runtime: [f64; 3],
    /// Profiled cloud-friendliness in 0..1.
    pub friendliness: f64,
}

/// The three destinations of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    Vayu = 0,
    Dcc = 1,
    Ec2 = 2,
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// All jobs queue on the HPC partition.
    HpcOnly,
    /// ARRIVE-F: a job whose cloud-friendliness exceeds `threshold` may be
    /// started immediately on an idle cloud site when the HPC partition
    /// cannot run it right away.
    CloudBurst { threshold: f64 },
    /// Cost-aware bursting — the paper's future work ("we plan to
    /// integrate Amazon EC2 spot-pricing into our local ANUPBS scheduler"):
    /// burst only when the job is cloud-friendly AND its spot-price cost on
    /// the candidate site stays under `max_dollars`.
    CostAwareBurst { threshold: f64, max_dollars: f64 },
}

/// Outcome of one scheduled job.
#[derive(Debug, Clone)]
pub struct Scheduled {
    pub id: usize,
    pub site: Site,
    pub wait: f64,
    pub runtime: f64,
}

/// Aggregate metrics of a simulation.
#[derive(Debug, Clone)]
pub struct QueueStats {
    pub jobs: Vec<Scheduled>,
    pub mean_wait: f64,
    pub mean_turnaround: f64,
    pub burst_fraction: f64,
    /// Cloud jobs killed by a spot/instance preemption and relocated back
    /// to the HPC backlog (0 unless simulated with [`Preemption`]).
    pub preemptions: usize,
}

/// Spot/instance preemption on the cloud sites, for
/// [`simulate_queue_preemptible`]: each job started on DCC or EC2 draws an
/// exponential time-to-preempt at `rate_per_node_hour * nodes`; if it fires
/// before the job completes, the job is killed, its work is lost, and
/// ARRIVE-F relocates it to the back of the HPC queue (the conservative
/// recovery: the home partition can always run it).
#[derive(Debug, Clone, Copy)]
pub struct Preemption {
    pub rate_per_node_hour: f64,
    pub seed: u64,
}

/// Capacities of the three sites, in nodes.
#[derive(Debug, Clone, Copy)]
pub struct Capacities {
    pub vayu: usize,
    pub dcc: usize,
    pub ec2: usize,
}

impl Default for Capacities {
    fn default() -> Self {
        // A deliberately contended HPC partition (the scenario where the
        // paper says cloud-bursting pays) with modest cloud headroom — the
        // DCC/EC2 pools are shared with other users, so only part of
        // Table I's capacity is available to burst into.
        Capacities {
            vayu: 8,
            dcc: 4,
            ec2: 2,
        }
    }
}

/// Simulate a job stream under `policy`. FCFS per site; a cloud-burst is
/// attempted at submission time only (matching ARRIVE-F's relocation at
/// schedule time). Deterministic.
pub fn simulate_queue(jobs: &[Job], caps: Capacities, policy: Policy) -> QueueStats {
    simulate_queue_impl(jobs, caps, policy, None)
}

/// [`simulate_queue`] with cloud preemptions: jobs bursted to DCC/EC2 may be
/// killed mid-run and requeued on the HPC partition, losing their cloud
/// progress. Quantifies how much of ARRIVE-F's waiting-time win survives on
/// revocable (spot-priced) capacity.
pub fn simulate_queue_preemptible(
    jobs: &[Job],
    caps: Capacities,
    policy: Policy,
    preempt: Preemption,
) -> QueueStats {
    simulate_queue_impl(jobs, caps, policy, Some(preempt))
}

fn simulate_queue_impl(
    jobs: &[Job],
    caps: Capacities,
    policy: Policy,
    preempt: Option<Preemption>,
) -> QueueStats {
    #[derive(Debug, Clone, Copy)]
    enum Ev {
        Submit(usize),
        Finish { site: usize, nodes: usize },
        Preempt { jid: usize, site: usize },
    }
    let mut q: EventQueue<Ev> = EventQueue::new();
    for (i, j) in jobs.iter().enumerate() {
        q.push(SimTime::from_secs_f64(j.submit), Ev::Submit(i));
    }
    let caps_arr = [caps.vayu, caps.dcc, caps.ec2];
    let mut free = caps_arr;
    // FCFS backlog of job indices per site.
    let mut backlog: [std::collections::VecDeque<usize>; 3] = Default::default();
    let mut out: Vec<Option<Scheduled>> = vec![None; jobs.len()];
    let mut bursts = 0usize;
    let mut preemptions = 0usize;

    // Try to start queued jobs on `site` at time `now`.
    let drain = |site: usize,
                 now: SimTime,
                 free: &mut [usize; 3],
                 backlog: &mut [std::collections::VecDeque<usize>; 3],
                 out: &mut [Option<Scheduled>],
                 q: &mut EventQueue<Ev>| {
        while let Some(&jid) = backlog[site].front() {
            let need = jobs[jid].nodes;
            if free[site] < need {
                break; // strict FCFS: the head blocks the queue
            }
            backlog[site].pop_front();
            free[site] -= need;
            let runtime = jobs[jid].runtime[site];
            // Clamp away the sub-nanosecond negative residue of the
            // f64 -> SimTime rounding of submit times.
            let wait = (now.as_secs_f64() - jobs[jid].submit).max(0.0);
            out[jid] = Some(Scheduled {
                id: jobs[jid].id,
                site: match site {
                    0 => Site::Vayu,
                    1 => Site::Dcc,
                    _ => Site::Ec2,
                },
                wait,
                runtime,
            });
            // On a revocable cloud site, draw the instance's
            // time-to-preempt; if it fires first, the job dies mid-run.
            let killed_at = preempt.and_then(|p| {
                if site == 0 || p.rate_per_node_hour <= 0.0 {
                    return None;
                }
                let mut rng = DetRng::new(p.seed, 0x9EE2_0000 ^ jid as u64);
                let mean = 3600.0 / (p.rate_per_node_hour * need as f64);
                let t = rng.exponential(mean);
                (t < runtime).then_some(t)
            });
            match killed_at {
                Some(t) => q.push(now + SimDur::from_secs_f64(t), Ev::Preempt { jid, site }),
                None => q.push(
                    now + SimDur::from_secs_f64(runtime),
                    Ev::Finish { site, nodes: need },
                ),
            }
        }
    };

    while let Some((now, ev)) = q.pop() {
        match ev {
            Ev::Submit(jid) => {
                let j = &jobs[jid];
                let mut site = 0usize;
                let burst_params = match policy {
                    Policy::HpcOnly => None,
                    Policy::CloudBurst { threshold } => Some((threshold, f64::INFINITY)),
                    Policy::CostAwareBurst {
                        threshold,
                        max_dollars,
                    } => Some((threshold, max_dollars)),
                };
                if let Some((threshold, max_dollars)) = burst_params {
                    // Burst only when the HPC partition can't start the job
                    // right now and a cloud site can.
                    let hpc_busy = free[0] < j.nodes || !backlog[0].is_empty();
                    if hpc_busy && j.friendliness >= threshold {
                        // Prefer the site with the better predicted runtime
                        // among those with room and within budget.
                        let prices = [
                            crate::pricing::PriceModel::hpc_service_units(),
                            crate::pricing::PriceModel::private_cloud(),
                            crate::pricing::PriceModel::ec2_2012(),
                        ];
                        let mut best: Option<usize> = None;
                        for cand in [1usize, 2] {
                            if free[cand] >= j.nodes && backlog[cand].is_empty() {
                                let cost = prices[cand].spot_cost(j.nodes, j.runtime[cand]);
                                if cost > max_dollars {
                                    continue;
                                }
                                let better =
                                    best.map(|b| j.runtime[cand] < j.runtime[b]).unwrap_or(true);
                                if better {
                                    best = Some(cand);
                                }
                            }
                        }
                        if let Some(b) = best {
                            site = b;
                            bursts += 1;
                        }
                    }
                }
                backlog[site].push_back(jid);
                drain(site, now, &mut free, &mut backlog, &mut out, &mut q);
            }
            Ev::Finish { site, nodes } => {
                free[site] += nodes;
                drain(site, now, &mut free, &mut backlog, &mut out, &mut q);
            }
            Ev::Preempt { jid, site } => {
                // The instance is revoked: release the nodes, drop the lost
                // cloud run and requeue the job on its home HPC partition
                // (ARRIVE-F's relocation in reverse). Its wait clock keeps
                // running from the original submission.
                free[site] += jobs[jid].nodes;
                out[jid] = None;
                preemptions += 1;
                backlog[0].push_back(jid);
                drain(site, now, &mut free, &mut backlog, &mut out, &mut q);
                drain(0, now, &mut free, &mut backlog, &mut out, &mut q);
            }
        }
    }

    let jobs_out: Vec<Scheduled> = out.into_iter().map(|s| s.expect("job scheduled")).collect();
    let n = jobs_out.len() as f64;
    let mean_wait = jobs_out.iter().map(|s| s.wait).sum::<f64>() / n;
    let mean_turnaround = jobs_out.iter().map(|s| s.wait + s.runtime).sum::<f64>() / n;
    QueueStats {
        mean_wait,
        mean_turnaround,
        burst_fraction: bursts as f64 / n,
        preemptions,
        jobs: jobs_out,
    }
}

/// Build a deterministic synthetic job mix by actually profiling each
/// kernel once per platform (the "lightweight online profiling" of
/// ARRIVE-F, §II). `load` scales the arrival rate: 1.0 saturates the HPC
/// partition.
pub fn synthetic_mix(n_jobs: usize, load: f64, seed: u64) -> Vec<Job> {
    // Candidate job templates: kernel at a rank count, profiled once.
    let templates: Vec<(Kernel, usize)> = vec![
        (Kernel::Ep, 16),
        (Kernel::Ep, 32),
        (Kernel::Mg, 16),
        (Kernel::Ft, 16),
        (Kernel::Cg, 16),
        (Kernel::Is, 16),
        (Kernel::Lu, 16),
        // Wide jobs that exceed the cloud pools and must stay on the HPC
        // partition whatever their profile says.
        (Kernel::Ep, 64),
        (Kernel::Mg, 64),
        (Kernel::Lu, 64),
    ];
    let platforms = [presets::vayu(), presets::dcc(), presets::ec2()];
    let profiled: Vec<([f64; 3], f64, String, usize)> = templates
        .iter()
        .map(|(k, np)| {
            let w = Npb::new(*k, Class::A);
            let mut rt = [0.0; 3];
            let mut friendliness = 0.0;
            for (i, c) in platforms.iter().enumerate() {
                let (res, rep) = Experiment::new(&w, c, *np)
                    .strategy(Strategy::Block)
                    .repeats(1)
                    .run_once()
                    .expect("profiling run");
                rt[i] = res.elapsed_secs();
                if i == 0 {
                    friendliness = WorkloadProfile::from_run(&res, &rep).cloud_friendliness();
                }
            }
            let nodes = np.div_ceil(8);
            (rt, friendliness, w.name(), nodes)
        })
        .collect();

    // Mean service demand on the HPC partition, for arrival-rate scaling.
    let mean_node_secs: f64 = profiled
        .iter()
        .map(|(rt, _, _, nodes)| rt[0] * *nodes as f64)
        .sum::<f64>()
        / profiled.len() as f64;
    let cap = Capacities::default();
    let mean_interarrival = mean_node_secs / (cap.vayu as f64 * load);

    let mut rng = DetRng::new(seed, 0xA881);
    let mut t = 0.0;
    (0..n_jobs)
        .map(|id| {
            let (rt, friendliness, name, nodes) = &profiled[rng.index(profiled.len())];
            t += rng.exponential(mean_interarrival);
            Job {
                id,
                name: name.clone(),
                nodes: *nodes,
                submit: t,
                runtime: *rt,
                friendliness: *friendliness,
            }
        })
        .collect()
}

/// The ARRIVE-F experiment as a table: waiting times with and without
/// cloud-bursting at increasing load.
pub fn arrive_f_table(n_jobs: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "ARRIVE-F experiment — mean job waiting time, HPC-only vs cloud-bursting",
        vec![
            "load",
            "wait_hpc_s",
            "wait_burst_s",
            "improvement",
            "%bursted",
        ],
    );
    for load in [0.7, 1.0, 1.3, 1.6] {
        let jobs = synthetic_mix(n_jobs, load, seed);
        let caps = Capacities::default();
        let hpc = simulate_queue(&jobs, caps, Policy::HpcOnly);
        let burst = simulate_queue(&jobs, caps, Policy::CloudBurst { threshold: 0.55 });
        let improvement = if hpc.mean_wait > 0.0 {
            1.0 - burst.mean_wait / hpc.mean_wait
        } else {
            0.0
        };
        t.row(vec![
            fmt_ratio(load),
            fmt_secs(hpc.mean_wait),
            fmt_secs(burst.mean_wait),
            fmt_pct(100.0 * improvement),
            fmt_pct(100.0 * burst.burst_fraction),
        ]);
    }
    t.note("paper §II: ARRIVE-F 'is able to improve the average job waiting times by up to 33%'");
    t.note(
        "our burstable mix + idle clouds give larger cuts; the shape (improvement shrinks as load",
    );
    t.note("grows and the clouds saturate) is the transferable result");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_jobs() -> Vec<Job> {
        // Hand-built mix: 4-node jobs on an 8-node partition.
        (0..8)
            .map(|i| Job {
                id: i,
                name: format!("j{i}"),
                nodes: 4,
                submit: i as f64,
                runtime: [100.0, 140.0, 160.0],
                friendliness: if i % 2 == 0 { 0.9 } else { 0.1 },
            })
            .collect()
    }

    #[test]
    fn fcfs_conserves_jobs_and_orders_waits() {
        let stats = simulate_queue(&quick_jobs(), Capacities::default(), Policy::HpcOnly);
        assert_eq!(stats.jobs.len(), 8);
        // 2 jobs fit at a time; later submissions wait longer.
        let w: Vec<f64> = stats.jobs.iter().map(|s| s.wait).collect();
        assert!(w[0] < 1e-9 && w[1] < 1e-9, "{w:?}");
        assert!(w[7] > w[2], "{w:?}");
        assert!(stats.burst_fraction == 0.0);
    }

    #[test]
    fn cloud_burst_reduces_waits_for_friendly_jobs() {
        let caps = Capacities::default();
        let hpc = simulate_queue(&quick_jobs(), caps, Policy::HpcOnly);
        let burst = simulate_queue(&quick_jobs(), caps, Policy::CloudBurst { threshold: 0.5 });
        assert!(burst.mean_wait < hpc.mean_wait);
        assert!(burst.burst_fraction > 0.0);
        // Unfriendly jobs never burst.
        for s in &burst.jobs {
            if s.id % 2 == 1 {
                assert_eq!(s.site, Site::Vayu, "{s:?}");
            }
        }
    }

    #[test]
    fn bursted_jobs_pay_their_cloud_runtime() {
        let burst = simulate_queue(
            &quick_jobs(),
            Capacities::default(),
            Policy::CloudBurst { threshold: 0.5 },
        );
        for s in &burst.jobs {
            match s.site {
                Site::Vayu => assert_eq!(s.runtime, 100.0),
                Site::Dcc => assert_eq!(s.runtime, 140.0),
                Site::Ec2 => assert_eq!(s.runtime, 160.0),
            }
        }
    }

    #[test]
    fn cost_cap_suppresses_expensive_bursts() {
        // With a zero budget nothing ever bursts; with an unlimited budget
        // the policy degenerates to plain CloudBurst.
        let caps = Capacities::default();
        let zero = simulate_queue(
            &quick_jobs(),
            caps,
            Policy::CostAwareBurst {
                threshold: 0.5,
                max_dollars: 0.0,
            },
        );
        assert_eq!(zero.burst_fraction, 0.0);
        let lax = simulate_queue(
            &quick_jobs(),
            caps,
            Policy::CostAwareBurst {
                threshold: 0.5,
                max_dollars: f64::INFINITY,
            },
        );
        let plain = simulate_queue(&quick_jobs(), caps, Policy::CloudBurst { threshold: 0.5 });
        assert_eq!(lax.burst_fraction, plain.burst_fraction);
        assert_eq!(lax.mean_wait, plain.mean_wait);
    }

    #[test]
    fn tight_budget_prefers_the_cheap_private_cloud() {
        // EC2 spot for a 4-node 160 s job is a full billed hour per node at
        // spot rates (~$1.8); the private cloud costs cents. A budget
        // between the two forces all bursts onto DCC.
        let caps = Capacities::default();
        let tight = simulate_queue(
            &quick_jobs(),
            caps,
            Policy::CostAwareBurst {
                threshold: 0.5,
                max_dollars: 0.50,
            },
        );
        assert!(tight.burst_fraction > 0.0);
        for s in &tight.jobs {
            assert_ne!(s.site, Site::Ec2, "{s:?}");
        }
    }

    #[test]
    fn preemption_requeues_cloud_jobs_to_hpc() {
        let caps = Capacities::default();
        let policy = Policy::CloudBurst { threshold: 0.5 };
        let base = simulate_queue(&quick_jobs(), caps, policy);
        assert!(base.burst_fraction > 0.0);
        // An absurdly hostile revocation rate kills every cloud run almost
        // immediately: every job finishes on Vayu and the bursting win is
        // wiped out.
        let spec = Preemption {
            rate_per_node_hour: 1e6,
            seed: 11,
        };
        let hostile = simulate_queue_preemptible(&quick_jobs(), caps, policy, spec);
        assert!(hostile.preemptions > 0);
        for s in &hostile.jobs {
            assert_eq!(s.site, Site::Vayu, "{s:?}");
        }
        assert!(hostile.mean_wait > base.mean_wait);
        // Same seed, same outcome.
        let again = simulate_queue_preemptible(&quick_jobs(), caps, policy, spec);
        assert_eq!(hostile.mean_wait, again.mean_wait);
        assert_eq!(hostile.preemptions, again.preemptions);
    }

    #[test]
    fn zero_preemption_rate_matches_plain_queue() {
        let caps = Capacities::default();
        let policy = Policy::CloudBurst { threshold: 0.5 };
        let base = simulate_queue(&quick_jobs(), caps, policy);
        let calm = simulate_queue_preemptible(
            &quick_jobs(),
            caps,
            policy,
            Preemption {
                rate_per_node_hour: 0.0,
                seed: 11,
            },
        );
        assert_eq!(calm.preemptions, 0);
        assert_eq!(calm.mean_wait, base.mean_wait);
        assert_eq!(calm.mean_turnaround, base.mean_turnaround);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn deterministic_mix() {
        let a = synthetic_mix(10, 1.0, 7);
        let b = synthetic_mix(10, 1.0, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.submit, y.submit);
            assert_eq!(x.name, y.name);
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn arrive_f_improvement_in_paper_range_at_high_load() {
        let t = arrive_f_table(60, 11);
        // At the highest load row, improvement is positive and sizeable.
        let last = t.rows.last().unwrap();
        let improvement: f64 = last[3].parse().unwrap();
        assert!(
            improvement > 10.0,
            "cloud-bursting should cut waits meaningfully: {last:?}"
        );
        let bursted: f64 = last[4].parse().unwrap();
        assert!(bursted > 5.0, "{last:?}");
    }
}
