//! Batch-queue and cloud-bursting simulation — the ARRIVE-F experiment.
//!
//! The paper's motivation (§II) describes the ARRIVE-F framework: profile
//! the jobs in a compute farm, predict their runtimes on each hardware
//! platform and relocate them to the best-suited one, improving "average
//! job waiting times by up to 33%". This module reproduces that experiment
//! end to end, driving the `sim-sched` scheduler subsystem:
//!
//! * a **runtime oracle** that predicts each job's per-platform runtime by
//!   actually simulating it once per platform ([`synthetic_mix`]);
//! * the historical three-site queue model ([`simulate_queue`]), now a
//!   thin wrapper over [`sim_sched::simulate_burst`] — FCFS, no
//!   contention, preserving the original semantics bit for bit;
//! * the **contended rerun** ([`arrive_f_rerun_table`]): the same
//!   experiment on the real scheduler — EASY backfill, rack-aware
//!   placement, link contention on every site — which is where the
//!   bursting win has to prove itself.
//!
//! The in-module event loop this file used to carry (strict FCFS with a
//! latent naive-backfill head-delay bug) is gone; queue disciplines live
//! in `sim-sched`, where the EASY invariant is enforced and tested.

use crate::advisor::WorkloadProfile;
use crate::experiment::Experiment;
use crate::table::{fmt_pct, fmt_ratio, fmt_secs, Table};
use sim_des::DetRng;
use sim_net::ContentionParams;
use sim_platform::{presets, Strategy};
use sim_sched::{
    lublin_burst_mix, simulate_burst, BurstJob, BurstPolicy, BurstSite, Discipline,
    PlacementPolicy, PreemptSpec, PriceModel, SchedEngine,
};
use workloads::{Class, Kernel, Npb, Workload};

/// One job in the mix.
#[derive(Debug, Clone)]
pub struct Job {
    pub id: usize,
    pub name: String,
    /// Nodes the job occupies on its home (HPC) partition.
    pub nodes: usize,
    /// Submission time (seconds).
    pub submit: f64,
    /// Predicted runtime on each platform, seconds: [vayu, dcc, ec2].
    pub runtime: [f64; 3],
    /// Profiled cloud-friendliness in 0..1.
    pub friendliness: f64,
}

/// The three destinations of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    Vayu = 0,
    Dcc = 1,
    Ec2 = 2,
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// All jobs queue on the HPC partition.
    HpcOnly,
    /// ARRIVE-F: a job whose cloud-friendliness exceeds `threshold` may be
    /// started immediately on an idle cloud site when the HPC partition
    /// cannot run it right away.
    CloudBurst { threshold: f64 },
    /// Cost-aware bursting — the paper's future work ("we plan to
    /// integrate Amazon EC2 spot-pricing into our local ANUPBS scheduler"):
    /// burst only when the job is cloud-friendly AND its spot-price cost on
    /// the candidate site stays under `max_dollars`.
    CostAwareBurst { threshold: f64, max_dollars: f64 },
}

/// Outcome of one scheduled job.
#[derive(Debug, Clone)]
pub struct Scheduled {
    pub id: usize,
    pub site: Site,
    pub wait: f64,
    pub runtime: f64,
}

/// Aggregate metrics of a simulation.
#[derive(Debug, Clone)]
pub struct QueueStats {
    pub jobs: Vec<Scheduled>,
    pub mean_wait: f64,
    pub mean_turnaround: f64,
    pub burst_fraction: f64,
    /// Cloud jobs killed by a spot/instance preemption and relocated back
    /// to the HPC backlog (0 unless simulated with [`Preemption`]).
    pub preemptions: usize,
}

/// Spot/instance preemption on the cloud sites, for
/// [`simulate_queue_preemptible`]: each job started on DCC or EC2 draws an
/// exponential time-to-preempt at `rate_per_node_hour * nodes`; if it fires
/// before the job completes, the job is killed, its work is lost, and
/// ARRIVE-F relocates it to the back of the HPC queue (the conservative
/// recovery: the home partition can always run it).
#[derive(Debug, Clone, Copy)]
pub struct Preemption {
    pub rate_per_node_hour: f64,
    pub seed: u64,
}

/// Capacities of the three sites, in nodes.
#[derive(Debug, Clone, Copy)]
pub struct Capacities {
    pub vayu: usize,
    pub dcc: usize,
    pub ec2: usize,
}

impl Default for Capacities {
    fn default() -> Self {
        // A deliberately contended HPC partition (the scenario where the
        // paper says cloud-bursting pays) with modest cloud headroom — the
        // DCC/EC2 pools are shared with other users, so only part of
        // Table I's capacity is available to burst into.
        Capacities {
            vayu: 8,
            dcc: 4,
            ec2: 2,
        }
    }
}

fn to_policy(policy: Policy) -> BurstPolicy {
    match policy {
        Policy::HpcOnly => BurstPolicy::HpcOnly,
        Policy::CloudBurst { threshold } => BurstPolicy::CloudBurst { threshold },
        Policy::CostAwareBurst {
            threshold,
            max_dollars,
        } => BurstPolicy::CostAwareBurst {
            threshold,
            max_dollars,
        },
    }
}

fn to_burst_jobs(jobs: &[Job]) -> Vec<BurstJob> {
    jobs.iter()
        .map(|j| BurstJob {
            id: j.id,
            name: j.name.clone(),
            nodes: j.nodes,
            submit: j.submit,
            runtime: j.runtime.to_vec(),
            comm_fraction: 0.0,
            friendliness: j.friendliness,
        })
        .collect()
}

/// The historical site model: FCFS everywhere, no contention, jobs run at
/// their nominal runtimes.
fn plain_sites(caps: Capacities, preempt_rate: f64) -> Vec<BurstSite> {
    let mut sites = vec![
        BurstSite::plain("vayu", caps.vayu, PriceModel::hpc_service_units()),
        BurstSite::plain("dcc", caps.dcc, PriceModel::private_cloud()),
        BurstSite::plain("ec2", caps.ec2, PriceModel::ec2_2012()),
    ];
    for s in &mut sites[1..] {
        s.preempt_per_node_hour = preempt_rate;
    }
    sites
}

fn to_stats(jobs: &[Job], stats: sim_sched::BurstStats) -> QueueStats {
    debug_assert_eq!(jobs.len(), stats.jobs.len());
    QueueStats {
        mean_wait: stats.mean_wait,
        mean_turnaround: stats.mean_turnaround,
        burst_fraction: stats.burst_fraction,
        preemptions: stats.preemptions,
        jobs: stats
            .jobs
            .iter()
            .map(|o| Scheduled {
                id: o.id,
                site: match o.site {
                    0 => Site::Vayu,
                    1 => Site::Dcc,
                    _ => Site::Ec2,
                },
                wait: o.wait,
                runtime: o.runtime,
            })
            .collect(),
    }
}

/// Simulate a job stream under `policy`. FCFS per site; a cloud-burst is
/// attempted at submission time only (matching ARRIVE-F's relocation at
/// schedule time). Deterministic.
pub fn simulate_queue(jobs: &[Job], caps: Capacities, policy: Policy) -> QueueStats {
    let stats = simulate_burst(
        &to_burst_jobs(jobs),
        &plain_sites(caps, 0.0),
        to_policy(policy),
        None,
        None,
    )
    .expect("plain sites cannot fragment");
    to_stats(jobs, stats)
}

/// [`simulate_queue`] with cloud preemptions: jobs bursted to DCC/EC2 may be
/// killed mid-run and requeued on the HPC partition, losing their cloud
/// progress. Quantifies how much of ARRIVE-F's waiting-time win survives on
/// revocable (spot-priced) capacity.
pub fn simulate_queue_preemptible(
    jobs: &[Job],
    caps: Capacities,
    policy: Policy,
    preempt: Preemption,
) -> QueueStats {
    let stats = simulate_burst(
        &to_burst_jobs(jobs),
        &plain_sites(caps, preempt.rate_per_node_hour),
        to_policy(policy),
        Some(PreemptSpec { seed: preempt.seed }),
        None,
    )
    .expect("plain sites cannot fragment");
    to_stats(jobs, stats)
}

/// Build a deterministic synthetic job mix by actually profiling each
/// kernel once per platform (the "lightweight online profiling" of
/// ARRIVE-F, §II). `load` scales the arrival rate: 1.0 saturates the HPC
/// partition.
pub fn synthetic_mix(n_jobs: usize, load: f64, seed: u64) -> Vec<Job> {
    // Candidate job templates: kernel at a rank count, profiled once.
    let templates: Vec<(Kernel, usize)> = vec![
        (Kernel::Ep, 16),
        (Kernel::Ep, 32),
        (Kernel::Mg, 16),
        (Kernel::Ft, 16),
        (Kernel::Cg, 16),
        (Kernel::Is, 16),
        (Kernel::Lu, 16),
        // Wide jobs that exceed the cloud pools and must stay on the HPC
        // partition whatever their profile says.
        (Kernel::Ep, 64),
        (Kernel::Mg, 64),
        (Kernel::Lu, 64),
    ];
    let platforms = [presets::vayu(), presets::dcc(), presets::ec2()];
    let profiled: Vec<([f64; 3], f64, String, usize)> = templates
        .iter()
        .map(|(k, np)| {
            let w = Npb::new(*k, Class::A);
            let mut rt = [0.0; 3];
            let mut friendliness = 0.0;
            for (i, c) in platforms.iter().enumerate() {
                let (res, rep) = Experiment::new(&w, c, *np)
                    .strategy(Strategy::Block)
                    .repeats(1)
                    .run_once()
                    .expect("profiling run");
                rt[i] = res.elapsed_secs();
                if i == 0 {
                    friendliness = WorkloadProfile::from_run(&res, &rep).cloud_friendliness();
                }
            }
            let nodes = np.div_ceil(8);
            (rt, friendliness, w.name(), nodes)
        })
        .collect();

    // Mean service demand on the HPC partition, for arrival-rate scaling.
    let mean_node_secs: f64 = profiled
        .iter()
        .map(|(rt, _, _, nodes)| rt[0] * *nodes as f64)
        .sum::<f64>()
        / profiled.len() as f64;
    let cap = Capacities::default();
    let mean_interarrival = mean_node_secs / (cap.vayu as f64 * load);

    let mut rng = DetRng::new(seed, 0xA881);
    let mut t = 0.0;
    (0..n_jobs)
        .map(|id| {
            let (rt, friendliness, name, nodes) = &profiled[rng.index(profiled.len())];
            t += rng.exponential(mean_interarrival);
            Job {
                id,
                name: name.clone(),
                nodes: *nodes,
                submit: t,
                runtime: *rt,
                friendliness: *friendliness,
            }
        })
        .collect()
}

/// The ARRIVE-F experiment as a table: waiting times with and without
/// cloud-bursting at increasing load.
pub fn arrive_f_table(n_jobs: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "ARRIVE-F experiment — mean job waiting time, HPC-only vs cloud-bursting",
        vec![
            "load",
            "wait_hpc_s",
            "wait_burst_s",
            "improvement",
            "%bursted",
        ],
    );
    for load in [0.7, 1.0, 1.3, 1.6] {
        let jobs = synthetic_mix(n_jobs, load, seed);
        let caps = Capacities::default();
        let hpc = simulate_queue(&jobs, caps, Policy::HpcOnly);
        let burst = simulate_queue(&jobs, caps, Policy::CloudBurst { threshold: 0.55 });
        let improvement = if hpc.mean_wait > 0.0 {
            1.0 - burst.mean_wait / hpc.mean_wait
        } else {
            0.0
        };
        t.row(vec![
            fmt_ratio(load),
            fmt_secs(hpc.mean_wait),
            fmt_secs(burst.mean_wait),
            fmt_pct(100.0 * improvement),
            fmt_pct(100.0 * burst.burst_fraction),
        ]);
    }
    t.note("paper §II: ARRIVE-F 'is able to improve the average job waiting times by up to 33%'");
    t.note(
        "our burstable mix + idle clouds give larger cuts; the shape (improvement shrinks as load",
    );
    t.note("grows and the clouds saturate) is the transferable result");
    t
}

/// The three sites of the study as the *real* scheduler sees them: EASY
/// backfill, rack-aware placement, and per-fabric link contention (QDR IB
/// barely notices co-tenants; the DCC vSwitch suffers).
pub fn contended_sites(caps: Capacities) -> Vec<BurstSite> {
    let platforms = [presets::vayu(), presets::dcc(), presets::ec2()];
    let names = ["vayu", "dcc", "ec2"];
    let caps = [caps.vayu, caps.dcc, caps.ec2];
    platforms
        .iter()
        .zip(names)
        .zip(caps)
        .map(|((c, name), nodes)| BurstSite {
            name,
            nodes,
            rack_size: match c.topology.shape {
                sim_net::Shape::SingleSwitch => nodes.max(1),
                sim_net::Shape::FatTree { radix, .. } => radix.max(1),
            },
            placement: PlacementPolicy::RackAware,
            discipline: Discipline::Easy,
            contention: ContentionParams::for_fabric(&c.topology.inter),
            engine: SchedEngine::SlotSet,
            price: PriceModel::for_platform(c),
            // Covers the contention cap (2.5) with headroom, like real
            // user walltime estimates do.
            walltime_factor: 3.0,
            preempt_per_node_hour: 0.0,
        })
        .collect()
}

/// A fast synthetic mix for the contended rerun: Lublin-style arrivals
/// with per-platform runtimes derived from the comm fraction (the cloud
/// penalty grows with communication intensity — the paper's central
/// observation) instead of per-job profiling runs.
pub fn contended_mix(n_jobs: usize, load: f64, seed: u64) -> Vec<BurstJob> {
    let caps = Capacities::default();
    // Slowdowns bracketing Table III: near parity for compute-bound codes,
    // ~2x+ for comm-bound ones. The seeded constructor lives in sim-sched
    // so the burst tests draw the exact same mix.
    lublin_burst_mix(n_jobs, caps.vayu, load, seed, &[(1.05, 0.9), (1.10, 1.3)])
}

/// The ARRIVE-F rerun on the real scheduler: EASY backfill, rack-aware
/// placement and link contention at every site. Columns mirror
/// [`arrive_f_table`]; the historical FCFS/no-contention model's mean
/// waits ride along for the before/after comparison.
pub fn arrive_f_rerun_table(n_jobs: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "ARRIVE-F rerun on sim-sched — EASY backfill + rack-aware placement + contention",
        vec![
            "load",
            "wait_hpc_s",
            "wait_burst_s",
            "improvement",
            "%bursted",
            "fcfs_wait_hpc_s",
        ],
    );
    let caps = Capacities::default();
    for load in [0.7, 1.0, 1.3, 1.6] {
        let jobs = contended_mix(n_jobs, load, seed);
        let sites = contended_sites(caps);
        let hpc = simulate_burst(&jobs, &sites, BurstPolicy::HpcOnly, None, None)
            .expect("rack-aware sites cannot fragment");
        let burst = simulate_burst(
            &jobs,
            &sites,
            BurstPolicy::CloudBurst { threshold: 0.55 },
            None,
            None,
        )
        .expect("rack-aware sites cannot fragment");
        assert_eq!(
            hpc.head_delay_violations + burst.head_delay_violations,
            0,
            "EASY invariant broke"
        );
        // The historical model (FCFS, no contention) as the "before".
        let plain = simulate_burst(
            &jobs,
            &plain_sites(caps, 0.0),
            BurstPolicy::HpcOnly,
            None,
            None,
        )
        .expect("plain sites cannot fragment");
        let improvement = if hpc.mean_wait > 0.0 {
            1.0 - burst.mean_wait / hpc.mean_wait
        } else {
            0.0
        };
        t.row(vec![
            fmt_ratio(load),
            fmt_secs(hpc.mean_wait),
            fmt_secs(burst.mean_wait),
            fmt_pct(100.0 * improvement),
            fmt_pct(100.0 * burst.burst_fraction),
            fmt_secs(plain.mean_wait),
        ]);
    }
    t.note("contention stretches home-partition queues, so relocation pays more than in the");
    t.note("FCFS/no-contention model; paper §II reports 'up to 33%' — the high-load rows land");
    t.note("at or above that once the home partition saturates");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_jobs() -> Vec<Job> {
        // Hand-built mix: 4-node jobs on an 8-node partition.
        (0..8)
            .map(|i| Job {
                id: i,
                name: format!("j{i}"),
                nodes: 4,
                submit: i as f64,
                runtime: [100.0, 140.0, 160.0],
                friendliness: if i % 2 == 0 { 0.9 } else { 0.1 },
            })
            .collect()
    }

    #[test]
    fn fcfs_conserves_jobs_and_orders_waits() {
        let stats = simulate_queue(&quick_jobs(), Capacities::default(), Policy::HpcOnly);
        assert_eq!(stats.jobs.len(), 8);
        // 2 jobs fit at a time; later submissions wait longer.
        let w: Vec<f64> = stats.jobs.iter().map(|s| s.wait).collect();
        assert!(w[0] < 1e-9 && w[1] < 1e-9, "{w:?}");
        assert!(w[7] > w[2], "{w:?}");
        assert!(stats.burst_fraction == 0.0);
    }

    #[test]
    fn cloud_burst_reduces_waits_for_friendly_jobs() {
        let caps = Capacities::default();
        let hpc = simulate_queue(&quick_jobs(), caps, Policy::HpcOnly);
        let burst = simulate_queue(&quick_jobs(), caps, Policy::CloudBurst { threshold: 0.5 });
        assert!(burst.mean_wait < hpc.mean_wait);
        assert!(burst.burst_fraction > 0.0);
        // Unfriendly jobs never burst.
        for s in &burst.jobs {
            if s.id % 2 == 1 {
                assert_eq!(s.site, Site::Vayu, "{s:?}");
            }
        }
    }

    #[test]
    fn bursted_jobs_pay_their_cloud_runtime() {
        let burst = simulate_queue(
            &quick_jobs(),
            Capacities::default(),
            Policy::CloudBurst { threshold: 0.5 },
        );
        for s in &burst.jobs {
            match s.site {
                Site::Vayu => assert_eq!(s.runtime, 100.0),
                Site::Dcc => assert_eq!(s.runtime, 140.0),
                Site::Ec2 => assert_eq!(s.runtime, 160.0),
            }
        }
    }

    #[test]
    fn cost_cap_suppresses_expensive_bursts() {
        // With a zero budget nothing ever bursts; with an unlimited budget
        // the policy degenerates to plain CloudBurst.
        let caps = Capacities::default();
        let zero = simulate_queue(
            &quick_jobs(),
            caps,
            Policy::CostAwareBurst {
                threshold: 0.5,
                max_dollars: 0.0,
            },
        );
        assert_eq!(zero.burst_fraction, 0.0);
        let lax = simulate_queue(
            &quick_jobs(),
            caps,
            Policy::CostAwareBurst {
                threshold: 0.5,
                max_dollars: f64::INFINITY,
            },
        );
        let plain = simulate_queue(&quick_jobs(), caps, Policy::CloudBurst { threshold: 0.5 });
        assert_eq!(lax.burst_fraction, plain.burst_fraction);
        assert_eq!(lax.mean_wait, plain.mean_wait);
    }

    #[test]
    fn tight_budget_prefers_the_cheap_private_cloud() {
        // EC2 spot for a 4-node 160 s job is a full billed hour per node at
        // spot rates (~$1.8); the private cloud costs cents. A budget
        // between the two forces all bursts onto DCC.
        let caps = Capacities::default();
        let tight = simulate_queue(
            &quick_jobs(),
            caps,
            Policy::CostAwareBurst {
                threshold: 0.5,
                max_dollars: 0.50,
            },
        );
        assert!(tight.burst_fraction > 0.0);
        for s in &tight.jobs {
            assert_ne!(s.site, Site::Ec2, "{s:?}");
        }
    }

    #[test]
    fn preemption_requeues_cloud_jobs_to_hpc() {
        let caps = Capacities::default();
        let policy = Policy::CloudBurst { threshold: 0.5 };
        let base = simulate_queue(&quick_jobs(), caps, policy);
        assert!(base.burst_fraction > 0.0);
        // An absurdly hostile revocation rate kills every cloud run almost
        // immediately: every job finishes on Vayu and the bursting win is
        // wiped out.
        let spec = Preemption {
            rate_per_node_hour: 1e6,
            seed: 11,
        };
        let hostile = simulate_queue_preemptible(&quick_jobs(), caps, policy, spec);
        assert!(hostile.preemptions > 0);
        for s in &hostile.jobs {
            assert_eq!(s.site, Site::Vayu, "{s:?}");
        }
        assert!(hostile.mean_wait > base.mean_wait);
        // Same seed, same outcome.
        let again = simulate_queue_preemptible(&quick_jobs(), caps, policy, spec);
        assert_eq!(hostile.mean_wait, again.mean_wait);
        assert_eq!(hostile.preemptions, again.preemptions);
    }

    #[test]
    fn zero_preemption_rate_matches_plain_queue() {
        let caps = Capacities::default();
        let policy = Policy::CloudBurst { threshold: 0.5 };
        let base = simulate_queue(&quick_jobs(), caps, policy);
        let calm = simulate_queue_preemptible(
            &quick_jobs(),
            caps,
            policy,
            Preemption {
                rate_per_node_hour: 0.0,
                seed: 11,
            },
        );
        assert_eq!(calm.preemptions, 0);
        assert_eq!(calm.mean_wait, base.mean_wait);
        assert_eq!(calm.mean_turnaround, base.mean_turnaround);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn deterministic_mix() {
        let a = synthetic_mix(10, 1.0, 7);
        let b = synthetic_mix(10, 1.0, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.submit, y.submit);
            assert_eq!(x.name, y.name);
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn arrive_f_improvement_in_paper_range_at_high_load() {
        let t = arrive_f_table(60, 11);
        // At the highest load row, improvement is positive and sizeable.
        let last = t.rows.last().unwrap();
        let improvement: f64 = last[3].parse().unwrap();
        assert!(
            improvement > 10.0,
            "cloud-bursting should cut waits meaningfully: {last:?}"
        );
        let bursted: f64 = last[4].parse().unwrap();
        assert!(bursted > 5.0, "{last:?}");
    }
}
