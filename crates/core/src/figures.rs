//! Reproduction drivers: one function per figure/table of the paper.
//!
//! Every function returns a [`Table`] (or a set of them) containing the
//! simulated series next to the paper's published reference values where
//! the paper prints them. `ReproConfig::paper()` reproduces the full-size
//! experiments; `ReproConfig::quick()` runs reduced problem sizes for CI.

use crate::experiment::{parallel_map, Experiment};
use crate::table::{fmt_pct, fmt_ratio, fmt_secs, Table};
use sim_faults::{FaultModel, FaultSpec, RecoveryStrategy, RetryPolicy};
use sim_mpi::Op;
use sim_net::ContentionParams;
use sim_platform::{presets, ClusterSpec, Strategy};
use sim_sched::{
    lublin_mix, sched_report, simulate_site, CheckpointSpec, Discipline, JobShape, MaintNodes,
    Maintenance, NodePool, PlacementPolicy, PriceModel, QuotaRule, RequeuePolicy, SchedJob,
    SiteConfig, SiteFaults,
};
use sim_sweep::{sweep, SweepOpts};
use workloads::metum::warmed_secs;
use workloads::osu::{osu_sizes, run_bandwidth, run_latency};
use workloads::{
    Chaste, CheckpointPolicy, Checkpointed, Class, Kernel, MetUm, Npb, Verified, VerifyPolicy,
    Workload,
};

/// The default base seed; [`ReproConfig::seed`] deviations from it perturb
/// every noise stream.
pub const DEFAULT_SEED: u64 = 0x5EED_0000;

/// Scale and repetition settings for the reproduction runs.
#[derive(Debug, Clone, Copy)]
pub struct ReproConfig {
    /// NPB problem class (paper: B).
    pub npb_class: Class,
    /// Repeats per point, minimum taken (paper: 5).
    pub repeats: usize,
    /// MetUM timesteps (paper: 18).
    pub metum_steps: usize,
    /// Chaste timesteps (paper: 250).
    pub chaste_steps: usize,
    /// Base seed for every noise and fault stream. Runs are bit-identical
    /// for a fixed seed; different seeds move only the noise.
    pub seed: u64,
}

impl ReproConfig {
    /// The paper's full configuration.
    pub fn paper() -> Self {
        ReproConfig {
            npb_class: Class::B,
            repeats: 5,
            metum_steps: 18,
            chaste_steps: 250,
            seed: DEFAULT_SEED,
        }
    }

    /// A reduced configuration for tests and smoke runs.
    pub fn quick() -> Self {
        ReproConfig {
            npb_class: Class::W,
            repeats: 1,
            metum_steps: 4,
            chaste_steps: 20,
            seed: DEFAULT_SEED,
        }
    }

    /// Override the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Seed for a micro-benchmark stream `k`: equals `k` at the default
    /// base seed (preserving the historical OSU streams bit-for-bit) and
    /// shifts with any user-supplied `--seed`.
    fn micro_seed(&self, k: u64) -> u64 {
        (self.seed ^ DEFAULT_SEED).wrapping_add(k)
    }
}

fn platforms() -> [ClusterSpec; 3] {
    [presets::dcc(), presets::ec2(), presets::vayu()]
}

/// Figure 1: OSU bandwidth (MB/s) vs message size on the three platforms.
pub fn fig1_osu_bandwidth(cfg: &ReproConfig) -> Table {
    let mut t = Table::new(
        "Fig 1 — OSU MPI bandwidth (MB/s), one process per node",
        vec!["bytes", "dcc", "ec2", "vayu"],
    );
    let sizes = osu_sizes();
    let rows = parallel_map(sizes, |bytes| {
        let mut cells = vec![bytes.to_string()];
        for c in platforms() {
            // Best (max) bandwidth across repeats, like the real suite.
            let best = (0..cfg.repeats)
                .map(|r| run_bandwidth(&c, bytes, cfg.micro_seed(0xB0 + r as u64)).expect("osu_bw"))
                .fold(0.0_f64, f64::max);
            cells.push(format!("{best:.1}"));
        }
        cells
    });
    for r in rows {
        t.row(r);
    }
    t.note("paper: DCC peaks ~190 MB/s, EC2 ~560 MB/s at 256 KB, Vayu >10x higher");
    t
}

/// Figure 2: OSU latency (us) vs message size on the three platforms.
pub fn fig2_osu_latency(cfg: &ReproConfig) -> Table {
    let mut t = Table::new(
        "Fig 2 — OSU MPI latency (us), one process per node",
        vec!["bytes", "dcc", "ec2", "vayu"],
    );
    let rows = parallel_map(osu_sizes(), |bytes| {
        let mut cells = vec![bytes.to_string()];
        for c in platforms() {
            let best = (0..cfg.repeats)
                .map(|r| {
                    run_latency(&c, bytes, cfg.micro_seed(0x1A + r as u64)).expect("osu_latency")
                })
                .fold(f64::INFINITY, f64::min);
            cells.push(format!("{best:.1}"));
        }
        cells
    });
    for r in rows {
        t.row(r);
    }
    t.note("paper: Vayu ~2 us small-message, EC2 ~55-65 us, DCC >100 us and fluctuating");
    t
}

/// Figure 3: NPB single-process walltime, absolute on DCC and normalized
/// elsewhere.
pub fn fig3_npb_serial(cfg: &ReproConfig) -> Table {
    let mut t = Table::new(
        format!(
            "Fig 3 — NPB class {} serial walltime (DCC absolute; EC2/Vayu normalized to DCC)",
            cfg.npb_class.letter()
        ),
        vec!["kernel", "dcc_s", "paper_dcc_s", "ec2_norm", "vayu_norm"],
    );
    let rows = parallel_map(Kernel::all().to_vec(), |k| {
        let w = Npb::new(k, cfg.npb_class);
        let [dcc, ec2, vayu] = platforms();
        let time = |c: &ClusterSpec| {
            Experiment::new(&w, c, 1)
                .seed(cfg.seed)
                .repeats(cfg.repeats)
                .run_min()
                .expect("serial run")
                .0
                .elapsed_secs()
        };
        let td = time(&dcc);
        vec![
            w.name(),
            fmt_secs(td),
            fmt_secs(k.dcc_serial_secs(cfg.npb_class)),
            fmt_ratio(time(&ec2) / td),
            fmt_ratio(time(&vayu) / td),
        ]
    });
    for r in rows {
        t.row(r);
    }
    t.note("paper prints the class-B DCC absolute times; normalized bars sit near the 1.29 clock ratio");
    t
}

/// Figure 4: per-kernel speedup curves on the three platforms.
pub fn fig4_npb_speedups(cfg: &ReproConfig) -> Vec<Table> {
    Kernel::all()
        .into_iter()
        .map(|k| fig4_kernel(cfg, k))
        .collect()
}

/// One kernel's Figure 4 panel.
pub fn fig4_kernel(cfg: &ReproConfig, k: Kernel) -> Table {
    let w = Npb::new(k, cfg.npb_class);
    let mut t = Table::new(
        format!("Fig 4 — {} speedup vs np", w.name()),
        vec!["np", "dcc", "ec2", "vayu"],
    );
    let serials: Vec<f64> = platforms()
        .iter()
        .map(|c| {
            Experiment::new(&w, c, 1)
                .seed(cfg.seed)
                .repeats(cfg.repeats)
                .run_min()
                .expect("serial")
                .0
                .elapsed_secs()
        })
        .collect();
    let nps: Vec<usize> = k
        .paper_np_sweep()
        .into_iter()
        .filter(|np| *np > 1)
        .collect();
    let rows = parallel_map(nps, |np| {
        let mut cells = vec![np.to_string()];
        for (c, t1) in platforms().iter().zip(&serials) {
            let t = Experiment::new(&w, c, np)
                .seed(cfg.seed)
                .repeats(cfg.repeats)
                .run_min()
                .expect("sweep point")
                .0
                .elapsed_secs();
            cells.push(fmt_ratio(t1 / t));
        }
        cells
    });
    for r in rows {
        t.row(r);
    }
    t
}

/// Table II: IPM %comm for CG, FT and IS across np and platforms.
pub fn tab2_npb_comm(cfg: &ReproConfig) -> Table {
    let mut t = Table::new(
        format!(
            "Table II — %walltime in MPI (IPM), NPB class {}",
            cfg.npb_class.letter()
        ),
        vec![
            "kernel",
            "np",
            "dcc",
            "ec2",
            "vayu",
            "paper_dcc",
            "paper_ec2",
            "paper_vayu",
        ],
    );
    // The paper's printed values for class B.
    let paper: &[(Kernel, [[f64; 6]; 3])] = &[
        (
            Kernel::Cg,
            [
                [1.5, 5.3, 68.3, 85.7, 78.0, 90.3],
                [1.2, 3.0, 5.1, 9.4, 38.8, 58.0],
                [0.9, 1.9, 3.8, 8.5, 12.5, 21.7],
            ],
        ),
        (
            Kernel::Ft,
            [
                [2.5, 3.6, 8.3, 59.3, 75.7, 84.4],
                [2.1, 3.4, 5.4, 7.2, 38.2, 55.3],
                [1.9, 2.9, 4.2, 7.7, 12.5, 20.8],
            ],
        ),
        (
            Kernel::Is,
            [
                [6.3, 8.6, 14.2, 82.4, 88.3, 98.1],
                [4.6, 7.4, 13.5, 19.2, 58.9, 84.9],
                [4.4, 8.2, 12.9, 22.1, 44.4, 68.2],
            ],
        ),
    ];
    let nps = [2usize, 4, 8, 16, 32, 64];
    for (k, paper_vals) in paper {
        let w = Npb::new(*k, cfg.npb_class);
        let rows = parallel_map(nps.to_vec(), |np| {
            let mut sims = Vec::new();
            for c in platforms() {
                let (res, _) = Experiment::new(&w, &c, np)
                    .seed(cfg.seed)
                    .run_once()
                    .expect("tab2 run");
                sims.push(res.comm_pct());
            }
            (np, sims)
        });
        for (i, (np, sims)) in rows.into_iter().enumerate() {
            t.row(vec![
                w.name(),
                np.to_string(),
                fmt_pct(sims[0]),
                fmt_pct(sims[1]),
                fmt_pct(sims[2]),
                fmt_pct(paper_vals[0][i]),
                fmt_pct(paper_vals[1][i]),
                fmt_pct(paper_vals[2][i]),
            ]);
        }
    }
    t.note("paper columns are the published class-B values (VU = Vayu)");
    t
}

/// Figure 5: Chaste total and KSp-section speedup over 8 cores (Vayu, DCC).
pub fn fig5_chaste(cfg: &ReproConfig) -> Table {
    let w = Chaste {
        timesteps: cfg.chaste_steps,
        cg_iters: 45,
    };
    let mut t = Table::new(
        "Fig 5 — Chaste speedup over 8 cores (total and KSp solver section)",
        vec!["np", "vayu_total", "dcc_total", "vayu_KSp", "dcc_KSp"],
    );
    let nps = [8usize, 16, 32, 48, 64];
    let runs = parallel_map(
        nps.iter()
            .flat_map(|np| [("vayu", *np), ("dcc", *np)])
            .collect::<Vec<_>>(),
        |(plat, np)| {
            let c = if plat == "vayu" {
                presets::vayu()
            } else {
                presets::dcc()
            };
            let (res, rep) = Experiment::new(&w, &c, np)
                .seed(cfg.seed)
                .repeats(cfg.repeats)
                .run_min()
                .expect("chaste run");
            let ksp = rep.section("KSp").expect("KSp section").wall.mean;
            (res.elapsed_secs(), ksp)
        },
    );
    // runs alternate vayu, dcc in np order.
    let (v8_total, v8_ksp) = runs[0];
    let (d8_total, d8_ksp) = runs[1];
    for (i, np) in nps.iter().enumerate() {
        let (vt, vk) = runs[2 * i];
        let (dt, dk) = runs[2 * i + 1];
        t.row(vec![
            np.to_string(),
            fmt_ratio(v8_total / vt),
            fmt_ratio(d8_total / dt),
            fmt_ratio(v8_ksp / vk),
            fmt_ratio(d8_ksp / dk),
        ]);
    }
    t.note(format!(
        "t8: vayu total {} (paper 1017), dcc total {} (paper 1599), vayu KSp {} (paper 579), dcc KSp {} (paper 938)",
        fmt_secs(v8_total),
        fmt_secs(d8_total),
        fmt_secs(v8_ksp),
        fmt_secs(d8_ksp)
    ));
    t.note("paper figure's t8 legend is garbled in the source scan; values mapped by the rcomp=1.5 analysis of §V-C1");
    t
}

/// A placement-strategy chooser parameterised by rank count.
type StrategyFn = Box<dyn Fn(usize) -> Strategy + Send + Sync>;

/// The four MetUM run configurations of Figure 6 / Table III.
fn metum_configs(w: &MetUm) -> Vec<(&'static str, ClusterSpec, StrategyFn)> {
    let mem = {
        let w = *w;
        move |np: usize| Strategy::BlockMemoryAware {
            per_rank_bytes: w.memory_per_rank_bytes(np),
        }
    };
    vec![
        ("vayu", presets::vayu(), Box::new(|_| Strategy::Block)),
        ("dcc", presets::dcc(), Box::new(|_| Strategy::Block)),
        ("ec2", presets::ec2(), Box::new(mem)),
        (
            "ec2-4",
            presets::ec2(),
            Box::new(|_| Strategy::Spread { nodes: 4 }),
        ),
    ]
}

/// Figure 6: MetUM warmed-time speedup over 8 cores for the four configs.
pub fn fig6_metum(cfg: &ReproConfig) -> Table {
    let w = MetUm {
        timesteps: cfg.metum_steps,
    };
    let mut t = Table::new(
        "Fig 6 — MetUM warmed-time speedup over 8 cores",
        vec!["np", "vayu", "dcc", "ec2", "ec2-4"],
    );
    let nps = vec![8usize, 16, 32, 64];
    let configs = metum_configs(&w);
    let mut warmed: Vec<Vec<f64>> = Vec::new();
    for np in &nps {
        let row = parallel_map(configs.iter().collect::<Vec<_>>(), |(_, c, strat)| {
            let (_, rep) = Experiment::new(&w, c, *np)
                .seed(cfg.seed)
                .strategy(strat(*np))
                .repeats(cfg.repeats)
                .run_min()
                .expect("metum run");
            warmed_secs(&rep)
        });
        warmed.push(row);
    }
    for (i, np) in nps.iter().enumerate() {
        let mut cells = vec![np.to_string()];
        for (base, cur) in warmed[0].iter().zip(&warmed[i]) {
            cells.push(fmt_ratio(base / cur));
        }
        t.row(cells);
    }
    t.note(format!(
        "t8 (s): vayu {} (paper 963), dcc {} (paper 1486), ec2 {} (paper 812), ec2-4 {} (paper 646)",
        fmt_secs(warmed[0][0]),
        fmt_secs(warmed[0][1]),
        fmt_secs(warmed[0][2]),
        fmt_secs(warmed[0][3])
    ));
    t
}

/// Table III: MetUM IPM statistics at 32 cores.
pub fn tab3_metum(cfg: &ReproConfig) -> Table {
    let w = MetUm {
        timesteps: cfg.metum_steps,
    };
    let mut t = Table::new(
        "Table III — MetUM statistics at 32 cores (ratios relative to Vayu)",
        vec![
            "platform", "time_s", "rcomp", "rcomm", "%comm", "%imbal", "io_s", "nodes",
        ],
    );
    let configs = metum_configs(&w);
    let runs = parallel_map(configs.iter().collect::<Vec<_>>(), |(name, c, strat)| {
        let (res, rep) = Experiment::new(&w, c, 32)
            .seed(cfg.seed)
            .strategy(strat(32))
            .repeats(cfg.repeats)
            .run_min()
            .expect("tab3 run");
        (*name, warmed_secs(&rep), res, rep)
    });
    let vayu_warm = runs[0].1;
    let vayu_comp = runs[0].2.comp_total_secs();
    let vayu_comm = runs[0].2.comm_total_secs();
    for (name, warm, res, rep) in &runs {
        t.row(vec![
            name.to_string(),
            // Scale warmed time to the paper's absolute base (Vayu 303 s at
            // 32 cores includes startup, which "warmed" excludes).
            fmt_secs(warm / vayu_warm * 303.0),
            fmt_ratio(res.comp_total_secs() / vayu_comp),
            fmt_ratio(res.comm_total_secs() / vayu_comm),
            fmt_pct(res.comm_pct()),
            fmt_pct(rep.global.imbalance_pct()),
            fmt_secs(res.io_secs_max()),
            res.placement.nodes_used().to_string(),
        ]);
    }
    t.note("paper: vayu 303/1.0/1.0/13/13/4.5, dcc 624/1.37/6.71/42/4/37.8, ec2 770/2.39/3.53/18/18/9.1, ec2-4 380/1.17/~1/18/19/7.6");
    t
}

/// Figure 7: per-process compute/communication split of the ATM_STEP
/// section at 32 cores on Vayu and DCC.
pub fn fig7_load_balance(cfg: &ReproConfig) -> Table {
    let w = MetUm {
        timesteps: cfg.metum_steps,
    };
    let mut t = Table::new(
        "Fig 7 — MetUM ATM_STEP per-rank time split at 32 cores (seconds)",
        vec!["rank", "vayu_comp", "vayu_comm", "dcc_comp", "dcc_comm"],
    );
    let sec = workloads::metum::SEC_ATM_STEP as usize;
    let grab = |c: &ClusterSpec| {
        let (_, rep) = Experiment::new(&w, c, 32)
            .seed(cfg.seed)
            .run_once()
            .expect("fig7 run");
        rep.section_rank_breakdown[sec].clone()
    };
    let vayu = grab(&presets::vayu());
    let dcc = grab(&presets::dcc());
    for r in 0..32 {
        t.row(vec![
            r.to_string(),
            fmt_secs(vayu[r].0),
            fmt_secs(vayu[r].1),
            fmt_secs(dcc[r].0),
            fmt_secs(dcc[r].1),
        ]);
    }
    t.note("paper: DCC shows communication in far greater proportion and a banded imbalance across ranks 8..23");
    t
}

/// One measured point of the fault sweep.
#[derive(Debug, Clone, Copy)]
pub struct FaultPoint {
    /// Fault-intensity multiplier applied to the platform preset.
    pub scale: f64,
    /// Time-to-solution without checkpointing (restart from scratch).
    pub plain_s: f64,
    /// Time-to-solution with coordinated checkpoint/restart.
    pub ckpt_s: f64,
    pub plain_restarts: u64,
    pub ckpt_restarts: u64,
    /// %wallclock the checkpointed run lost to faults and restarts.
    pub ckpt_fault_pct: f64,
}

/// Fault-intensity multipliers swept by [`faultsweep`]. Thinned generation
/// makes schedules nest across these: every event at scale `s` also exists
/// at every `s' > s`, so time-to-solution is monotone in the scale.
pub const FAULTSWEEP_SCALES: [f64; 5] = [0.0, 0.5, 1.0, 2.0, 4.0];

/// Calibration constant: preset per-hour rates are multiplied by
/// `FAULTSWEEP_CALIB * 3600 / t0` so a scale-1.0 run of fault-free length
/// `t0` sees `FAULTSWEEP_CALIB`x the preset's per-hour event budget —
/// enough events to measure, independent of how short the simulated job is.
pub const FAULTSWEEP_CALIB: f64 = 8.0;

/// Sweep one workload on one platform across fault scales, plain vs
/// checkpointed, with a shared fault schedule per scale (same seed, same
/// placement — the checkpoint ops don't perturb the fault timeline).
pub fn faultsweep_points(
    cfg: &ReproConfig,
    w: &dyn Workload,
    cluster: &ClusterSpec,
    np: usize,
    scales: &[f64],
) -> Vec<FaultPoint> {
    let (base, _) = Experiment::new(w, cluster, np)
        .seed(cfg.seed)
        .run_once()
        .expect("fault-free baseline");
    let t0 = base.elapsed_secs();
    let preset = FaultSpec::preset_for(cluster);
    let model = preset
        .model
        .with_rates_scaled(FAULTSWEEP_CALIB * 3600.0 / t0);
    // Checkpoint after every ~1/4 of the world collectives, writing 1 MiB
    // of state per rank.
    let colls = {
        let mut probe = w.build(np);
        let src = &mut probe.sources[0];
        let mut n = 0u64;
        while let Some(op) = src.next_op() {
            if matches!(op, Op::Coll(_)) {
                n += 1;
            }
        }
        n
    };
    let policy = CheckpointPolicy::new((colls / 4).max(1), 1 << 20);
    let ck = Checkpointed::new(w, policy);
    scales
        .iter()
        .map(|&scale| {
            let spec = FaultSpec {
                model: model.clone().scaled(scale),
                // A generous retry budget: transient crash windows are
                // survivable, only fatal preemptions force a restart.
                retry: RetryPolicy {
                    max_retries: 32,
                    max_delay_secs: 120.0,
                    ..RetryPolicy::default()
                },
                restart_delay_secs: (0.1 * t0).min(preset.restart_delay_secs),
                // Faults stop after ~50 fault-free runtimes: every run
                // terminates in bounded time even at the highest scale.
                horizon_secs: 50.0 * t0,
                recovery: RecoveryStrategy::Restart,
                sdc_threshold: 0.01,
            };
            let (plain, _) = Experiment::new(w, cluster, np)
                .seed(cfg.seed)
                .faults(spec.clone())
                .run_once()
                .expect("plain faulty run");
            let (ckpt, _) = Experiment::new(&ck, cluster, np)
                .seed(cfg.seed)
                .faults(spec)
                .run_once()
                .expect("checkpointed faulty run");
            FaultPoint {
                scale,
                plain_s: plain.elapsed_secs(),
                ckpt_s: ckpt.elapsed_secs(),
                plain_restarts: plain.restarts,
                ckpt_restarts: ckpt.restarts,
                ckpt_fault_pct: ckpt.fault_pct(),
            }
        })
        .collect()
}

/// Fault sweep: time-to-solution vs fault intensity for CG and MetUM at 16
/// ranks on the three platforms, with and without coordinated
/// checkpoint/restart. The fault models are the platform presets (Vayu:
/// rare node MTBF; DCC: vSwitch degradation + steal storms + NFS brownouts;
/// EC2: spot preemptions on top), rate-calibrated to each job's fault-free
/// runtime so every platform sees a comparable event budget.
pub fn faultsweep(cfg: &ReproConfig) -> Table {
    faultsweep_with(cfg, &SweepOpts::default())
}

/// The (workload, platform) grid shared by [`faultsweep_with`] and
/// [`recoverysweep_with`]: each cell rebuilds its workload from the config
/// (the trait objects don't cross threads; the constructors are cheap and
/// deterministic) and `eval` maps the cell's points to table rows.
fn fault_grid_rows<F>(cfg: &ReproConfig, opts: &SweepOpts, eval: F) -> Vec<Vec<String>>
where
    F: Fn(&dyn Workload, &ClusterSpec) -> Vec<Vec<String>> + Sync,
{
    const WORKLOADS: usize = 2;
    sweep(
        WORKLOADS * platforms().len(),
        opts,
        Vec::new,
        |cell, acc: &mut Vec<Vec<String>>| {
            let c = &platforms()[cell % platforms().len()];
            let rows = if cell / platforms().len() == 0 {
                eval(&Npb::new(Kernel::Cg, cfg.npb_class), c)
            } else {
                let metum = MetUm {
                    timesteps: cfg.metum_steps,
                };
                eval(&metum, c)
            };
            acc.extend(rows);
        },
        |total, part| total.extend(part),
    )
}

/// [`faultsweep`] with explicit sweep options (thread pinning in tests).
pub fn faultsweep_with(cfg: &ReproConfig, opts: &SweepOpts) -> Table {
    let mut t = Table::new(
        "Faultsweep — time-to-solution vs fault intensity at 16 ranks (plain vs checkpointed)",
        vec![
            "workload",
            "platform",
            "scale",
            "plain_s",
            "ckpt_s",
            "plain_restarts",
            "ckpt_restarts",
            "ckpt_fault_pct",
        ],
    );
    let rows = fault_grid_rows(cfg, opts, |w, c| {
        faultsweep_points(cfg, w, c, 16, &FAULTSWEEP_SCALES)
            .into_iter()
            .map(|p| {
                vec![
                    w.name(),
                    c.name.to_string(),
                    format!("{:.1}", p.scale),
                    fmt_secs(p.plain_s),
                    fmt_secs(p.ckpt_s),
                    p.plain_restarts.to_string(),
                    p.ckpt_restarts.to_string(),
                    fmt_pct(p.ckpt_fault_pct),
                ]
            })
            .collect()
    });
    for row in rows {
        t.row(row);
    }
    t.note("scale 0.0 is bit-identical to the fault-free run; schedules nest across scales, so TTS is monotone in the fault rate");
    t.note("checkpointing pays its overhead at low rates and wins once preemptions force restarts (EC2 spot)");
    t
}

/// One measured point of the recovery-strategy sweep.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPoint {
    /// Fault-intensity multiplier applied to the calibrated model.
    pub scale: f64,
    /// TTS with checkpoint/restart only (every detected corruption and
    /// every fatal fault relaunches the job).
    pub restart_s: f64,
    /// TTS with ABFT verification cuts and in-place rollback.
    pub abft_s: f64,
    /// TTS with ABFT cuts plus a spare-node pool (ULFM-style shrink).
    pub shrink_s: f64,
    /// Relaunches the restart-only run paid.
    pub restarts: u64,
    /// In-place rollbacks the ABFT run paid.
    pub rollbacks: u64,
    /// Spare splices the shrink run paid.
    pub shrinks: u64,
    /// Corruptions the ABFT run caught at a cut.
    pub sdc_detected: u64,
    /// Corruptions that escaped the ABFT run's detectors.
    pub sdc_undetected: u64,
}

/// SDC budget calibration for [`recoverysweep`]: at scale 1.0 a node on the
/// dcc preset sees this many silent flips per fault-free runtime; the other
/// platforms keep their preset ratios (vayu 4x cleaner ECC bare metal, ec2
/// 2x noisier spot hardware).
pub const RECOVERYSWEEP_SDC_PER_NODE: f64 = 1.0;

/// Sweep one workload on one platform across fault scales under the three
/// recovery strategies, with a shared fault schedule per scale (same seed —
/// neither checkpoint nor verify ops perturb the fault timeline):
///
/// * `restart` — coordinated checkpoint/restart only: corruption detected
///   at a checkpoint cut (and every fatal fault) relaunches the job;
/// * `abft` — verification cuts spliced between checkpoints; detected
///   corruption rolls the live ranks back to the last verified cut;
/// * `shrink` — as `abft`, plus a spare-node pool absorbing fatal faults
///   without a relaunch.
pub fn recoverysweep_points(
    cfg: &ReproConfig,
    w: &dyn Workload,
    cluster: &ClusterSpec,
    np: usize,
    scales: &[f64],
) -> Vec<RecoveryPoint> {
    let (base, _) = Experiment::new(w, cluster, np)
        .seed(cfg.seed)
        .run_once()
        .expect("fault-free baseline");
    let t0 = base.elapsed_secs();
    let preset = FaultSpec::preset_for(cluster);
    // Platform-relative SDC rate, calibrated (like the crash/preemption
    // rates) against the job's fault-free runtime so short simulated jobs
    // still see a measurable corruption budget.
    let sdc_rel = preset.model.clone().with_platform_sdc().sdc_per_node_hour
        / FaultModel::dcc().with_platform_sdc().sdc_per_node_hour;
    let model = preset
        .model
        .clone()
        .with_rates_scaled(FAULTSWEEP_CALIB * 3600.0 / t0)
        .with_sdc(RECOVERYSWEEP_SDC_PER_NODE * sdc_rel * 3600.0 / t0, 1.0);
    let colls = {
        let mut probe = w.build(np);
        let src = &mut probe.sources[0];
        let mut n = 0u64;
        while let Some(op) = src.next_op() {
            if matches!(op, Op::Coll(_)) {
                n += 1;
            }
        }
        n
    };
    // Checkpoints every ~1/4 of the run (as in [`faultsweep`]); verification
    // cuts twice as often — cheap checksum passes between checkpoints.
    let ckpt = CheckpointPolicy::new((colls / 4).max(1), 1 << 20);
    let vpol = VerifyPolicy::new((colls / 8).max(1), 1e7, 1 << 20);
    let verified = Verified::new(w, vpol);
    let restart_w = Checkpointed::new(w, ckpt);
    let abft_w = Checkpointed::new(&verified, ckpt);
    let spec_for = |scale: f64, recovery: RecoveryStrategy| FaultSpec {
        model: model.clone().scaled(scale),
        retry: RetryPolicy {
            max_retries: 32,
            max_delay_secs: 120.0,
            ..RetryPolicy::default()
        },
        restart_delay_secs: (0.1 * t0).min(preset.restart_delay_secs),
        horizon_secs: 50.0 * t0,
        recovery,
        sdc_threshold: 0.01,
    };
    scales
        .iter()
        .map(|&scale| {
            let (restart, _) = Experiment::new(&restart_w, cluster, np)
                .seed(cfg.seed)
                .faults(spec_for(scale, RecoveryStrategy::Restart))
                .run_once()
                .expect("restart-only run");
            let (abft, _) = Experiment::new(&abft_w, cluster, np)
                .seed(cfg.seed)
                .faults(spec_for(scale, RecoveryStrategy::AbftRollback))
                .run_once()
                .expect("abft run");
            let (shrink, _) = Experiment::new(&abft_w, cluster, np)
                .seed(cfg.seed)
                .faults(spec_for(
                    scale,
                    RecoveryStrategy::ShrinkSpare {
                        spares: 4,
                        respawn_delay_secs: 0.01 * t0,
                    },
                ))
                .run_once()
                .expect("shrink run");
            RecoveryPoint {
                scale,
                restart_s: restart.elapsed_secs(),
                abft_s: abft.elapsed_secs(),
                shrink_s: shrink.elapsed_secs(),
                restarts: restart.restarts,
                rollbacks: abft.rollbacks,
                shrinks: shrink.shrinks,
                sdc_detected: abft.sdc_detected,
                sdc_undetected: abft.sdc_undetected,
            }
        })
        .collect()
}

/// Recovery sweep: time-to-solution vs fault intensity for CG and MetUM at
/// 16 ranks on the three platforms under the three recovery strategies.
/// The headline result is the ABFT-vs-restart crossover: fault-free,
/// verification cuts are pure overhead and checkpoint/restart wins; once
/// silent corruption and preemptions bite (EC2 spot), rolling live ranks
/// back to a verified cut beats relaunching, and a spare pool beats both.
pub fn recoverysweep(cfg: &ReproConfig) -> Table {
    recoverysweep_with(cfg, &SweepOpts::default())
}

/// [`recoverysweep`] with explicit sweep options (thread pinning in tests).
pub fn recoverysweep_with(cfg: &ReproConfig, opts: &SweepOpts) -> Table {
    let mut t = Table::new(
        "Recoverysweep — TTS vs fault intensity at 16 ranks (restart vs ABFT rollback vs shrink+spare)",
        vec![
            "workload",
            "platform",
            "scale",
            "restart_s",
            "abft_s",
            "shrink_s",
            "restarts",
            "rollbacks",
            "shrinks",
            "sdc_det",
            "sdc_undet",
        ],
    );
    let rows = fault_grid_rows(cfg, opts, |w, c| {
        recoverysweep_points(cfg, w, c, 16, &FAULTSWEEP_SCALES)
            .into_iter()
            .map(|p| {
                vec![
                    w.name(),
                    c.name.to_string(),
                    format!("{:.1}", p.scale),
                    fmt_secs(p.restart_s),
                    fmt_secs(p.abft_s),
                    fmt_secs(p.shrink_s),
                    p.restarts.to_string(),
                    p.rollbacks.to_string(),
                    p.shrinks.to_string(),
                    p.sdc_detected.to_string(),
                    p.sdc_undetected.to_string(),
                ]
            })
            .collect()
    });
    for row in rows {
        t.row(row);
    }
    t.note("scale 0.0 is bit-identical to the fault-free checkpointed run; verification cuts are pure overhead there");
    t.note("under load the ABFT runs trade relaunches for in-place rollbacks; shrink+spare additionally absorbs fatal preemptions");
    t
}

/// One measured point of the scheduler sweep.
#[derive(Debug, Clone, Copy)]
pub struct SchedPoint {
    /// Offered load relative to the partition's capacity.
    pub load: f64,
    /// Last completion minus first submission.
    pub makespan_s: f64,
    pub mean_wait_s: f64,
    /// Total seconds of runtime added by link contention across the batch.
    pub inflation_s: f64,
    /// On-demand cost of the batch at the platform's price model.
    pub cost_dollars: f64,
    /// EASY/conservative invariant violations — must be 0 for those
    /// disciplines.
    pub head_delay_violations: usize,
}

/// Load factors swept by [`schedsweep`]: under-, at- and over-capacity.
pub const SCHEDSWEEP_LOADS: [f64; 3] = [0.7, 1.1, 1.5];

/// Nodes in the scheduled partition of each platform. Two vayu leaf
/// switches (radix 16), so placement has racks to choose between; the
/// single-switch clouds stay one big rack, where placement honestly
/// cannot dodge contention.
pub const SCHEDSWEEP_NODES: usize = 32;

/// Sweep one (platform, discipline, placement) cell over load factors:
/// a Lublin-style synthetic mix is pushed through [`simulate_site`] on a
/// 16-node partition with the platform's contention parameters, and the
/// batch-level metrics are read off the outcome set.
pub fn schedsweep_points(
    cfg: &ReproConfig,
    cluster: &ClusterSpec,
    n_jobs: usize,
    discipline: Discipline,
    placement: PlacementPolicy,
    loads: &[f64],
) -> Vec<SchedPoint> {
    let price = PriceModel::for_platform(cluster);
    loads
        .iter()
        .map(|&load| {
            let jobs = lublin_mix(n_jobs, SCHEDSWEEP_NODES, load, cfg.seed);
            let site = SiteConfig::new(
                NodePool::partition_of(cluster, SCHEDSWEEP_NODES),
                placement,
                discipline,
                ContentionParams::for_fabric(&cluster.topology.inter),
            );
            let res = simulate_site(&jobs, &site).expect("sweep mixes are valid");
            let cost = res
                .outcomes
                .iter()
                .map(|o| price.cost(jobs[o.id].nodes, o.end - o.start))
                .sum();
            SchedPoint {
                load,
                makespan_s: res.makespan,
                mean_wait_s: res.mean_wait,
                inflation_s: res.total_inflation,
                cost_dollars: cost,
                head_delay_violations: res.head_delay_violations,
            }
        })
        .collect()
}

/// Scheduler sweep: makespan, mean wait, contention inflation and batch
/// cost vs load for every discipline x placement pair on each platform's
/// 16-node partition. The headline results: backfilling cuts mean waits
/// hard at high load without delaying queue heads (violations stay 0),
/// and rack-aware placement buys back most of the contention inflation
/// that scattered placement pays on the cloud fabrics.
pub fn schedsweep(cfg: &ReproConfig) -> Table {
    schedsweep_with(cfg, &SweepOpts::default())
}

/// [`schedsweep`] with explicit sweep options (thread pinning in tests).
/// The grid fans out on [`sim_sweep::sweep`]; row order is the historical
/// nested-loop order (platform, then discipline, then placement, then
/// load) and the table text is bit-identical for every thread count.
pub fn schedsweep_with(cfg: &ReproConfig, opts: &SweepOpts) -> Table {
    let mut t = Table::new(
        "Schedsweep — makespan / mean wait / contention / cost vs load (discipline x placement)",
        vec![
            "platform",
            "discipline",
            "placement",
            "load",
            "makespan_s",
            "mean_wait_s",
            "inflation_s",
            "cost_$",
            "head_delays",
        ],
    );
    let disciplines = [Discipline::Fcfs, Discipline::Easy, Discipline::Conservative];
    let placements = [
        PlacementPolicy::Packed,
        PlacementPolicy::Scattered,
        PlacementPolicy::RackAware,
    ];
    let rows = sweep(
        platforms().len() * disciplines.len() * placements.len(),
        opts,
        Vec::new,
        |cell, acc: &mut Vec<Vec<String>>| {
            let c = &platforms()[cell / (disciplines.len() * placements.len())];
            let d = disciplines[(cell / placements.len()) % disciplines.len()];
            let p = placements[cell % placements.len()];
            for pt in schedsweep_points(cfg, c, 80, d, p, &SCHEDSWEEP_LOADS) {
                acc.push(vec![
                    c.name.to_string(),
                    d.name().to_string(),
                    p.name().to_string(),
                    fmt_ratio(pt.load),
                    fmt_secs(pt.makespan_s),
                    fmt_secs(pt.mean_wait_s),
                    fmt_secs(pt.inflation_s),
                    format!("{:.2}", pt.cost_dollars),
                    pt.head_delay_violations.to_string(),
                ]);
            }
        },
        |total, part| total.extend(part),
    );
    for row in rows {
        t.row(row);
    }
    t.note("EASY and conservative backfilling never delay the queue head (head_delays stays 0)");
    t.note("scattered placement maximizes shared links: inflation_s is its contention bill");
    t.note(
        "the same mix costs more where it runs longer — contention is a dollar figure on clouds",
    );
    t
}

/// The slot-capabilities scenario: a seeded Lublin mix dressed with every
/// capability only the slot-set engine provides — project quotas, a
/// dependency chain, moldable jobs, an advance reservation and a
/// rack-maintenance window. Shared by [`slot_capabilities`] and the golden
/// digests so the scenario can never drift from what is pinned.
pub fn slot_capabilities_jobs(seed: u64) -> Vec<SchedJob> {
    let mut jobs = lublin_mix(36, SCHEDSWEEP_NODES, 1.1, seed);
    for j in jobs.iter_mut() {
        j.project = Some((j.id % 3) as u32);
    }
    // A short dependency chain through the middle of the mix.
    jobs[12].deps = vec![6];
    jobs[24].deps = vec![12, 18];
    // A few moldable jobs: the declared shape plus a wide-fast and a
    // narrow-slow alternative (ideal scaling on nodes x runtime).
    for &id in &[4usize, 13, 22, 31] {
        let j = &mut jobs[id];
        let base = JobShape {
            nodes: j.nodes,
            runtime: j.runtime,
            walltime: j.walltime,
        };
        let wide = JobShape {
            nodes: (j.nodes * 2).min(SCHEDSWEEP_NODES / 2),
            runtime: j.runtime * 0.6,
            walltime: j.walltime * 0.6,
        };
        let narrow = JobShape {
            nodes: j.nodes.div_ceil(2),
            runtime: j.runtime * 1.8,
            walltime: j.walltime * 1.8,
        };
        j.shapes = vec![base, wide, narrow];
    }
    // An 8-node advance reservation at t=2500 (e.g. a debugging session
    // booked ahead of time).
    let mut resv = SchedJob::new(jobs.len(), 8, 0.0, 1500.0, 0.1).at(2500.0);
    resv.walltime = 1800.0;
    jobs.push(resv);
    jobs
}

/// Site configuration for the slot-capabilities scenario: project 0 capped
/// at 8 concurrent nodes, rack 0 down for maintenance over [4000, 5000).
pub fn slot_capabilities_site(cluster: &ClusterSpec) -> SiteConfig {
    SiteConfig::new(
        NodePool::partition_of(cluster, SCHEDSWEEP_NODES),
        PlacementPolicy::RackAware,
        Discipline::Easy,
        ContentionParams::for_fabric(&cluster.topology.inter),
    )
    .with_quota(QuotaRule {
        project: 0,
        max_nodes: 8,
        window: None,
    })
    .with_maintenance(Maintenance {
        begin: 4000.0,
        end: 5000.0,
        nodes: MaintNodes::Rack(0),
    })
}

/// Slot-set capabilities end to end: the scenario above on vayu's
/// partition, reported per job class with IPM-style attribution. The
/// reservation starts exactly on time, project 0 never exceeds its quota,
/// dependents start after their dependencies depart, and the maintenance
/// window pushes work off rack 0 — all under EASY with zero head delays.
pub fn slot_capabilities(cfg: &ReproConfig) -> Table {
    let cluster = presets::vayu();
    let jobs = slot_capabilities_jobs(cfg.seed);
    let site = slot_capabilities_site(&cluster);
    let res = simulate_site(&jobs, &site).expect("scenario is valid");
    let report = sched_report(cluster.name, &jobs, &res);
    let mut t = Table::new(
        "Slot-set capabilities — quotas, dependencies, moldable jobs, reservation, maintenance",
        vec![
            "job", "class", "nodes", "submit_s", "start_s", "end_s", "wait_s", "state",
        ],
    );
    for (j, (row, o)) in jobs.iter().zip(report.rows.iter().zip(&res.outcomes)) {
        t.row(vec![
            j.id.to_string(),
            row.kind.clone(),
            o.nodes.to_string(),
            fmt_secs(j.submit),
            fmt_secs(o.start),
            fmt_secs(o.end),
            fmt_secs(o.wait),
            if o.completed { "done" } else { "killed" }.to_string(),
        ]);
    }
    t.note(format!(
        "mean wait {:.1} s, makespan {:.1} s, head delays {} (must be 0 under EASY)",
        res.mean_wait, res.makespan, res.head_delay_violations
    ));
    t.note("resv starts exactly at 2500 s; rack 0 is idle over [4000, 5000)");
    t.note("project 0 (class p0) holds at most 8 nodes at any instant");
    t
}

/// Fault-intensity multipliers swept by [`faultsched`]: off (the
/// bit-identity anchor), the calibrated preset, and a harsh 4x.
pub const FAULTSCHED_SCALES: [f64; 3] = [0.0, 1.0, 4.0];

/// Target scheduler-visible fault events per fault-free makespan at scale
/// 1.0. Preset rates are per node-hour against datacenter-year MTBFs; a
/// one-hour synthetic batch would see almost nothing, so the sweep
/// calibrates rates against the fault-free makespan `t0` (same trick as
/// [`FAULTSWEEP_CALIB`]) and then scales from there.
pub const FAULTSCHED_CALIB: f64 = 16.0;

/// One measured point of the fault-tolerant scheduling sweep.
#[derive(Debug, Clone, Copy)]
pub struct FaultSchedPoint {
    pub scale: f64,
    pub makespan_s: f64,
    pub mean_wait_s: f64,
    pub crashes: usize,
    pub kills: usize,
    pub requeues: usize,
    pub drains: usize,
    /// Jobs that exhausted their crash-requeue budget.
    pub failed: usize,
    pub work_lost_s: f64,
    pub work_salvaged_s: f64,
}

/// Sweep one (platform, discipline) cell over fault intensities: the same
/// seeded Lublin mix runs fault-free to calibrate `t0`, then re-runs with
/// the platform's fault preset scaled so a scale-1.0 run expects
/// [`FAULTSCHED_CALIB`] events per `t0`, with checkpoint-aware requeues
/// (300 s interval, 30 s restore). Scale 0.0 routes through the fault
/// machinery with a null model — by construction bit-identical to the
/// plain run, which the golden digests pin.
pub fn faultsched_points(
    cfg: &ReproConfig,
    cluster: &ClusterSpec,
    discipline: Discipline,
    scales: &[f64],
) -> Vec<FaultSchedPoint> {
    let jobs = lublin_mix(60, SCHEDSWEEP_NODES, 1.1, cfg.seed);
    let site = || {
        SiteConfig::new(
            NodePool::partition_of(cluster, SCHEDSWEEP_NODES),
            PlacementPolicy::RackAware,
            discipline,
            ContentionParams::for_fabric(&cluster.topology.inter),
        )
    };
    let base = simulate_site(&jobs, &site()).expect("sweep mixes are valid");
    let t0 = base.makespan.max(1.0);
    let model = FaultModel::preset_for(cluster).with_rates_scaled(FAULTSCHED_CALIB * 3600.0 / t0);
    scales
        .iter()
        .map(|&s| {
            let faults = SiteFaults::preset_for(cluster, cfg.seed)
                .with_model(model.clone().scaled(s))
                .with_horizon(4.0 * t0)
                .with_requeue(RequeuePolicy::default().with_checkpoint(CheckpointSpec {
                    interval: 300.0,
                    restore_cost: 30.0,
                }));
            let res = simulate_site(&jobs, &site().with_faults(faults))
                .expect("fault sweep mixes are valid");
            FaultSchedPoint {
                scale: s,
                makespan_s: res.makespan,
                mean_wait_s: res.mean_wait,
                crashes: res.fault_stats.crashes,
                kills: res.fault_stats.kills,
                requeues: res.fault_stats.requeues,
                drains: res.fault_stats.drains,
                failed: res.outcomes.iter().filter(|o| !o.completed).count(),
                work_lost_s: res.fault_stats.work_lost_s,
                work_salvaged_s: res.fault_stats.work_salvaged_s,
            }
        })
        .collect()
}

/// Fault-tolerant scheduling sweep: fault intensity x discipline x
/// platform on each platform's 32-node partition. The headline results:
/// crashes stretch makespans far beyond the raw compute lost (repair
/// windows hold capacity hostage), checkpointed requeues keep terminal
/// failures at zero even at 4x intensity, and the short-MTTR cloud
/// absorbs crashes that cost the HPC platform an hour of repair each.
pub fn faultsched(cfg: &ReproConfig) -> Table {
    faultsched_with(cfg, &SweepOpts::default())
}

/// [`faultsched`] with explicit sweep options (thread pinning in tests).
/// Fans the (platform x discipline) grid out on [`sim_sweep::sweep`];
/// rows stay in the historical nested-loop order for every thread count.
pub fn faultsched_with(cfg: &ReproConfig, opts: &SweepOpts) -> Table {
    let mut t = Table::new(
        "Faultsched — crash/requeue/drain behaviour vs fault intensity (discipline x platform)",
        vec![
            "platform",
            "discipline",
            "scale",
            "makespan_s",
            "mean_wait_s",
            "crashes",
            "kills",
            "requeues",
            "drains",
            "failed",
            "lost_s",
            "salvaged_s",
        ],
    );
    let disciplines = [Discipline::Fcfs, Discipline::Easy, Discipline::Conservative];
    let rows = sweep(
        platforms().len() * disciplines.len(),
        opts,
        Vec::new,
        |cell, acc: &mut Vec<Vec<String>>| {
            let c = &platforms()[cell / disciplines.len()];
            let d = disciplines[cell % disciplines.len()];
            for pt in faultsched_points(cfg, c, d, &FAULTSCHED_SCALES) {
                acc.push(vec![
                    c.name.to_string(),
                    d.name().to_string(),
                    fmt_ratio(pt.scale),
                    fmt_secs(pt.makespan_s),
                    fmt_secs(pt.mean_wait_s),
                    pt.crashes.to_string(),
                    pt.kills.to_string(),
                    pt.requeues.to_string(),
                    pt.drains.to_string(),
                    pt.failed.to_string(),
                    fmt_secs(pt.work_lost_s),
                    fmt_secs(pt.work_salvaged_s),
                ]);
            }
        },
        |total, part| total.extend(part),
    );
    for row in rows {
        t.row(row);
    }
    t.note("scale 0.0 is bit-identical to the fault-free scheduler path (pinned by the golden digests)");
    t.note("rates calibrated so scale 1.0 expects ~16 scheduler-visible events per fault-free makespan");
    t.note("checkpointed requeues (300 s interval) keep terminal failures at 0; lost_s is the residual scratch work");
    t
}

/// Every figure and table, in paper order.
pub fn all_figures(cfg: &ReproConfig) -> Vec<Table> {
    let mut out = vec![
        fig1_osu_bandwidth(cfg),
        fig2_osu_latency(cfg),
        fig3_npb_serial(cfg),
    ];
    out.extend(fig4_npb_speedups(cfg));
    out.push(tab2_npb_comm(cfg));
    out.push(fig5_chaste(cfg));
    out.push(fig6_metum(cfg));
    out.push(tab3_metum(cfg));
    out.push(fig7_load_balance(cfg));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedsweep_backfill_beats_fcfs_without_head_delays() {
        let cfg = ReproConfig::quick();
        let c = presets::dcc();
        let load = [1.5];
        let easy = schedsweep_points(
            &cfg,
            &c,
            80,
            Discipline::Easy,
            PlacementPolicy::RackAware,
            &load,
        );
        let fcfs = schedsweep_points(
            &cfg,
            &c,
            80,
            Discipline::Fcfs,
            PlacementPolicy::RackAware,
            &load,
        );
        assert_eq!(easy[0].head_delay_violations, 0);
        assert_eq!(fcfs[0].head_delay_violations, 0);
        assert!(
            easy[0].mean_wait_s < fcfs[0].mean_wait_s,
            "easy {} vs fcfs {}",
            easy[0].mean_wait_s,
            fcfs[0].mean_wait_s
        );
    }

    #[test]
    fn schedsweep_rack_aware_pays_less_contention_than_scattered() {
        // Placement needs racks to choose between: only vayu's fat tree
        // has them (the single-switch clouds are one big rack).
        let cfg = ReproConfig::quick();
        let c = presets::vayu();
        let load = [1.1];
        let aware = schedsweep_points(
            &cfg,
            &c,
            80,
            Discipline::Easy,
            PlacementPolicy::RackAware,
            &load,
        );
        let scat = schedsweep_points(
            &cfg,
            &c,
            80,
            Discipline::Easy,
            PlacementPolicy::Scattered,
            &load,
        );
        assert!(
            aware[0].inflation_s < scat[0].inflation_s,
            "aware {} vs scattered {}",
            aware[0].inflation_s,
            scat[0].inflation_s
        );
    }

    #[test]
    fn fig1_quick_has_all_sizes_and_ordering() {
        let t = fig1_osu_bandwidth(&ReproConfig::quick());
        assert_eq!(t.rows.len(), osu_sizes().len());
        // Last row (4 MB): vayu > ec2 > dcc.
        let last = t.rows.last().unwrap();
        let dcc: f64 = last[1].parse().unwrap();
        let ec2: f64 = last[2].parse().unwrap();
        let vayu: f64 = last[3].parse().unwrap();
        assert!(vayu > ec2 && ec2 > dcc, "{last:?}");
    }

    #[test]
    fn fig3_quick_normalized_below_one() {
        let t = fig3_npb_serial(&ReproConfig::quick());
        assert_eq!(t.rows.len(), 8);
        for row in &t.rows {
            let vayu: f64 = row[4].parse().unwrap();
            assert!(vayu < 1.0, "{row:?}");
        }
    }

    #[test]
    fn fig4_quick_single_kernel() {
        let t = fig4_kernel(&ReproConfig::quick(), Kernel::Ep);
        // EP scales nearly linearly on Vayu at every np.
        for row in &t.rows {
            let np: f64 = row[0].parse().unwrap();
            let vayu: f64 = row[3].parse().unwrap();
            assert!(vayu > 0.85 * np, "{row:?}");
        }
    }

    #[test]
    fn faultsched_scale_zero_matches_the_fault_free_run() {
        let cfg = ReproConfig::quick();
        let c = presets::dcc();
        let jobs = lublin_mix(60, SCHEDSWEEP_NODES, 1.1, cfg.seed);
        let site = SiteConfig::new(
            NodePool::partition_of(&c, SCHEDSWEEP_NODES),
            PlacementPolicy::RackAware,
            Discipline::Easy,
            ContentionParams::for_fabric(&c.topology.inter),
        );
        let base = simulate_site(&jobs, &site).unwrap();
        let pts = faultsched_points(&cfg, &c, Discipline::Easy, &[0.0]);
        // Scale 0 nulls the model: the fault machinery never arms and the
        // makespan must match the plain run exactly, not just closely.
        assert_eq!(pts[0].makespan_s.to_bits(), base.makespan.to_bits());
        assert_eq!(pts[0].crashes, 0);
        assert_eq!(pts[0].kills, 0);
        assert_eq!(pts[0].failed, 0);
    }

    #[test]
    fn faultsched_is_deterministic_and_faults_cost_time() {
        let cfg = ReproConfig::quick();
        let c = presets::ec2();
        let a = faultsched_points(&cfg, &c, Discipline::Easy, &FAULTSCHED_SCALES);
        let b = faultsched_points(&cfg, &c, Discipline::Easy, &FAULTSCHED_SCALES);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.makespan_s.to_bits(), y.makespan_s.to_bits());
            assert_eq!(x.kills, y.kills);
            assert_eq!(x.requeues, y.requeues);
        }
        // The calibrated preset actually fires at scale 1.0...
        assert!(a[1].crashes > 0, "{:?}", a[1]);
        // ...and crash kills cost makespan over the fault-free anchor.
        assert!(a[1].makespan_s > a[0].makespan_s, "{a:?}");
    }

    #[test]
    fn faultsweep_scale_zero_is_bit_identical_to_fault_free() {
        let cfg = ReproConfig::quick();
        let w = Npb::new(Kernel::Cg, cfg.npb_class);
        let c = presets::ec2();
        let (base, _) = Experiment::new(&w, &c, 16)
            .seed(cfg.seed)
            .run_once()
            .unwrap();
        let pts = faultsweep_points(&cfg, &w, &c, 16, &[0.0]);
        // Not just close: scale 0 produces an empty schedule, so the engine
        // takes the fault-free hot path and the f64 must match exactly.
        assert_eq!(pts[0].plain_s.to_bits(), base.elapsed_secs().to_bits());
        assert_eq!(pts[0].plain_restarts, 0);
        assert_eq!(pts[0].ckpt_restarts, 0);
        assert_eq!(pts[0].ckpt_fault_pct, 0.0);
    }

    #[test]
    fn faultsweep_tts_monotone_in_scale() {
        let cfg = ReproConfig::quick();
        let w = Npb::new(Kernel::Cg, cfg.npb_class);
        for c in [presets::vayu(), presets::dcc(), presets::ec2()] {
            let pts = faultsweep_points(&cfg, &w, &c, 16, &FAULTSWEEP_SCALES);
            for pair in pts.windows(2) {
                // Thinned schedules nest across scales, so more scale means a
                // superset of fault events. Retry quantisation can shift when
                // a stalled rank wakes, so allow a 1% slack on the ordering.
                assert!(
                    pair[1].plain_s >= 0.99 * pair[0].plain_s,
                    "{} plain: {:?} -> {:?}",
                    c.name,
                    pair[0],
                    pair[1]
                );
                assert!(
                    pair[1].ckpt_s >= 0.99 * pair[0].ckpt_s,
                    "{} ckpt: {:?} -> {:?}",
                    c.name,
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn faultsweep_checkpoint_crossover_on_ec2_spot() {
        let cfg = ReproConfig::quick();
        let w = MetUm {
            timesteps: cfg.metum_steps,
        };
        let pts = faultsweep_points(&cfg, &w, &presets::ec2(), 16, &[0.0, 4.0]);
        // Fault-free, checkpointing is pure overhead...
        assert!(pts[0].ckpt_s >= pts[0].plain_s, "{:?}", pts[0]);
        // ...but once spot preemptions force restarts, resuming from the
        // last checkpoint beats replaying the whole job from scratch.
        assert!(pts[1].plain_restarts >= 1, "{:?}", pts[1]);
        assert!(pts[1].ckpt_s < pts[1].plain_s, "{:?}", pts[1]);
    }

    #[test]
    fn recoverysweep_scale_zero_is_bit_identical_to_fault_free() {
        let cfg = ReproConfig::quick();
        let w = Npb::new(Kernel::Cg, cfg.npb_class);
        let c = presets::ec2();
        let pts = recoverysweep_points(&cfg, &w, &c, 16, &[0.0]);
        // Reconstruct the fault-free checkpointed/verified baselines with
        // the same policies the sweep derives.
        let colls = {
            let mut probe = w.build(16);
            let src = &mut probe.sources[0];
            let mut n = 0u64;
            while let Some(op) = src.next_op() {
                if matches!(op, Op::Coll(_)) {
                    n += 1;
                }
            }
            n
        };
        let ckpt = CheckpointPolicy::new((colls / 4).max(1), 1 << 20);
        let vpol = VerifyPolicy::new((colls / 8).max(1), 1e7, 1 << 20);
        let verified = Verified::new(&w, vpol);
        let plain_ck = Checkpointed::new(&w, ckpt);
        let abft_ck = Checkpointed::new(&verified, ckpt);
        let (ck_base, _) = Experiment::new(&plain_ck, &c, 16)
            .seed(cfg.seed)
            .run_once()
            .unwrap();
        let (abft_base, _) = Experiment::new(&abft_ck, &c, 16)
            .seed(cfg.seed)
            .run_once()
            .unwrap();
        // Scale 0 empties the schedule: the engine takes the fault-free hot
        // path and every strategy's f64 must match its baseline exactly.
        let p = pts[0];
        assert_eq!(p.restart_s.to_bits(), ck_base.elapsed_secs().to_bits());
        assert_eq!(p.abft_s.to_bits(), abft_base.elapsed_secs().to_bits());
        assert_eq!(p.shrink_s.to_bits(), abft_base.elapsed_secs().to_bits());
        assert_eq!(p.restarts, 0);
        assert_eq!(p.rollbacks, 0);
        assert_eq!(p.shrinks, 0);
        assert_eq!(p.sdc_detected + p.sdc_undetected, 0);
    }

    #[test]
    fn recoverysweep_is_deterministic() {
        let cfg = ReproConfig::quick();
        let w = Npb::new(Kernel::Cg, cfg.npb_class);
        let c = presets::dcc();
        let a = recoverysweep_points(&cfg, &w, &c, 16, &[1.0, 4.0]);
        let b = recoverysweep_points(&cfg, &w, &c, 16, &[1.0, 4.0]);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.restart_s.to_bits(), y.restart_s.to_bits());
            assert_eq!(x.abft_s.to_bits(), y.abft_s.to_bits());
            assert_eq!(x.shrink_s.to_bits(), y.shrink_s.to_bits());
            assert_eq!(
                (x.restarts, x.rollbacks, x.shrinks),
                (y.restarts, y.rollbacks, y.shrinks)
            );
        }
    }

    #[test]
    fn recoverysweep_abft_crossover_on_ec2() {
        let cfg = ReproConfig::quick();
        let w = Npb::new(Kernel::Cg, cfg.npb_class);
        let pts = recoverysweep_points(&cfg, &w, &presets::ec2(), 16, &[0.0, 4.0]);
        // Fault-free, the verification cuts are pure overhead: plain
        // checkpoint/restart is at least as fast...
        assert!(pts[0].restart_s <= pts[0].abft_s, "{:?}", pts[0]);
        // ...but at spot-market fault intensity, rolling back to a verified
        // cut beats relaunching the job for every detected corruption.
        let p = pts[1];
        assert!(p.rollbacks >= 1, "{p:?}");
        assert!(p.sdc_detected >= 1, "{p:?}");
        assert!(p.abft_s < p.restart_s, "{p:?}");
        // The spare pool also absorbs EC2's preemptions: no slower than the
        // ABFT run that must fully relaunch on every fatal.
        assert!(p.shrink_s <= p.abft_s * 1.01, "{p:?}");
    }

    #[test]
    fn fig7_rows_cover_all_ranks() {
        let t = fig7_load_balance(&ReproConfig::quick());
        assert_eq!(t.rows.len(), 32);
        // DCC comm fraction exceeds Vayu's on average.
        let sum =
            |col: usize| -> f64 { t.rows.iter().map(|r| r[col].parse::<f64>().unwrap()).sum() };
        let vayu_ratio = sum(2) / (sum(1) + sum(2));
        let dcc_ratio = sum(4) / (sum(3) + sum(4));
        assert!(dcc_ratio > vayu_ratio, "dcc {dcc_ratio} vayu {vayu_ratio}");
    }
}
