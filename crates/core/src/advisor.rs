//! The cloud-bursting advisor.
//!
//! The paper's motivation section describes using ARRIVE-F-style online
//! profiles "to classify candidate workloads that could be run on a cloud
//! resource, rather than tying up resources at a peak HPC facility".
//! This module implements that classifier on top of the simulator: profile
//! a workload once, extract the communication/memory signature, then rank
//! the platforms by predicted time and by predicted cost.

use crate::experiment::Experiment;
use crate::pricing::PriceModel;
use crate::table::{fmt_pct, fmt_ratio, fmt_secs, Table};
use sim_ipm::IpmReport;
use sim_mpi::SimResult;
use sim_platform::{presets, ClusterSpec, Strategy};
use workloads::Workload;

/// The communication/memory signature the classifier keys on — the same
/// quantities IPM (and ARRIVE-F) extract from a live run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Fraction of walltime in MPI, 0..1.
    pub comm_frac: f64,
    /// Of the MPI time, the fraction in collectives, 0..1.
    pub collective_frac: f64,
    /// Fraction of walltime in file I/O, 0..1.
    pub io_frac: f64,
    /// Compute-time load imbalance, 0..1.
    pub imbalance: f64,
}

impl WorkloadProfile {
    /// Extract a profile from an instrumented run.
    pub fn from_run(result: &SimResult, report: &IpmReport) -> WorkloadProfile {
        WorkloadProfile {
            comm_frac: result.comm_pct() / 100.0,
            collective_frac: report.global.collective_frac(),
            io_frac: result.io_pct() / 100.0,
            imbalance: report.global.imbalance_pct() / 100.0,
        }
    }

    /// Cloud-friendliness score in 0..1 (1 = perfect cloud candidate).
    /// Communication — especially collective/small-message communication —
    /// and I/O are what commodity clouds punish (paper §V, related work
    /// "scientific applications with minimal communications and I/O make
    /// the best fit for cloud deployment").
    pub fn cloud_friendliness(&self) -> f64 {
        let comm_penalty = self.comm_frac * (1.0 + self.collective_frac);
        let io_penalty = 2.0 * self.io_frac;
        (1.0 - comm_penalty - io_penalty).clamp(0.0, 1.0)
    }

    /// Human-readable class, mirroring the paper's qualitative buckets.
    pub fn class(&self) -> &'static str {
        let s = self.cloud_friendliness();
        if s > 0.8 {
            "cloud-friendly"
        } else if s > 0.5 {
            "cloud-capable (private cloud or placement-tuned public cloud)"
        } else {
            "keep on the supercomputer"
        }
    }
}

/// One platform's predicted outcome for a job.
#[derive(Debug, Clone)]
pub struct PlatformForecast {
    pub platform: &'static str,
    pub elapsed_secs: f64,
    pub nodes: usize,
    pub on_demand_cost: f64,
    pub spot_cost: f64,
    pub comm_pct: f64,
}

/// A full recommendation.
#[derive(Debug, Clone)]
pub struct Recommendation {
    pub profile: WorkloadProfile,
    /// Forecasts sorted fastest-first.
    pub by_time: Vec<PlatformForecast>,
    /// Index into `by_time` of the cheapest on-demand option.
    pub cheapest: usize,
    /// Index into `by_time` of the fastest option (always 0).
    pub fastest: usize,
}

impl Recommendation {
    /// The fastest platform meeting `deadline_secs`, preferring the
    /// cheapest among those that do; `None` if nothing meets it.
    pub fn best_within_deadline(&self, deadline_secs: f64) -> Option<&PlatformForecast> {
        self.by_time
            .iter()
            .filter(|f| f.elapsed_secs <= deadline_secs)
            .min_by(|a, b| {
                a.on_demand_cost
                    .partial_cmp(&b.on_demand_cost)
                    .expect("finite costs")
            })
    }

    /// Render as a table.
    pub fn to_table(&self, title: &str) -> Table {
        let mut t = Table::new(
            title,
            vec![
                "platform",
                "elapsed_s",
                "nodes",
                "cost_$",
                "spot_$",
                "%comm",
            ],
        );
        for f in &self.by_time {
            t.row(vec![
                f.platform.to_string(),
                fmt_secs(f.elapsed_secs),
                f.nodes.to_string(),
                fmt_ratio(f.on_demand_cost),
                fmt_ratio(f.spot_cost),
                fmt_pct(f.comm_pct),
            ]);
        }
        t.note(format!(
            "profile: comm {:.0}%, collectives {:.0}% of MPI, io {:.0}%, imbalance {:.0}% -> {}",
            100.0 * self.profile.comm_frac,
            100.0 * self.profile.collective_frac,
            100.0 * self.profile.io_frac,
            100.0 * self.profile.imbalance,
            self.profile.class()
        ));
        t
    }
}

/// Strategy the advisor uses per platform: memory-aware packing on EC2 if
/// the workload declares a footprint, plain block otherwise.
fn strategy_for(w: &dyn Workload, cluster: &ClusterSpec, np: usize) -> Strategy {
    let mem = w.memory_per_rank_bytes(np);
    if mem > 0 && cluster.name == "ec2" {
        Strategy::BlockMemoryAware {
            per_rank_bytes: mem,
        }
    } else {
        Strategy::Block
    }
}

/// The process-wide advisor service the facade delegates to. Sharing one
/// instance means repeated `advise()` calls (and anything else going
/// through the service) amortize both the verdict cache and the pooled op
/// programs.
pub fn advisor_service() -> &'static sim_advisor::AdvisorService {
    static SERVICE: std::sync::OnceLock<sim_advisor::AdvisorService> = std::sync::OnceLock::new();
    SERVICE.get_or_init(sim_advisor::AdvisorService::new)
}

/// Profile `workload` at `np` ranks and forecast all three platforms.
///
/// Deprecated-by-delegation: describable workloads (NPB, MetUM, Chaste)
/// route through the [`sim_advisor::AdvisorService`] query cache — the
/// numbers are bit-identical to the original direct implementation
/// (pinned by the `tests/golden_advisor.txt` golden), repeats are cache
/// hits. Workloads without a canonical descriptor (wrappers,
/// micro-benchmarks) keep the original direct path.
pub fn advise(workload: &dyn Workload, np: usize) -> Recommendation {
    match workload.describe() {
        Some(desc) => {
            let advice = advisor_service()
                .recommend(desc.into(), np as u32)
                .expect("advisor run");
            let by_time = advice
                .ranked
                .iter()
                .map(|f| PlatformForecast {
                    platform: f.platform.name(),
                    elapsed_secs: f.verdict.elapsed_secs,
                    nodes: f.verdict.nodes as usize,
                    on_demand_cost: f.verdict.on_demand_cost,
                    spot_cost: f.verdict.spot_cost,
                    comm_pct: f.verdict.comm_pct,
                })
                .collect();
            Recommendation {
                profile: WorkloadProfile {
                    comm_frac: advice.profile.comm_frac,
                    collective_frac: advice.profile.collective_frac,
                    io_frac: advice.profile.io_frac,
                    imbalance: advice.profile.imbalance,
                },
                by_time,
                cheapest: advice.cheapest,
                fastest: advice.fastest,
            }
        }
        None => advise_direct(workload, np),
    }
}

/// The original in-place implementation, kept for workloads the service
/// cannot content-address.
fn advise_direct(workload: &dyn Workload, np: usize) -> Recommendation {
    let clusters = [presets::vayu(), presets::dcc(), presets::ec2()];
    let mut forecasts = Vec::new();
    let mut profile: Option<WorkloadProfile> = None;
    for c in &clusters {
        let (res, rep) = Experiment::new(workload, c, np)
            .strategy(strategy_for(workload, c, np))
            .repeats(1)
            .run_once()
            .expect("advisor run");
        if c.name == "vayu" {
            profile = Some(WorkloadProfile::from_run(&res, &rep));
        }
        let price = PriceModel::for_platform(c);
        let nodes = res.placement.nodes_used();
        forecasts.push(PlatformForecast {
            platform: c.name,
            elapsed_secs: res.elapsed_secs(),
            nodes,
            on_demand_cost: price.cost(nodes, res.elapsed_secs()),
            spot_cost: price.spot_cost(nodes, res.elapsed_secs()),
            comm_pct: res.comm_pct(),
        });
    }
    forecasts.sort_by(|a, b| {
        a.elapsed_secs
            .partial_cmp(&b.elapsed_secs)
            .expect("finite times")
    });
    let cheapest = forecasts
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.on_demand_cost
                .partial_cmp(&b.on_demand_cost)
                .expect("finite costs")
        })
        .map(|(i, _)| i)
        .expect("three forecasts");
    Recommendation {
        profile: profile.expect("vayu profiled"),
        by_time: forecasts,
        cheapest,
        fastest: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{Class, Kernel, Npb};

    #[test]
    fn ep_classified_cloud_friendly() {
        let rec = advise(&Npb::new(Kernel::Ep, Class::W), 16);
        assert!(rec.profile.cloud_friendliness() > 0.9, "{:?}", rec.profile);
        assert_eq!(rec.profile.class(), "cloud-friendly");
    }

    #[test]
    fn is_classified_hpc_bound_at_scale() {
        let rec = advise(&Npb::new(Kernel::Is, Class::W), 64);
        // IS at 64 ranks has significant collective comm even on Vayu.
        assert!(rec.profile.comm_frac > 0.2, "{:?}", rec.profile);
        assert!(rec.profile.cloud_friendliness() < 0.6);
    }

    #[test]
    fn fastest_is_vayu_for_comm_bound() {
        let rec = advise(&Npb::new(Kernel::Cg, Class::W), 32);
        assert_eq!(rec.by_time[rec.fastest].platform, "vayu");
        // And the time ordering is strict: vayu < ec2/dcc.
        assert!(rec.by_time[0].elapsed_secs < rec.by_time[1].elapsed_secs);
    }

    #[test]
    fn deadline_logic() {
        let rec = advise(&Npb::new(Kernel::Ep, Class::W), 16);
        // A generous deadline admits everything; the pick is the cheapest.
        let lax = rec.best_within_deadline(f64::INFINITY).unwrap();
        let min_cost = rec
            .by_time
            .iter()
            .map(|f| f.on_demand_cost)
            .fold(f64::INFINITY, f64::min);
        assert!((lax.on_demand_cost - min_cost).abs() < 1e-12);
        // An impossible deadline admits nothing.
        assert!(rec.best_within_deadline(1e-9).is_none());
    }

    #[test]
    fn recommendation_table_renders() {
        let rec = advise(&Npb::new(Kernel::Mg, Class::S), 8);
        let t = rec.to_table("advice: mg.S @ 8");
        assert_eq!(t.rows.len(), 3);
        assert!(t.to_text().contains("profile:"));
    }

    #[test]
    fn delegated_advise_is_bit_identical_to_direct() {
        // The service-backed path must reproduce the original direct
        // implementation exactly — elapsed, dollars, ordering, indices.
        for (kernel, np) in [(Kernel::Cg, 16usize), (Kernel::Ep, 8), (Kernel::Is, 32)] {
            let w = Npb::new(kernel, Class::S);
            let via_service = advise(&w, np);
            let direct = advise_direct(&w, np);
            assert_eq!(via_service.cheapest, direct.cheapest, "{kernel:?}");
            assert_eq!(via_service.fastest, direct.fastest);
            assert_eq!(via_service.profile, direct.profile);
            assert_eq!(via_service.by_time.len(), direct.by_time.len());
            for (a, b) in via_service.by_time.iter().zip(&direct.by_time) {
                assert_eq!(a.platform, b.platform);
                assert_eq!(a.elapsed_secs.to_bits(), b.elapsed_secs.to_bits());
                assert_eq!(a.nodes, b.nodes);
                assert_eq!(a.on_demand_cost.to_bits(), b.on_demand_cost.to_bits());
                assert_eq!(a.spot_cost.to_bits(), b.spot_cost.to_bits());
                assert_eq!(a.comm_pct.to_bits(), b.comm_pct.to_bits());
            }
        }
    }

    #[test]
    fn friendliness_bounds() {
        let p = WorkloadProfile {
            comm_frac: 0.0,
            collective_frac: 0.0,
            io_frac: 0.0,
            imbalance: 0.0,
        };
        assert_eq!(p.cloud_friendliness(), 1.0);
        let q = WorkloadProfile {
            comm_frac: 0.9,
            collective_frac: 1.0,
            io_frac: 0.5,
            imbalance: 0.0,
        };
        assert_eq!(q.cloud_friendliness(), 0.0);
    }
}
