//! The experiment runner: repeats, min-of-N, and parallel sweeps.
//!
//! The paper's methodology: "Each run was repeated 5 times, with the minimum
//! time being used for the results." [`Experiment`] reproduces that —
//! repeats differ only in the noise-model seed — and [`parallel_map`] fans a
//! sweep out over OS threads (the simulator itself is single-threaded and
//! deterministic per run).

use sim_faults::FaultSpec;
use sim_ipm::{profile_run, IpmReport};
use sim_mpi::{Background, SimConfig, SimError, SimResult};
use sim_platform::{ClusterSpec, Strategy};
use workloads::Workload;

/// Number of repeats the paper uses.
pub const PAPER_REPEATS: usize = 5;

/// One experiment: a workload on a platform at a rank count.
pub struct Experiment<'a> {
    pub workload: &'a dyn Workload,
    pub cluster: &'a ClusterSpec,
    pub np: usize,
    pub strategy: Strategy,
    pub repeats: usize,
    pub base_seed: u64,
    pub faults: Option<FaultSpec>,
    pub background: Option<Background>,
}

impl<'a> Experiment<'a> {
    pub fn new(workload: &'a dyn Workload, cluster: &'a ClusterSpec, np: usize) -> Self {
        Experiment {
            workload,
            cluster,
            np,
            strategy: Strategy::Block,
            repeats: PAPER_REPEATS,
            base_seed: 0x5EED_0000,
            faults: None,
            background: None,
        }
    }

    pub fn strategy(mut self, s: Strategy) -> Self {
        self.strategy = s;
        self
    }

    pub fn repeats(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.repeats = n;
        self
    }

    pub fn seed(mut self, s: u64) -> Self {
        self.base_seed = s;
        self
    }

    /// Inject faults: each run consults a fault schedule derived from the
    /// run's seed, so repeats see different fault realisations, exactly as
    /// they see different noise.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Run against a co-tenant background load: the engine degrades the
    /// cluster's inter-node fabric by the contention multiplier. `None`
    /// (the default) is an exact no-op.
    pub fn background(mut self, bg: Background) -> Self {
        self.background = Some(bg);
        self
    }

    /// Run all repeats and return the minimum-walltime run (result +
    /// profile), per the paper's methodology: "Each run was repeated 5
    /// times, with the minimum time being used for the results."
    ///
    /// Min-of-N is a *jitter filter*, not an average: OS noise, hypervisor
    /// steal and congestion only ever add time to a run, so the minimum over
    /// repeats is the best available estimate of the platform's intrinsic
    /// (noise-free) performance, and its bias shrinks as N grows. A mean
    /// would fold the noise tail into every reported number. Repeats here
    /// differ only in the noise-model seed (`base_seed + rep`); with faults
    /// injected the same logic picks the luckiest fault realisation, which
    /// mirrors what re-running a preempted cloud job does in practice.
    ///
    /// The job's op programs are built once and rewound between repetitions
    /// — no trace is cloned or re-materialized.
    pub fn run_min(&self) -> Result<(SimResult, IpmReport), SimError> {
        let mut job = self.workload.build(self.np);
        let mut best: Option<(SimResult, IpmReport)> = None;
        for rep in 0..self.repeats {
            let cfg = SimConfig {
                seed: self.base_seed.wrapping_add(rep as u64),
                strategy: self.strategy,
                validate: rep == 0, // structure is identical across repeats
                faults: self.faults.clone(),
                background: self.background,
            };
            let (result, report) = profile_run(&mut job, self.cluster, &cfg)?;
            let better = best
                .as_ref()
                .is_none_or(|(b, _)| result.elapsed < b.elapsed);
            if better {
                best = Some((result, report));
            }
        }
        Ok(best.expect("at least one repeat"))
    }

    /// Run once with the base seed (cheaper; used for %comm-style metrics
    /// that the paper reports from an instrumented run, not a minimum).
    pub fn run_once(&self) -> Result<(SimResult, IpmReport), SimError> {
        let mut job = self.workload.build(self.np);
        let cfg = SimConfig {
            seed: self.base_seed,
            strategy: self.strategy,
            validate: true,
            faults: self.faults.clone(),
            background: self.background,
        };
        profile_run(&mut job, self.cluster, &cfg)
    }
}

/// Map `f` over `items` on a pool of worker threads, preserving order.
/// Sweeps in the figure drivers are embarrassingly parallel; each item is
/// itself a full deterministic simulation.
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let work: Vec<(usize, I)> = items.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(work);
    let results = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let item = queue.lock().unwrap().pop();
                let Some((idx, item)) = item else { break };
                let out = f(item);
                results.lock().unwrap()[idx] = Some(out);
            });
        }
    });
    slots.into_iter().map(|s| s.expect("slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_platform::presets;
    use workloads::{Class, Kernel, Npb};

    #[test]
    fn run_min_is_no_worse_than_single_runs() {
        let w = Npb::new(Kernel::Cg, Class::S);
        let c = presets::dcc();
        let exp = Experiment::new(&w, &c, 16).repeats(4);
        let (best, _) = exp.run_min().unwrap();
        for rep in 0..4u64 {
            let one = Experiment::new(&w, &c, 16)
                .repeats(1)
                .seed(0x5EED_0000 + rep);
            let (r, _) = one.run_min().unwrap();
            assert!(best.elapsed <= r.elapsed, "rep {rep}");
        }
    }

    #[test]
    fn rewound_repeats_are_bit_identical_to_fresh_builds() {
        // run_min builds the op programs once and rewinds them between
        // repeats; every repeat must be bit-identical to a fresh build run
        // at the same seed, so the reported minimum is exactly the minimum
        // over independent runs.
        let w = Npb::new(Kernel::Mg, Class::S);
        let c = presets::dcc();
        let (best, _) = Experiment::new(&w, &c, 8).repeats(3).run_min().unwrap();
        let fresh_min = (0..3u64)
            .map(|rep| {
                let one = Experiment::new(&w, &c, 8)
                    .repeats(1)
                    .seed(0x5EED_0000 + rep);
                one.run_min().unwrap().0.elapsed
            })
            .min()
            .unwrap();
        assert_eq!(best.elapsed, fresh_min);
    }

    #[test]
    fn run_once_is_deterministic() {
        let w = Npb::new(Kernel::Ft, Class::S);
        let c = presets::ec2();
        let a = Experiment::new(&w, &c, 8).run_once().unwrap().0.elapsed;
        let b = Experiment::new(&w, &c, 8).run_once().unwrap().0.elapsed;
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as i32);
        }
    }

    #[test]
    fn parallel_map_matches_serial_simulation() {
        let w = Npb::new(Kernel::Is, Class::S);
        let c = presets::vayu();
        let nps = vec![2usize, 4, 8];
        let par = parallel_map(nps.clone(), |np| {
            Experiment::new(&w, &c, np).run_once().unwrap().0.elapsed
        });
        for (np, p) in nps.into_iter().zip(par) {
            let s = Experiment::new(&w, &c, np).run_once().unwrap().0.elapsed;
            assert_eq!(p, s, "np={np}");
        }
    }
}
