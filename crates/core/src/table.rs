//! Plain-text and CSV tables for the figure/table reproductions.

use std::fmt::Write as _;

/// A rectangular results table with a title and optional footnotes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: Vec<&str>) -> Table {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Append a footnote shown under the table.
    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// Column-aligned text rendering.
    pub fn to_text(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let sep = if i + 1 == ncol { "\n" } else { "  " };
                let _ = write!(out, "{:>width$}{}", c, sep, width = widths[i]);
            }
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  * {n}");
        }
        out
    }

    /// RFC-4180-ish CSV rendering (quotes only when needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Format seconds with sensible precision for report cells.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.3}")
    }
}

/// Format a ratio / speedup.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}")
}

/// Format a percentage.
pub fn fmt_pct(p: f64) -> String {
    format!("{p:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", vec!["np", "vayu", "dcc"]);
        t.row(vec!["8".into(), "1.0".into(), "1.5".into()]);
        t.row(vec!["16".into(), "2.0".into(), "2.6".into()]);
        t.note("paper values in parentheses");
        t
    }

    #[test]
    fn text_contains_everything() {
        let text = sample().to_text();
        assert!(text.contains("## demo"));
        assert!(text.contains("vayu"));
        assert!(text.contains("2.6"));
        assert!(text.contains("* paper values"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", vec!["a"]);
        t.row(vec!["hello, world".into()]);
        assert!(t.to_csv().contains("\"hello, world\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("x", vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(1696.9), "1697");
        assert_eq!(fmt_secs(8.6), "8.6");
        assert_eq!(fmt_secs(0.0123), "0.012");
        assert_eq!(fmt_ratio(1.3712), "1.37");
        assert_eq!(fmt_pct(68.34), "68.3");
    }
}
