//! Terminal line charts for the figure reproductions.
//!
//! The paper's figures are log-log bandwidth/latency curves and speedup
//! plots; `AsciiChart` renders the same series in a terminal so
//! `figures --plot` can show the *shape* directly, without leaving the
//! shell. Pure string output, no dependencies.

/// Marker characters assigned to series in order.
const MARKERS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// A 2-D line chart rendered to text.
#[derive(Debug, Clone)]
pub struct AsciiChart {
    pub title: String,
    pub width: usize,
    pub height: usize,
    pub x_log: bool,
    pub y_log: bool,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl AsciiChart {
    pub fn new(title: impl Into<String>) -> AsciiChart {
        AsciiChart {
            title: title.into(),
            width: 64,
            height: 20,
            x_log: false,
            y_log: false,
            series: Vec::new(),
        }
    }

    /// Use log-scale axes (both), like the paper's Figs 1-2.
    pub fn log_log(mut self) -> Self {
        self.x_log = true;
        self.y_log = true;
        self
    }

    /// Add one named series. Non-positive values are dropped on log axes.
    pub fn series(mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        self.series.push((name.into(), points));
        self
    }

    fn tx(&self, v: f64) -> f64 {
        if self.x_log {
            v.log10()
        } else {
            v
        }
    }

    fn ty(&self, v: f64) -> f64 {
        if self.y_log {
            v.log10()
        } else {
            v
        }
    }

    /// Render the chart.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64, usize)> = self
            .series
            .iter()
            .enumerate()
            .flat_map(|(si, (_, pts))| {
                pts.iter()
                    .filter(|(x, y)| (!self.x_log || *x > 0.0) && (!self.y_log || *y > 0.0))
                    .map(move |(x, y)| (self.tx(*x), self.ty(*y), si))
                    .collect::<Vec<_>>()
            })
            .collect();
        if pts.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        let (mut x0, mut x1, mut y0, mut y1) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for (x, y, _) in &pts {
            x0 = x0.min(*x);
            x1 = x1.max(*x);
            y0 = y0.min(*y);
            y1 = y1.max(*y);
        }
        if (x1 - x0).abs() < f64::MIN_POSITIVE {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < f64::MIN_POSITIVE {
            y1 = y0 + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (x, y, si) in &pts {
            let cx = (((x - x0) / (x1 - x0)) * (self.width - 1) as f64).round() as usize;
            let cy = (((y - y0) / (y1 - y0)) * (self.height - 1) as f64).round() as usize;
            let row = self.height - 1 - cy;
            grid[row][cx] = MARKERS[si % MARKERS.len()];
        }
        let untx = |v: f64| if self.x_log { 10f64.powf(v) } else { v };
        let unty = |v: f64| if self.y_log { 10f64.powf(v) } else { v };
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        for (i, row) in grid.iter().enumerate() {
            // Left axis label on the top, middle and bottom rows.
            let label = if i == 0 {
                format!("{:>9.3}", unty(y1))
            } else if i == self.height - 1 {
                format!("{:>9.3}", unty(y0))
            } else if i == self.height / 2 {
                format!("{:>9.3}", unty(y0 + (y1 - y0) / 2.0))
            } else {
                " ".repeat(9)
            };
            out.push_str(&label);
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&" ".repeat(9));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "{:>10}{:<w$}{:>8.4}\n",
            format!("{:.4} ", untx(x0)),
            "",
            untx(x1),
            w = self.width.saturating_sub(12)
        ));
        // Legend.
        out.push_str(&" ".repeat(10));
        for (si, (name, _)) in self.series.iter().enumerate() {
            out.push_str(&format!("{} {}   ", MARKERS[si % MARKERS.len()], name));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_linear_series() {
        let c = AsciiChart::new("speedup")
            .series("vayu", vec![(1.0, 1.0), (2.0, 2.0), (4.0, 4.0)])
            .series("dcc", vec![(1.0, 1.0), (2.0, 1.5), (4.0, 1.8)]);
        let out = c.render();
        assert!(out.contains("speedup"));
        assert!(out.contains("* vayu"));
        assert!(out.contains("o dcc"));
        // The top-right cell region should contain vayu's marker (highest y
        // at highest x).
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].trim_end().ends_with('*'), "{out}");
    }

    #[test]
    fn log_axes_drop_nonpositive() {
        let c = AsciiChart::new("lat")
            .log_log()
            .series("a", vec![(0.0, 5.0), (10.0, 100.0), (100.0, 1000.0)]);
        let out = c.render();
        // Two valid points survive; render doesn't panic and shows markers.
        assert!(out.matches('*').count() >= 2);
    }

    #[test]
    fn empty_chart_is_graceful() {
        let out = AsciiChart::new("nothing").render();
        assert!(out.contains("(no data)"));
    }

    #[test]
    fn single_point_does_not_divide_by_zero() {
        let out = AsciiChart::new("p").series("s", vec![(3.0, 7.0)]).render();
        assert!(out.contains('*'));
    }

    #[test]
    fn axis_labels_reflect_data_range() {
        let out = AsciiChart::new("r")
            .series("s", vec![(1.0, 10.0), (5.0, 50.0)])
            .render();
        assert!(out.contains("50.000"), "{out}");
        assert!(out.contains("10.000"), "{out}");
    }
}
