//! Cross-job link contention.
//!
//! When several jobs share an interconnect link — a leaf switch's uplink,
//! a vSwitch, a placement group's fabric — each one sees the link's
//! effective LogGP terms degrade. This module is the *single* model of
//! that effect, shared by two layers:
//!
//! * the MPI engine (`sim-mpi`) degrades a run's inter-node fabric by the
//!   multiplier when a background co-tenant load is configured, and
//! * the cluster scheduler (`sim-sched`) uses the same multiplier
//!   analytically to inflate the communication fraction of co-located
//!   jobs' runtimes.
//!
//! Keeping one formula in one place is what lets the scheduler's analytic
//! model be validated against the engine (see the cross-validation test in
//! `tests/sched_invariants.rs`).

use crate::params::FabricParams;

/// Parameters of the linear-in-sharers contention model.
///
/// A link with `s` *other* communication-active tenants slows each
/// tenant's traffic by `1 + beta * s`, capped at `cap`. The linear shape
/// matches the regime the paper's platforms operate in (far from wire
/// saturation, software packet paths dominate); the cap models the floor
/// that per-flow fair-sharing puts under throughput collapse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionParams {
    /// Slowdown added per co-tenant communication-active flow.
    pub beta: f64,
    /// Upper bound on the multiplier (>= 1).
    pub cap: f64,
}

impl ContentionParams {
    /// No cross-job interference at all (`multiplier` is constant 1).
    pub const NONE: ContentionParams = ContentionParams {
        beta: 0.0,
        cap: 1.0,
    };

    /// Derive contention sensitivity from a fabric's bandwidth: slow
    /// software-switched fabrics (DCC's vSwitch GigE) degrade steeply per
    /// co-tenant, hardware-offloaded fat fabrics (Vayu's QDR IB) barely
    /// notice a neighbour. `beta = sqrt(5e7 / bandwidth)`, clamped to
    /// [0.02, 0.6]: ~0.63→0.6 for 1 GigE-class, ~0.2 for virtualized
    /// 10 GigE, ~0.12 for QDR IB.
    pub fn for_fabric(fabric: &FabricParams) -> ContentionParams {
        let beta = (5.0e7 / fabric.bandwidth).sqrt().clamp(0.02, 0.6);
        ContentionParams { beta, cap: 2.5 }
    }

    /// The slowdown multiplier seen with `sharers` *other* active tenants
    /// on the link. `sharers` may be fractional (a tenant that spends only
    /// part of its time communicating counts pro rata).
    pub fn multiplier(&self, sharers: f64) -> f64 {
        if self.beta <= 0.0 || sharers <= 0.0 {
            return 1.0;
        }
        (1.0 + self.beta * sharers).min(self.cap.max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_tenant_is_exactly_uncontended() {
        let p = ContentionParams::for_fabric(&FabricParams::gige_vswitch());
        assert_eq!(p.multiplier(0.0), 1.0);
        assert_eq!(ContentionParams::NONE.multiplier(7.0), 1.0);
    }

    #[test]
    fn multiplier_monotone_and_capped() {
        let p = ContentionParams::for_fabric(&FabricParams::ten_gige_virt());
        let mut last = 1.0;
        for s in 0..40 {
            let m = p.multiplier(s as f64);
            assert!(m >= last);
            assert!(m <= p.cap);
            last = m;
        }
        assert_eq!(p.multiplier(1000.0), p.cap);
    }

    #[test]
    fn slower_fabrics_are_more_contention_sensitive() {
        let ib = ContentionParams::for_fabric(&FabricParams::qdr_infiniband());
        let ten = ContentionParams::for_fabric(&FabricParams::ten_gige_virt());
        let gige = ContentionParams::for_fabric(&FabricParams::gige_vswitch());
        assert!(ib.beta < ten.beta);
        assert!(ten.beta < gige.beta);
    }
}
