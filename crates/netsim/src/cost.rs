//! Point-to-point message cost algebra.
//!
//! These functions turn a [`FabricParams`] bundle and a payload size into the
//! LogGP-style quantities the MPI runtime needs: sender CPU occupancy, wire
//! time, end-to-end one-way time, and the protocol (eager vs rendezvous)
//! decision. Jitter is *not* applied here — the runtime samples it per
//! message so that repeats differ — but an `expected_*` variant is provided
//! for analytic tests.

use crate::params::FabricParams;

/// Which wire protocol a payload uses on a given fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Message is pushed immediately and buffered at the receiver.
    Eager,
    /// Sender and receiver handshake first; transfer is synchronous.
    Rendezvous,
}

/// Decide the protocol for a payload.
pub fn protocol(fabric: &FabricParams, bytes: usize) -> Protocol {
    if bytes <= fabric.eager_threshold {
        Protocol::Eager
    } else {
        Protocol::Rendezvous
    }
}

/// Sender-side CPU occupancy for a message: fixed overhead plus per-byte copy
/// cost. While this elapses the sending rank cannot do anything else, and the
/// node NIC is busy.
pub fn send_occupancy(fabric: &FabricParams, bytes: usize) -> f64 {
    fabric.send_overhead + bytes as f64 * fabric.per_byte_cpu
}

/// Receiver-side CPU occupancy (symmetric model).
pub fn recv_occupancy(fabric: &FabricParams, bytes: usize) -> f64 {
    fabric.recv_overhead + bytes as f64 * fabric.per_byte_cpu
}

/// Pure wire time for the payload: serialization at wire bandwidth plus
/// per-packet overheads.
pub fn wire_time(fabric: &FabricParams, bytes: usize) -> f64 {
    bytes as f64 / fabric.bandwidth + fabric.packets(bytes) as f64 * fabric.per_packet_overhead
}

/// End-to-end one-way transfer time for an *isolated* message once the sender
/// begins: send occupancy, wire latency, serialization and receive occupancy.
/// Rendezvous adds the handshake.
pub fn one_way_time(fabric: &FabricParams, bytes: usize) -> f64 {
    let base = send_occupancy(fabric, bytes)
        + fabric.latency
        + wire_time(fabric, bytes)
        + recv_occupancy(fabric, bytes);
    match protocol(fabric, bytes) {
        Protocol::Eager => base,
        Protocol::Rendezvous => base + fabric.rendezvous_overhead,
    }
}

/// Expected one-way time including the jitter model's mean contribution.
pub fn expected_one_way_time(fabric: &FabricParams, bytes: usize) -> f64 {
    one_way_time(fabric, bytes) + fabric.jitter.expected()
}

/// Half round-trip of a ping-pong, i.e. what the OSU latency benchmark
/// reports for one message size (without jitter).
pub fn pingpong_half_rtt(fabric: &FabricParams, bytes: usize) -> f64 {
    one_way_time(fabric, bytes)
}

/// Steady-state unidirectional bandwidth (bytes/s) for back-to-back windowed
/// sends, i.e. what the OSU bandwidth benchmark converges to for large
/// windows: the reciprocal of per-message marginal cost.
pub fn streaming_bandwidth(fabric: &FabricParams, bytes: usize) -> f64 {
    // Back-to-back messages pipeline through the sender CPU and the wire;
    // the sustained rate is set by the slower stage. On the virtualized
    // platforms the host copy path (emulated vNIC / Xen netfront) is that
    // stage, capping measured bandwidth well below wire rate.
    let per_msg = send_occupancy(fabric, bytes).max(wire_time(fabric, bytes));
    bytes as f64 / per_msg
}

/// Effective bandwidth when `sharers` ranks on one node push through the same
/// NIC concurrently (e.g. an all-to-all). The wire and the host copy path are
/// both shared resources.
pub fn shared_wire_time(fabric: &FabricParams, bytes: usize, sharers: usize) -> f64 {
    wire_time(fabric, bytes) * sharers.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_switch_at_threshold() {
        let f = FabricParams::qdr_infiniband();
        assert_eq!(protocol(&f, f.eager_threshold), Protocol::Eager);
        assert_eq!(protocol(&f, f.eager_threshold + 1), Protocol::Rendezvous);
    }

    #[test]
    fn one_way_time_monotone_in_size() {
        for f in [
            FabricParams::qdr_infiniband(),
            FabricParams::ten_gige_virt(),
            FabricParams::gige_vswitch(),
            FabricParams::shared_memory(),
        ] {
            let mut last = 0.0;
            for bytes in [1usize, 64, 1024, 16 * 1024, 256 * 1024, 4 << 20] {
                let t = one_way_time(&f, bytes);
                assert!(t >= last, "{}: {} bytes regressed", f.name, bytes);
                last = t;
            }
        }
    }

    #[test]
    fn small_message_latency_matches_paper_fig2() {
        // OSU latency (half RTT) at small sizes: Vayu ~2 us, EC2 ~60 us,
        // DCC >= 100 us (before jitter makes it fluctuate).
        let vayu = pingpong_half_rtt(&FabricParams::qdr_infiniband(), 8) * 1e6;
        let ec2 = pingpong_half_rtt(&FabricParams::ten_gige_virt(), 8) * 1e6;
        let dcc = pingpong_half_rtt(&FabricParams::gige_vswitch(), 8) * 1e6;
        assert!((1.0..4.0).contains(&vayu), "vayu {vayu} us");
        assert!((45.0..80.0).contains(&ec2), "ec2 {ec2} us");
        assert!(dcc > 100.0, "dcc {dcc} us");
    }

    #[test]
    fn streaming_bandwidth_plateaus() {
        let f = FabricParams::ten_gige_virt();
        let bw_256k = streaming_bandwidth(&f, 256 * 1024) / 1e6;
        assert!(
            (500.0..620.0).contains(&bw_256k),
            "EC2 windowed {bw_256k} MB/s"
        );
        let dcc = streaming_bandwidth(&FabricParams::gige_vswitch(), 256 * 1024) / 1e6;
        assert!((150.0..210.0).contains(&dcc), "DCC windowed {dcc} MB/s");
    }

    #[test]
    fn shared_wire_scales_linearly() {
        let f = FabricParams::qdr_infiniband();
        let t1 = shared_wire_time(&f, 4096, 1);
        let t8 = shared_wire_time(&f, 4096, 8);
        assert!((t8 / t1 - 8.0).abs() < 1e-9);
        // Zero sharers clamps to one.
        assert_eq!(shared_wire_time(&f, 4096, 0), t1);
    }

    #[test]
    fn rendezvous_adds_handshake() {
        let f = FabricParams::gige_vswitch();
        let just_below = one_way_time(&f, f.eager_threshold);
        let just_above = one_way_time(&f, f.eager_threshold + 1);
        assert!(just_above - just_below > f.rendezvous_overhead * 0.9);
    }
}
