//! Fabric parameter sets.
//!
//! A [`FabricParams`] bundle describes one message-passing fabric: base
//! latency, sustainable bandwidth, host-CPU per-byte cost (TCP copy path vs
//! RDMA zero-copy), per-packet segmentation overheads, the eager/rendezvous
//! protocol switch point, and a jitter model for software packet paths.
//!
//! The presets correspond to the three interconnects of the paper's Table I:
//! Vayu's QDR InfiniBand fat tree, EC2's virtualized 10 GigE inside a cluster
//! placement group (Xen netfront path), and DCC's VMware vSwitch with an
//! emulated Intel E1000 1 GigE vNIC over channel-bonded 10 GigE uplinks.

/// Probability distribution of a jitter sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JitterDist {
    /// No jitter ever.
    None,
    /// Exponentially-distributed extra delay with the given mean (seconds).
    Exponential { mean: f64 },
    /// Pareto-distributed extra delay: rare but occasionally very large
    /// scheduling stalls (software switches, hypervisor vCPU scheduling).
    Pareto { min: f64, alpha: f64 },
    /// Log-normal extra delay parameterised by the underlying normal.
    LogNormal { mu: f64, sigma: f64 },
}

/// A jitter model: with probability `prob`, add a sample of `dist` to an
/// operation's cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterParams {
    pub prob: f64,
    pub dist: JitterDist,
}

impl JitterParams {
    /// A fabric with no jitter (hardware-offloaded paths).
    pub const NONE: JitterParams = JitterParams {
        prob: 0.0,
        dist: JitterDist::None,
    };

    /// Sample the extra delay in seconds using the caller's RNG.
    pub fn sample(&self, rng: &mut sim_des::DetRng) -> f64 {
        if self.prob <= 0.0 || !rng.chance(self.prob) {
            return 0.0;
        }
        match self.dist {
            JitterDist::None => 0.0,
            JitterDist::Exponential { mean } => rng.exponential(mean),
            JitterDist::Pareto { min, alpha } => rng.pareto(min, alpha),
            JitterDist::LogNormal { mu, sigma } => rng.log_normal(mu, sigma),
        }
    }

    /// Expected extra delay per operation (prob × distribution mean), used by
    /// analytic sanity checks. Pareto with `alpha <= 1` has no finite mean;
    /// we report the `min` as a floor in that case.
    pub fn expected(&self) -> f64 {
        let dist_mean = match self.dist {
            JitterDist::None => 0.0,
            JitterDist::Exponential { mean } => mean,
            JitterDist::Pareto { min, alpha } => {
                if alpha > 1.0 {
                    alpha * min / (alpha - 1.0)
                } else {
                    min
                }
            }
            JitterDist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
        };
        self.prob * dist_mean
    }
}

/// Full description of one message-passing fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricParams {
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// Base one-way wire latency for a minimal message (seconds).
    pub latency: f64,
    /// Sustainable wire bandwidth (bytes/second).
    pub bandwidth: f64,
    /// Host-CPU cost per byte on each side (seconds/byte). Near zero for
    /// RDMA-capable fabrics, significant for TCP copy paths and emulated
    /// vNICs, where it is what caps the *measured* bandwidth below wire rate.
    pub per_byte_cpu: f64,
    /// Fixed per-message send-side software overhead (seconds).
    pub send_overhead: f64,
    /// Fixed per-message receive-side software overhead (seconds).
    pub recv_overhead: f64,
    /// Largest payload sent eagerly; larger messages use rendezvous.
    pub eager_threshold: usize,
    /// Extra handshake cost a rendezvous transfer pays (seconds); roughly an
    /// RTT of control traffic.
    pub rendezvous_overhead: f64,
    /// Maximum transmission unit (bytes); payloads are segmented into MTU
    /// packets, each paying `per_packet_overhead`.
    pub mtu: usize,
    /// Extra cost per wire packet (seconds). Dominant for the emulated E1000
    /// path, small for jumbo-frame 10 GigE, negligible for InfiniBand.
    pub per_packet_overhead: f64,
    /// Software-path jitter applied per message.
    pub jitter: JitterParams,
}

impl FabricParams {
    /// A copy of these parameters degraded by `factor` (>= 1): latency and
    /// per-message/per-packet costs inflate, bandwidth deflates. Models a
    /// flapping NIC, a renegotiated link, or a vSwitch storm — the fabric
    /// still works, every LogGP term is just `factor`× worse. A factor of
    /// exactly 1.0 returns a bit-identical copy.
    pub fn degraded(&self, factor: f64) -> FabricParams {
        let f = factor.max(1.0);
        let mut p = self.clone();
        p.latency *= f;
        p.bandwidth /= f;
        p.send_overhead *= f;
        p.recv_overhead *= f;
        p.rendezvous_overhead *= f;
        p.per_packet_overhead *= f;
        p
    }

    /// QDR InfiniBand as on Vayu: ~1.7 µs latency, ~3.2 GB/s sustained
    /// point-to-point, RDMA zero-copy, hardware offload (no jitter).
    pub fn qdr_infiniband() -> Self {
        FabricParams {
            name: "QDR InfiniBand",
            latency: 1.7e-6,
            bandwidth: 3.4e9,
            per_byte_cpu: 1.0e-11,
            send_overhead: 0.25e-6,
            recv_overhead: 0.25e-6,
            eager_threshold: 12 * 1024,
            rendezvous_overhead: 4.0e-6,
            mtu: 2048,
            per_packet_overhead: 2.0e-9,
            jitter: JitterParams::NONE,
        }
    }

    /// Virtualized 10 GigE on EC2 cc1.4xlarge inside a cluster placement
    /// group. The Xen netfront/netback copy path adds ~50 µs latency and a
    /// per-byte CPU cost that caps measured bandwidth near the ~560 MB/s the
    /// paper observes at 256 KB messages.
    pub fn ten_gige_virt() -> Self {
        FabricParams {
            name: "10GigE (Xen virtualized)",
            latency: 52.0e-6,
            bandwidth: 1.25e9,
            // The netfront copy is the pipeline bottleneck: 1/per_byte_cpu
            // = ~565 MB/s measured plateau (paper Fig 1: ~560 MB/s).
            per_byte_cpu: 1.77e-9,
            send_overhead: 4.0e-6,
            recv_overhead: 4.0e-6,
            eager_threshold: 64 * 1024,
            rendezvous_overhead: 110.0e-6,
            mtu: 9000,
            per_packet_overhead: 0.6e-6,
            jitter: JitterParams {
                prob: 0.05,
                dist: JitterDist::Exponential { mean: 40.0e-6 },
            },
        }
    }

    /// DCC's VMware vSwitch path: an emulated Intel E1000 1 GigE vNIC whose
    /// packets are load-balanced over two channel-bonded 10 GigE uplinks.
    /// Measured peak is ~190 MB/s — *above* raw GigE because the uplinks are
    /// 10 GigE — and latency fluctuates wildly because every packet transits
    /// a software switch scheduled by the ESX hypervisor.
    pub fn gige_vswitch() -> Self {
        FabricParams {
            name: "GigE (VMware vSwitch)",
            latency: 95.0e-6,
            bandwidth: 2.5e8,
            // E1000 emulation: every byte is copied by the guest driver and
            // again by the vSwitch; 1/per_byte_cpu = ~192 MB/s plateau
            // (paper Fig 1: ~190 MB/s).
            per_byte_cpu: 5.2e-9,
            send_overhead: 9.0e-6,
            recv_overhead: 9.0e-6,
            eager_threshold: 64 * 1024,
            rendezvous_overhead: 220.0e-6,
            mtu: 1500,
            per_packet_overhead: 1.8e-6,
            jitter: JitterParams {
                prob: 0.30,
                dist: JitterDist::Pareto {
                    min: 25.0e-6,
                    alpha: 1.4,
                },
            },
        }
    }

    /// Intra-node shared-memory transport (bare metal): sub-microsecond
    /// latency, copy bandwidth of a 2009-era Xeon.
    pub fn shared_memory() -> Self {
        FabricParams {
            name: "shared memory",
            latency: 0.6e-6,
            bandwidth: 6.5e9,
            per_byte_cpu: 2.0e-11,
            send_overhead: 0.15e-6,
            recv_overhead: 0.15e-6,
            eager_threshold: 32 * 1024,
            rendezvous_overhead: 1.5e-6,
            mtu: usize::MAX,
            per_packet_overhead: 0.0,
            jitter: JitterParams::NONE,
        }
    }

    /// Intra-node shared memory under a hypervisor: slightly higher latency
    /// and copy cost (guest page-table indirection), plus light jitter.
    pub fn shared_memory_virt(extra_latency: f64, jitter: JitterParams) -> Self {
        let base = Self::shared_memory();
        FabricParams {
            name: "shared memory (virtualized)",
            latency: base.latency + extra_latency,
            bandwidth: base.bandwidth * 0.85,
            per_byte_cpu: base.per_byte_cpu * 1.3,
            jitter,
            ..base
        }
    }

    /// Number of wire packets a payload occupies (at least one).
    pub fn packets(&self, bytes: usize) -> u64 {
        if self.mtu == usize::MAX || self.mtu == 0 {
            1
        } else {
            (bytes.max(1)).div_ceil(self.mtu) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_des::DetRng;

    #[test]
    fn presets_are_ordered_by_quality() {
        let ib = FabricParams::qdr_infiniband();
        let tge = FabricParams::ten_gige_virt();
        let ge = FabricParams::gige_vswitch();
        assert!(ib.latency < tge.latency && tge.latency < ge.latency);
        assert!(ib.bandwidth > tge.bandwidth && tge.bandwidth > ge.bandwidth);
    }

    #[test]
    fn measured_plateaus_match_paper() {
        // Plateau = pipeline-bottleneck streaming bandwidth at 256 KB.
        let plateau = |f: &FabricParams| crate::cost::streaming_bandwidth(f, 256 * 1024);
        let ec2 = plateau(&FabricParams::ten_gige_virt()) / 1e6;
        let dcc = plateau(&FabricParams::gige_vswitch()) / 1e6;
        let vayu = plateau(&FabricParams::qdr_infiniband()) / 1e6;
        assert!((530.0..600.0).contains(&ec2), "EC2 plateau {ec2} MB/s");
        assert!((170.0..210.0).contains(&dcc), "DCC plateau {dcc} MB/s");
        assert!(vayu > 2500.0, "Vayu plateau {vayu} MB/s");
        // Paper: Vayu shows "more than one order of magnitude" over DCC.
        assert!(vayu / dcc > 10.0);
    }

    #[test]
    fn packets_segmentation() {
        let ge = FabricParams::gige_vswitch();
        assert_eq!(ge.packets(1), 1);
        assert_eq!(ge.packets(1500), 1);
        assert_eq!(ge.packets(1501), 2);
        assert_eq!(ge.packets(15000), 10);
        let shm = FabricParams::shared_memory();
        assert_eq!(shm.packets(123456789), 1);
    }

    #[test]
    fn jitter_none_never_fires() {
        let mut rng = DetRng::new(1, 1);
        for _ in 0..1000 {
            assert_eq!(JitterParams::NONE.sample(&mut rng), 0.0);
        }
    }

    #[test]
    fn jitter_expected_value_sane() {
        let j = JitterParams {
            prob: 0.5,
            dist: JitterDist::Exponential { mean: 10e-6 },
        };
        assert!((j.expected() - 5e-6).abs() < 1e-12);
        let mut rng = DetRng::new(2, 0);
        let n = 200_000;
        let emp: f64 = (0..n).map(|_| j.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((emp - 5e-6).abs() < 0.5e-6, "empirical {emp}");
    }

    #[test]
    fn dcc_jitter_is_heavy_tailed() {
        let j = FabricParams::gige_vswitch().jitter;
        let mut rng = DetRng::new(3, 0);
        let samples: Vec<f64> = (0..50_000).map(|_| j.sample(&mut rng)).collect();
        let nonzero = samples.iter().filter(|s| **s > 0.0).count();
        // ~30% of packets hit the software-switch stall path.
        assert!((0.25..0.35).contains(&(nonzero as f64 / samples.len() as f64)));
        // Tail events larger than 10x the minimum stall exist.
        assert!(samples.iter().any(|s| *s > 250e-6));
    }
}
