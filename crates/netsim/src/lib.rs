//! `sim-net` — interconnect and contention models.
//!
//! Provides the fabric parameter sets ([`FabricParams`]) for the three
//! interconnects of the study (QDR InfiniBand, virtualized 10 GigE, VMware
//! vSwitch GigE), the LogGP-style point-to-point cost algebra ([`cost`]),
//! cluster topologies ([`Topology`]) and the contention primitives
//! ([`SerialResource`], [`FairShareResource`]) that the MPI runtime layers
//! on top.

pub mod contention;
pub mod cost;
pub mod params;
pub mod resource;
pub mod topology;

pub use contention::ContentionParams;
pub use cost::{
    expected_one_way_time, one_way_time, pingpong_half_rtt, protocol, recv_occupancy,
    send_occupancy, shared_wire_time, streaming_bandwidth, wire_time, Protocol,
};
pub use params::{FabricParams, JitterDist, JitterParams};
pub use resource::{FairShareResource, SerialResource};
pub use topology::{Route, Shape, Topology};

#[cfg(test)]
mod proptests {
    //! Randomized invariant sweeps, driven by a seeded `DetRng` so they are
    //! deterministic and dependency-free.
    use super::*;
    use sim_des::DetRng;

    fn fabrics() -> [FabricParams; 4] {
        [
            FabricParams::qdr_infiniband(),
            FabricParams::ten_gige_virt(),
            FabricParams::gige_vswitch(),
            FabricParams::shared_memory(),
        ]
    }

    /// One-way time is monotone non-decreasing in message size.
    #[test]
    fn one_way_monotone() {
        let mut rng = DetRng::new(0x4E70_0001, 0);
        for f in fabrics() {
            for _ in 0..64 {
                let a = 1 + rng.index(999_999);
                let b = 1 + rng.index(999_999);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                assert!(one_way_time(&f, lo) <= one_way_time(&f, hi) + 1e-15);
            }
        }
    }

    /// One-way time is bounded below by pure wire latency + serialization.
    #[test]
    fn one_way_lower_bound() {
        let mut rng = DetRng::new(0x4E70_0002, 0);
        for f in fabrics() {
            for _ in 0..64 {
                let bytes = 1 + rng.index(3_999_999);
                let t = one_way_time(&f, bytes);
                assert!(t >= f.latency + bytes as f64 / f.bandwidth);
            }
        }
    }

    /// Streaming bandwidth never exceeds wire bandwidth.
    #[test]
    fn streaming_bw_bounded() {
        let mut rng = DetRng::new(0x4E70_0003, 0);
        for f in fabrics() {
            for _ in 0..64 {
                let bytes = 1 + rng.index(3_999_999);
                assert!(streaming_bandwidth(&f, bytes) <= f.bandwidth + 1.0);
            }
        }
    }

    /// Serial resource timestamps are consistent: start >= request time,
    /// end = start + service, and grants never overlap.
    #[test]
    fn serial_resource_no_overlap() {
        for case in 0..32u64 {
            let mut rng = DetRng::new(0x4E70_0004, case);
            let n = 1 + rng.index(49);
            let mut reqs: Vec<(u64, u64)> = (0..n)
                .map(|_| (rng.index(10_000) as u64, 1 + rng.index(99) as u64))
                .collect();
            reqs.sort();
            let mut r = SerialResource::new();
            let mut last_end = sim_des::SimTime::ZERO;
            for (t, d) in reqs {
                let (s, e) = r.acquire(sim_des::SimTime(t), sim_des::SimDur(d));
                assert!(s >= sim_des::SimTime(t));
                assert!(s >= last_end);
                assert_eq!(e, s + sim_des::SimDur(d));
                last_end = e;
            }
        }
    }

    /// Fair-share transfer time is monotone in client count.
    #[test]
    fn fair_share_monotone() {
        for servers in 1usize..16 {
            let fsr = FairShareResource::new(1e9, servers);
            for clients in 1usize..64 {
                let t1 = fsr.transfer_time(1_000_000, clients);
                let t2 = fsr.transfer_time(1_000_000, clients + 1);
                assert!(t2 >= t1 - 1e-12);
            }
        }
    }
}
