//! `sim-net` — interconnect and contention models.
//!
//! Provides the fabric parameter sets ([`FabricParams`]) for the three
//! interconnects of the study (QDR InfiniBand, virtualized 10 GigE, VMware
//! vSwitch GigE), the LogGP-style point-to-point cost algebra ([`cost`]),
//! cluster topologies ([`Topology`]) and the contention primitives
//! ([`SerialResource`], [`FairShareResource`]) that the MPI runtime layers
//! on top.

pub mod cost;
pub mod params;
pub mod resource;
pub mod topology;

pub use cost::{
    expected_one_way_time, one_way_time, pingpong_half_rtt, protocol, recv_occupancy,
    send_occupancy, shared_wire_time, streaming_bandwidth, wire_time, Protocol,
};
pub use params::{FabricParams, JitterDist, JitterParams};
pub use resource::{FairShareResource, SerialResource};
pub use topology::{Route, Shape, Topology};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn any_fabric() -> impl Strategy<Value = FabricParams> {
        prop_oneof![
            Just(FabricParams::qdr_infiniband()),
            Just(FabricParams::ten_gige_virt()),
            Just(FabricParams::gige_vswitch()),
            Just(FabricParams::shared_memory()),
        ]
    }

    proptest! {
        /// One-way time is monotone non-decreasing in message size.
        #[test]
        fn one_way_monotone(f in any_fabric(), a in 1usize..1_000_000, b in 1usize..1_000_000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(one_way_time(&f, lo) <= one_way_time(&f, hi) + 1e-15);
        }

        /// One-way time is bounded below by pure wire latency + serialization.
        #[test]
        fn one_way_lower_bound(f in any_fabric(), bytes in 1usize..4_000_000) {
            let t = one_way_time(&f, bytes);
            prop_assert!(t >= f.latency + bytes as f64 / f.bandwidth);
        }

        /// Streaming bandwidth never exceeds wire bandwidth.
        #[test]
        fn streaming_bw_bounded(f in any_fabric(), bytes in 1usize..4_000_000) {
            prop_assert!(streaming_bandwidth(&f, bytes) <= f.bandwidth + 1.0);
        }

        /// Serial resource timestamps are consistent: start >= request time,
        /// end = start + service, and grants never overlap.
        #[test]
        fn serial_resource_no_overlap(reqs in proptest::collection::vec((0u64..10_000, 1u64..100), 1..50)) {
            let mut r = SerialResource::new();
            let mut sorted = reqs.clone();
            sorted.sort();
            let mut last_end = sim_des::SimTime::ZERO;
            for (t, d) in sorted {
                let (s, e) = r.acquire(sim_des::SimTime(t), sim_des::SimDur(d));
                prop_assert!(s >= sim_des::SimTime(t));
                prop_assert!(s >= last_end);
                prop_assert_eq!(e, s + sim_des::SimDur(d));
                last_end = e;
            }
        }

        /// Fair-share transfer time is monotone in client count.
        #[test]
        fn fair_share_monotone(clients in 1usize..64, servers in 1usize..16) {
            let fsr = FairShareResource::new(1e9, servers);
            let t1 = fsr.transfer_time(1_000_000, clients);
            let t2 = fsr.transfer_time(1_000_000, clients + 1);
            prop_assert!(t2 >= t1 - 1e-12);
        }
    }
}
