//! Cluster interconnect topology.
//!
//! A [`Topology`] answers one question for the MPI runtime: which fabric (and
//! how many switch hops) connects two nodes. The study's three platforms all
//! reduce to "shared memory inside a node, one fabric between nodes", but the
//! fat-tree variant charges extra per-hop latency once traffic leaves a leaf
//! switch, which matters at Vayu's scale.

use crate::params::FabricParams;

/// Interconnect shape between nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// All nodes hang off one switch (DCC's vSwitch, EC2 placement group).
    SingleSwitch,
    /// Classic fat tree with `radix` ports per leaf switch; traffic between
    /// nodes under different leaves pays `extra_hop_latency` twice (up and
    /// down through the spine).
    FatTree {
        radix: usize,
        extra_hop_latency: f64,
    },
}

/// The interconnect of a cluster: an inter-node fabric with a shape, plus an
/// intra-node fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    pub inter: FabricParams,
    pub intra: FabricParams,
    pub shape: Shape,
}

/// Result of a route query.
#[derive(Debug, Clone, PartialEq)]
pub struct Route<'a> {
    /// The fabric the message travels on.
    pub fabric: &'a FabricParams,
    /// Extra latency beyond the fabric's base latency (spine hops).
    pub extra_latency: f64,
    /// Whether the route leaves the node.
    pub inter_node: bool,
}

impl Topology {
    /// Single-switch topology (both cloud platforms).
    pub fn single_switch(inter: FabricParams, intra: FabricParams) -> Self {
        Topology {
            inter,
            intra,
            shape: Shape::SingleSwitch,
        }
    }

    /// Fat-tree topology (Vayu: four DS648 spine switches, QDR leaves).
    pub fn fat_tree(
        inter: FabricParams,
        intra: FabricParams,
        radix: usize,
        extra_hop_latency: f64,
    ) -> Self {
        Topology {
            inter,
            intra,
            shape: Shape::FatTree {
                radix,
                extra_hop_latency,
            },
        }
    }

    /// The route between two nodes (`a == b` means intra-node).
    pub fn route(&self, a: usize, b: usize) -> Route<'_> {
        if a == b {
            return Route {
                fabric: &self.intra,
                extra_latency: 0.0,
                inter_node: false,
            };
        }
        let extra = match self.shape {
            Shape::SingleSwitch => 0.0,
            Shape::FatTree {
                radix,
                extra_hop_latency,
            } => {
                if radix > 0 && a / radix == b / radix {
                    0.0 // same leaf switch
                } else {
                    2.0 * extra_hop_latency // up to spine and back down
                }
            }
        };
        Route {
            fabric: &self.inter,
            extra_latency: extra,
            inter_node: true,
        }
    }

    /// One-way time for an isolated message from node `a` to node `b`.
    pub fn one_way_time(&self, a: usize, b: usize, bytes: usize) -> f64 {
        let r = self.route(a, b);
        crate::cost::one_way_time(r.fabric, bytes) + r.extra_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::fat_tree(
            FabricParams::qdr_infiniband(),
            FabricParams::shared_memory(),
            16,
            0.3e-6,
        )
    }

    #[test]
    fn intra_node_uses_shared_memory() {
        let t = topo();
        let r = t.route(3, 3);
        assert!(!r.inter_node);
        assert_eq!(r.fabric.name, "shared memory");
        assert_eq!(r.extra_latency, 0.0);
    }

    #[test]
    fn same_leaf_no_extra_hop() {
        let t = topo();
        let r = t.route(0, 15);
        assert!(r.inter_node);
        assert_eq!(r.extra_latency, 0.0);
    }

    #[test]
    fn cross_leaf_pays_spine_hops() {
        let t = topo();
        let r = t.route(0, 16);
        assert!(r.inter_node);
        assert!((r.extra_latency - 0.6e-6).abs() < 1e-12);
    }

    #[test]
    fn single_switch_never_pays_extra() {
        let t = Topology::single_switch(
            FabricParams::gige_vswitch(),
            FabricParams::shared_memory_virt(0.4e-6, crate::params::JitterParams::NONE),
        );
        for (a, b) in [(0, 1), (0, 7), (3, 4)] {
            assert_eq!(t.route(a, b).extra_latency, 0.0);
        }
    }

    #[test]
    fn intra_is_faster_than_inter_for_all_presets() {
        let t = topo();
        for bytes in [8usize, 1024, 1 << 20] {
            assert!(t.one_way_time(0, 0, bytes) < t.one_way_time(0, 99, bytes));
        }
    }
}
