//! Serially-reusable resources (NICs, filesystem servers).
//!
//! A [`SerialResource`] is the simplest contention model that still produces
//! the right qualitative behaviour: requests queue FIFO and each occupies the
//! resource for its service time. The MPI runtime uses one per node NIC so
//! that eight ranks funnelling an all-to-all through one GigE port serialize,
//! which is precisely the effect behind DCC's speedup collapse at 16 ranks.

use sim_des::{SimDur, SimTime};

/// A resource that serves one request at a time, FIFO.
#[derive(Debug, Clone, Default)]
pub struct SerialResource {
    free_at: SimTime,
    /// Total busy time accumulated, for utilization reporting.
    busy: SimDur,
}

impl SerialResource {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request the resource at `now` for `service` time. Returns
    /// `(start, end)`: the request begins when the resource frees up and the
    /// caller's payload has arrived, whichever is later.
    pub fn acquire(&mut self, now: SimTime, service: SimDur) -> (SimTime, SimTime) {
        let start = now.max(self.free_at);
        let end = start + service;
        self.free_at = end;
        self.busy += service;
        (start, end)
    }

    /// When the resource next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total service time granted so far.
    pub fn total_busy(&self) -> SimDur {
        self.busy
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.0 == 0 {
            0.0
        } else {
            (self.busy.0 as f64 / horizon.0 as f64).min(1.0)
        }
    }
}

/// A resource pool whose aggregate service rate is shared fairly among the
/// requests in flight — a fluid approximation used for shared filesystem
/// servers (NFS: one server; Lustre: `stripes` independent servers).
#[derive(Debug, Clone)]
pub struct FairShareResource {
    /// Aggregate service rate in bytes/second.
    pub rate: f64,
    /// Number of independent servers; concurrent clients up to this count
    /// don't contend at all.
    pub servers: usize,
}

impl FairShareResource {
    pub fn new(rate: f64, servers: usize) -> Self {
        assert!(rate > 0.0 && servers > 0);
        FairShareResource { rate, servers }
    }

    /// Time for `clients` concurrent clients to each move `bytes`: with up to
    /// `servers` clients everyone enjoys the full per-server rate; beyond
    /// that the aggregate rate is divided fairly.
    pub fn transfer_time(&self, bytes: u64, clients: usize) -> f64 {
        let clients = clients.max(1);
        let per_client_rate = if clients <= self.servers {
            self.rate / self.servers as f64
        } else {
            self.rate / clients as f64
        };
        bytes as f64 / per_client_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_resource_queues_fifo() {
        let mut r = SerialResource::new();
        let (s1, e1) = r.acquire(SimTime(100), SimDur(50));
        assert_eq!((s1, e1), (SimTime(100), SimTime(150)));
        // Second request at t=110 must wait until 150.
        let (s2, e2) = r.acquire(SimTime(110), SimDur(30));
        assert_eq!((s2, e2), (SimTime(150), SimTime(180)));
        // A late request after the resource idles starts immediately.
        let (s3, _) = r.acquire(SimTime(500), SimDur(10));
        assert_eq!(s3, SimTime(500));
        assert_eq!(r.total_busy(), SimDur(90));
    }

    #[test]
    fn utilization_bounded() {
        let mut r = SerialResource::new();
        r.acquire(SimTime(0), SimDur(80));
        assert!((r.utilization(SimTime(100)) - 0.8).abs() < 1e-12);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
        r.acquire(SimTime(0), SimDur(80));
        assert_eq!(r.utilization(SimTime(100)), 1.0);
    }

    #[test]
    fn fair_share_nfs_divides_rate() {
        // NFS: one server at 400 MB/s.
        let nfs = FairShareResource::new(400e6, 1);
        let one = nfs.transfer_time(400_000_000, 1);
        let eight = nfs.transfer_time(400_000_000, 8);
        assert!((one - 1.0).abs() < 1e-9);
        assert!((eight - 8.0).abs() < 1e-9);
    }

    #[test]
    fn fair_share_lustre_scales_until_stripe_count() {
        // Lustre: 8 OSTs at 1 GB/s aggregate.
        let lustre = FairShareResource::new(8e9, 8);
        let t4 = lustre.transfer_time(1_000_000_000, 4);
        let t8 = lustre.transfer_time(1_000_000_000, 8);
        let t16 = lustre.transfer_time(1_000_000_000, 16);
        assert!(
            (t4 - 1.0).abs() < 1e-9,
            "below stripe count: full per-server rate"
        );
        assert!((t8 - 1.0).abs() < 1e-9);
        assert!((t16 - 2.0).abs() < 1e-9, "beyond stripe count: fair share");
    }
}
