//! `sim-faults` — deterministic, seeded fault schedules for the cluster
//! simulator.
//!
//! The paper measures the three platforms on healthy hardware; this crate
//! models the other half of the cloud-HPC story: reliability. A
//! [`FaultModel`] describes *rates* (events per node-hour) and *severities*
//! for five failure classes, and [`FaultSchedule::generate`] expands it into
//! a concrete, reproducible timeline of [`FaultWindow`]s for one job:
//!
//! | model                | real-world failure it stands in for            |
//! |----------------------|------------------------------------------------|
//! | `NodeCrash`          | node panic / ECC MCE / unplanned reboot (MTBF) |
//! | `NicDegrade`         | NIC flap, renegotiated link, vSwitch storm     |
//! | `StealStorm`         | hypervisor steal-time burst (noisy neighbour)  |
//! | `NfsBrownout`        | shared NFS server overload / failover          |
//! | `Preemption`         | spot/preemptible instance revocation           |
//! | `SilentFlip`         | undetected bit flip / corrupted reduction (SDC)|
//!
//! Determinism contract: the schedule is a pure function of
//! `(model, nodes, horizon, seed)`. Candidate events are drawn at the
//! model's *maximum* intensity and accepted by thinning against
//! [`FaultModel::scale`], so schedules at lower intensity are strict
//! subsets of schedules at higher intensity — which is what makes
//! time-to-solution monotone in fault rate in the `faultsweep` experiment.
//! A scale of `0.0` yields an empty schedule (the documented no-op).

use sim_des::{DetRng, SimDur, SimTime};
use sim_platform::{ClusterSpec, HypervisorKind};

/// What a fault window does to the ranks it covers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node is down: ops issued on it stall until the window ends and a
    /// retry attempt fires (see [`RetryPolicy`]).
    NodeCrash,
    /// The node's fabric endpoint is degraded: LogGP costs inflate by
    /// `factor` (latency up, bandwidth down).
    NicDegrade { factor: f64 },
    /// Hypervisor steal storm: compute on the node runs `factor`× slower.
    StealStorm { factor: f64 },
    /// Shared-filesystem brownout: I/O anywhere in the job runs `factor`×
    /// slower (the NFS/Lustre server is a cluster-wide resource).
    NfsBrownout { factor: f64 },
    /// Fatal: the instance is revoked. The whole MPI job dies and must
    /// restart from its last completed checkpoint (or from scratch).
    Preemption,
    /// Silent data corruption: a bit flip (or corrupted reduction) lands on
    /// the node's state at an instant. Nothing fails visibly — the error is
    /// only caught by a later verification cut (ABFT checksum, checkpoint
    /// validation). `severity` is the normalized corruption magnitude;
    /// events below the detector threshold stay undetected.
    SilentFlip { severity: f64 },
}

/// One silent-data-corruption event: an instantaneous bit flip on `node`
/// at `t` with normalized magnitude `severity`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdcEvent {
    pub node: usize,
    pub t: SimTime,
    pub severity: f64,
}

impl SdcEvent {
    /// The event as a [`FaultKind`], for uniform reporting.
    pub fn kind(&self) -> FaultKind {
        FaultKind::SilentFlip {
            severity: self.severity,
        }
    }
}

/// One concrete fault on the timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Node index within the job's placement (ignored for `NfsBrownout`).
    pub node: usize,
    pub start: SimTime,
    pub end: SimTime,
    pub kind: FaultKind,
}

/// Rates and severities for the five fault classes.
///
/// Rates are events per node-hour (per hour for the cluster-wide
/// `brownout_per_hour`) at `scale == 1.0`. The `scale` knob thins a shared
/// master schedule, so varying it keeps lower-intensity schedules nested
/// inside higher-intensity ones; it clamps to [`FaultModel::MAX_SCALE`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    pub name: &'static str,
    /// Intensity multiplier in `0.0 ..= MAX_SCALE`; `0.0` disables faults.
    pub scale: f64,

    pub crash_per_node_hour: f64,
    pub crash_mean_secs: f64,

    pub nic_per_node_hour: f64,
    pub nic_mean_secs: f64,
    pub nic_factor: f64,

    pub steal_per_node_hour: f64,
    pub steal_mean_secs: f64,
    pub steal_factor: f64,

    pub brownout_per_hour: f64,
    pub brownout_mean_secs: f64,
    pub brownout_factor: f64,

    pub preempt_per_node_hour: f64,

    /// Silent-data-corruption events per node-hour. All platform presets
    /// leave this at 0.0 so fail-stop-only experiments reproduce
    /// bit-identically; opt in via [`FaultModel::with_sdc`] or
    /// [`FaultModel::with_platform_sdc`].
    pub sdc_per_node_hour: f64,
    /// Mean of the exponential severity draw for SDC events.
    pub sdc_mean_severity: f64,
}

impl FaultModel {
    /// Upper bound on `scale`; candidate events are drawn at this intensity
    /// and thinned down, so schedules are nested across scales.
    pub const MAX_SCALE: f64 = 8.0;

    /// No faults at all.
    pub fn none() -> Self {
        FaultModel {
            name: "none",
            scale: 0.0,
            crash_per_node_hour: 0.0,
            crash_mean_secs: 0.0,
            nic_per_node_hour: 0.0,
            nic_mean_secs: 0.0,
            nic_factor: 1.0,
            steal_per_node_hour: 0.0,
            steal_mean_secs: 0.0,
            steal_factor: 1.0,
            brownout_per_hour: 0.0,
            brownout_mean_secs: 0.0,
            brownout_factor: 1.0,
            preempt_per_node_hour: 0.0,
            sdc_per_node_hour: 0.0,
            sdc_mean_severity: 0.0,
        }
    }

    /// Vayu: bare-metal supercomputer. The only failure class that matters
    /// is the node MTBF (rare crash/reboot); the fabric and Lustre servers
    /// are engineered and dedicated.
    pub fn vayu() -> Self {
        FaultModel {
            name: "vayu",
            scale: 1.0,
            crash_per_node_hour: 0.004,
            crash_mean_secs: 120.0,
            ..FaultModel::none()
        }
    }

    /// DCC: VMware private cloud. Dominated by vSwitch storms (NIC
    /// degradation), ESX steal-time bursts, and brownouts of the shared
    /// NFS server; occasional blade crash. No preemption — the blades are
    /// dedicated to the tenant.
    pub fn dcc() -> Self {
        FaultModel {
            name: "dcc",
            scale: 1.0,
            crash_per_node_hour: 0.002,
            crash_mean_secs: 90.0,
            nic_per_node_hour: 0.06,
            nic_mean_secs: 20.0,
            nic_factor: 8.0,
            steal_per_node_hour: 0.10,
            steal_mean_secs: 10.0,
            steal_factor: 3.0,
            brownout_per_hour: 0.03,
            brownout_mean_secs: 30.0,
            brownout_factor: 5.0,
            preempt_per_node_hour: 0.0,
            ..FaultModel::none()
        }
    }

    /// EC2: public cloud. Adds the class the other two platforms do not
    /// have — spot-instance preemption — on top of moderate steal and
    /// virtual-NIC flap rates.
    pub fn ec2() -> Self {
        FaultModel {
            name: "ec2",
            scale: 1.0,
            crash_per_node_hour: 0.002,
            crash_mean_secs: 60.0,
            nic_per_node_hour: 0.03,
            nic_mean_secs: 10.0,
            nic_factor: 4.0,
            steal_per_node_hour: 0.08,
            steal_mean_secs: 8.0,
            steal_factor: 2.5,
            brownout_per_hour: 0.015,
            brownout_mean_secs: 20.0,
            brownout_factor: 4.0,
            preempt_per_node_hour: 0.02,
            ..FaultModel::none()
        }
    }

    /// Preset keyed off the cluster: by name when it is one of the paper's
    /// three platforms, by hypervisor kind otherwise (any virtualized
    /// cluster behaves like the private cloud, bare metal like the HPC).
    pub fn preset_for(cluster: &ClusterSpec) -> Self {
        match cluster.name {
            "vayu" => FaultModel::vayu(),
            "dcc" => FaultModel::dcc(),
            "ec2" => FaultModel::ec2(),
            _ => match cluster.node.hypervisor.kind {
                HypervisorKind::BareMetal => FaultModel::vayu(),
                HypervisorKind::Xen => FaultModel::ec2(),
                HypervisorKind::VmwareEsx | HypervisorKind::Kvm => FaultModel::dcc(),
            },
        }
    }

    /// Same model at a different intensity (clamped to `0 ..= MAX_SCALE`).
    pub fn scaled(mut self, scale: f64) -> Self {
        self.scale = scale.clamp(0.0, Self::MAX_SCALE);
        self
    }

    /// Multiply every event rate by `f`. Used by the `faultsweep` driver to
    /// calibrate per-hour rates against a job's fault-free runtime, so short
    /// simulated jobs still see a meaningful number of events. Rates are
    /// clamped at zero so a negative (or `-0.0`-producing) multiplier can
    /// never flip [`is_null`](Self::is_null) or crash the generator.
    pub fn with_rates_scaled(mut self, f: f64) -> Self {
        // `x.max(0.0)` may keep `-0.0` (and propagates nothing for NaN
        // products), so clamp explicitly: anything not strictly positive
        // becomes a true `+0.0`.
        fn nneg(x: f64) -> f64 {
            if x > 0.0 {
                x
            } else {
                0.0
            }
        }
        self.crash_per_node_hour = nneg(self.crash_per_node_hour * f);
        self.nic_per_node_hour = nneg(self.nic_per_node_hour * f);
        self.steal_per_node_hour = nneg(self.steal_per_node_hour * f);
        self.brownout_per_hour = nneg(self.brownout_per_hour * f);
        self.preempt_per_node_hour = nneg(self.preempt_per_node_hour * f);
        self.sdc_per_node_hour = nneg(self.sdc_per_node_hour * f);
        self
    }

    /// Enable silent-data-corruption events at `rate` per node-hour with
    /// exponential severities of the given mean.
    pub fn with_sdc(mut self, rate_per_node_hour: f64, mean_severity: f64) -> Self {
        self.sdc_per_node_hour = rate_per_node_hour.max(0.0);
        self.sdc_mean_severity = mean_severity.max(0.0);
        self
    }

    /// Per-platform SDC rate preset, keyed off the model's name: ECC-
    /// protected bare metal (vayu) sees an order of magnitude fewer silent
    /// flips than virtualized commodity nodes (dcc), and spot-market EC2
    /// hardware is the noisiest. Unknown names get the private-cloud rate.
    pub fn with_platform_sdc(self) -> Self {
        match self.name {
            "vayu" => self.with_sdc(0.0005, 1.0),
            "ec2" => self.with_sdc(0.004, 1.0),
            _ => self.with_sdc(0.002, 1.0),
        }
    }

    /// True when the schedule this model generates is provably empty.
    pub fn is_null(&self) -> bool {
        self.scale <= 0.0
            || (self.crash_per_node_hour <= 0.0
                && self.nic_per_node_hour <= 0.0
                && self.steal_per_node_hour <= 0.0
                && self.brownout_per_hour <= 0.0
                && self.preempt_per_node_hour <= 0.0
                && self.sdc_per_node_hour <= 0.0)
    }
}

/// Exponential-backoff retry for ops stalled on a crashed node.
///
/// An op issued at `t` on a down node fails immediately, then retries at
/// `t + timeout`, `t + timeout·(1 + backoff)`, … with the inter-attempt
/// delay multiplying by `backoff` and capping at `max_delay`. The first
/// attempt at or after the node's recovery succeeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Seconds before the first re-issue.
    pub timeout_secs: f64,
    /// Multiplier applied to the delay after every failed attempt.
    pub backoff: f64,
    /// Attempts after the initial issue before giving up.
    pub max_retries: u32,
    /// Upper bound on a single inter-attempt delay, seconds.
    pub max_delay_secs: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_secs: 0.5,
            backoff: 2.0,
            max_retries: 16,
            max_delay_secs: 30.0,
        }
    }
}

impl RetryPolicy {
    /// The sanitized inter-attempt delay sequence, in seconds: `timeout`,
    /// `timeout * backoff`, ... with every element clamped into
    /// `[1e-9, max_delay]`. Degenerate knobs (zero, negative, infinite or
    /// NaN cap/multiplier) are repaired rather than propagated, so the
    /// sequence can never explode or stall: the cap always wins.
    ///
    /// This iterator is the *single* backoff implementation: both the
    /// engine-level op retry ([`first_success`](Self::first_success)) and
    /// the scheduler-level requeue backoff (`sim_sched`'s `RequeuePolicy`)
    /// draw their delays from it, so the two can never drift.
    pub fn delays(&self) -> impl Iterator<Item = f64> {
        let cap = if self.max_delay_secs.is_finite() && self.max_delay_secs > 0.0 {
            self.max_delay_secs
        } else {
            RetryPolicy::default().max_delay_secs
        };
        let growth = if self.backoff.is_finite() && self.backoff > 0.0 {
            self.backoff
        } else {
            1.0
        };
        let first = self.timeout_secs.max(1e-9).min(cap);
        std::iter::successors(Some(first), move |&d| Some((d * growth).clamp(1e-9, cap)))
    }

    /// Delay (seconds) to wait before the `attempt`-th re-issue, 1-based:
    /// `delay_before(1)` is the first retry's delay. Used by the scheduler
    /// to space crash requeues on the same backoff curve as op retries.
    pub fn delay_before(&self, attempt: u32) -> f64 {
        let n = attempt.max(1) - 1;
        self.delays()
            .nth(n as usize)
            .expect("delays() is an infinite sequence")
    }

    /// The deterministic instant the op finally goes through: the first
    /// retry attempt at or after `recovery`, or `None` when the retry
    /// budget is exhausted first.
    pub fn first_success(&self, issued: SimTime, recovery: SimTime) -> Option<SimTime> {
        let mut t = issued;
        let mut delays = self.delays();
        for _ in 0..=self.max_retries {
            if t >= recovery {
                return Some(t);
            }
            let delay = delays.next().expect("delays() is an infinite sequence");
            t += SimDur::from_secs_f64(delay);
        }
        if t >= recovery {
            Some(t)
        } else {
            None
        }
    }
}

/// What the engine does when a run is cut short — by a fatal fault or by a
/// verification cut that catches silent corruption.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RecoveryStrategy {
    /// Relaunch the whole job after `restart_delay_secs`, resuming from the
    /// last completed checkpoint (PR 2 semantics; the default keeps
    /// checkpoint/restart-only runs bit-identical).
    #[default]
    Restart,
    /// Algorithm-based fault tolerance: on a detected corruption, roll the
    /// surviving ranks back to the last *verified* cut (the most recent
    /// completed [`Op::Verify`] barrier) and replay — no relaunch, no
    /// checkpoint read. Fatal faults still restart.
    AbftRollback,
    /// ULFM-style shrink-and-spare: a corrupted or preempted rank is
    /// replaced from a pool of hot spares. The communicator is repaired in
    /// place and the replacement's state is re-fetched from its neighbours,
    /// charged through the netsim cost model; only when the spare pool is
    /// exhausted does the job fall back to a full restart.
    ShrinkSpare {
        /// Hot spare nodes available for the whole run.
        spares: u32,
        /// Seconds to splice the spare into the communicator (ULFM shrink
        /// + agree + spawn), before state redistribution transfer time.
        respawn_delay_secs: f64,
    },
}

/// Everything the engine needs to simulate a faulty run: the model, the
/// retry semantics, and the restart cost after a fatal fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    pub model: FaultModel,
    pub retry: RetryPolicy,
    /// Wall-clock seconds to re-provision and relaunch after a fatal fault
    /// (queue time, boot, MPI wire-up) before ranks resume.
    pub restart_delay_secs: f64,
    /// Horizon over which fault windows are pre-generated. Events beyond it
    /// never fire, which also guarantees every run terminates: after the
    /// last fatal the job completes unperturbed.
    pub horizon_secs: f64,
    /// How the engine recovers from fatal faults and detected corruption.
    pub recovery: RecoveryStrategy,
    /// SDC events with severity below this are invisible to every detector
    /// (they fall under the verification's numerical tolerance) and are
    /// reported as `sdc_undetected`.
    pub sdc_threshold: f64,
}

impl FaultSpec {
    /// Platform preset at scale 1.0 with default retry/restart parameters.
    pub fn preset_for(cluster: &ClusterSpec) -> Self {
        FaultSpec {
            model: FaultModel::preset_for(cluster),
            retry: RetryPolicy::default(),
            restart_delay_secs: 30.0,
            horizon_secs: 4.0 * 3600.0,
            recovery: RecoveryStrategy::Restart,
            sdc_threshold: 0.01,
        }
    }

    /// Same spec with a different recovery strategy.
    pub fn with_recovery(mut self, recovery: RecoveryStrategy) -> Self {
        self.recovery = recovery;
        self
    }
}

// Disjoint DetRng stream tags per fault class; the per-node index is added
// so every (class, node) pair owns an independent deterministic stream.
const STREAM_CRASH: u64 = 0xFA17_0000;
const STREAM_NIC: u64 = 0xFA17_1000;
const STREAM_STEAL: u64 = 0xFA17_2000;
const STREAM_BROWNOUT: u64 = 0xFA17_3000;
const STREAM_PREEMPT: u64 = 0xFA17_4000;
const STREAM_SDC: u64 = 0xFA17_5000;

/// A concrete, queryable fault timeline for one job.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    /// Per-node transient windows (crash / NIC / steal), sorted by start.
    per_node: Vec<Vec<FaultWindow>>,
    /// Cluster-wide filesystem brownouts, sorted by start.
    brownouts: Vec<FaultWindow>,
    /// Sorted times of fatal (preemption) events.
    fatals: Vec<SimTime>,
    /// Silent-data-corruption events across all active nodes, sorted by
    /// time. Instantaneous — they never perturb the timeline by themselves,
    /// only through the recovery a verification cut triggers.
    sdc: Vec<SdcEvent>,
}

impl FaultSchedule {
    /// Expand `model` into windows covering `nodes` nodes over `horizon`.
    ///
    /// Pure function of its arguments. Candidates are drawn at
    /// `rate × MAX_SCALE` and kept iff `u · MAX_SCALE < scale` where `u` is
    /// drawn per candidate — so for a fixed `(model rates, nodes, horizon,
    /// seed)` the accepted set at a lower scale is a subset of the set at a
    /// higher scale.
    pub fn generate(model: &FaultModel, nodes: usize, horizon: SimDur, seed: u64) -> Self {
        Self::generate_for(model, nodes, 0..nodes, horizon, seed)
    }

    /// Like [`generate`](Self::generate), but only draws windows for the
    /// node indices in `active` (each must be `< nodes`). Per-node RNG
    /// streams are keyed by the absolute node index, so an active node's
    /// windows are bit-identical whether its peers are generated or not —
    /// a job placed on 2 of a 1492-node cluster pays for 2 nodes' worth of
    /// schedule, not 1492.
    pub fn generate_for(
        model: &FaultModel,
        nodes: usize,
        active: impl IntoIterator<Item = usize>,
        horizon: SimDur,
        seed: u64,
    ) -> Self {
        let mut sched = FaultSchedule {
            per_node: vec![Vec::new(); nodes],
            brownouts: Vec::new(),
            fatals: Vec::new(),
            sdc: Vec::new(),
        };
        if model.is_null() || nodes == 0 {
            return sched;
        }
        let horizon_secs = horizon.as_secs_f64();

        for node in active {
            assert!(node < nodes, "active node {node} out of range {nodes}");
            thin_class(
                model,
                model.crash_per_node_hour,
                model.crash_mean_secs,
                DetRng::new(seed, STREAM_CRASH.wrapping_add(node as u64)),
                horizon_secs,
                |start, end| {
                    sched.per_node[node].push(FaultWindow {
                        node,
                        start,
                        end,
                        kind: FaultKind::NodeCrash,
                    })
                },
            );
            thin_class(
                model,
                model.nic_per_node_hour,
                model.nic_mean_secs,
                DetRng::new(seed, STREAM_NIC.wrapping_add(node as u64)),
                horizon_secs,
                |start, end| {
                    sched.per_node[node].push(FaultWindow {
                        node,
                        start,
                        end,
                        kind: FaultKind::NicDegrade {
                            factor: model.nic_factor,
                        },
                    })
                },
            );
            thin_class(
                model,
                model.steal_per_node_hour,
                model.steal_mean_secs,
                DetRng::new(seed, STREAM_STEAL.wrapping_add(node as u64)),
                horizon_secs,
                |start, end| {
                    sched.per_node[node].push(FaultWindow {
                        node,
                        start,
                        end,
                        kind: FaultKind::StealStorm {
                            factor: model.steal_factor,
                        },
                    })
                },
            );
            thin_class(
                model,
                model.preempt_per_node_hour,
                // Fatal events are instants; duration is irrelevant but a
                // draw still happens to keep candidate streams aligned
                // across parameter changes.
                1.0,
                DetRng::new(seed, STREAM_PREEMPT.wrapping_add(node as u64)),
                horizon_secs,
                |start, _end| sched.fatals.push(start),
            );
            thin_sdc(
                model,
                DetRng::new(seed, STREAM_SDC.wrapping_add(node as u64)),
                horizon_secs,
                |t, severity| sched.sdc.push(SdcEvent { node, t, severity }),
            );
        }
        thin_class(
            model,
            model.brownout_per_hour,
            model.brownout_mean_secs,
            DetRng::new(seed, STREAM_BROWNOUT),
            horizon_secs,
            |start, end| {
                sched.brownouts.push(FaultWindow {
                    node: 0,
                    start,
                    end,
                    kind: FaultKind::NfsBrownout {
                        factor: model.brownout_factor,
                    },
                })
            },
        );

        for windows in &mut sched.per_node {
            windows.sort_by_key(|w| w.start);
        }
        sched.brownouts.sort_by_key(|w| w.start);
        sched.fatals.sort();
        sched.sdc.sort_by_key(|e| e.t);
        sched
    }

    /// No windows, no fatal events, no silent corruptions at all.
    pub fn is_empty(&self) -> bool {
        self.fatals.is_empty()
            && self.brownouts.is_empty()
            && self.sdc.is_empty()
            && self.per_node.iter().all(|w| w.is_empty())
    }

    /// Total number of transient windows plus fatal and SDC events.
    pub fn len(&self) -> usize {
        self.fatals.len()
            + self.brownouts.len()
            + self.sdc.len()
            + self.per_node.iter().map(|w| w.len()).sum::<usize>()
    }

    /// Slowdown factor for compute on `node` at time `t` (>= 1.0).
    pub fn compute_factor(&self, node: usize, t: SimTime) -> f64 {
        self.max_factor(node, t, |k| match k {
            FaultKind::StealStorm { factor } => Some(factor),
            _ => None,
        })
    }

    /// Inflation factor for fabric costs touching `node` at time `t`.
    pub fn net_factor(&self, node: usize, t: SimTime) -> f64 {
        self.max_factor(node, t, |k| match k {
            FaultKind::NicDegrade { factor } => Some(factor),
            _ => None,
        })
    }

    /// Slowdown factor for shared-filesystem I/O at time `t`.
    pub fn io_factor(&self, t: SimTime) -> f64 {
        let mut f = 1.0f64;
        for w in &self.brownouts {
            if w.start > t {
                break;
            }
            if t < w.end {
                if let FaultKind::NfsBrownout { factor } = w.kind {
                    f = f.max(factor);
                }
            }
        }
        f
    }

    /// If `node` is inside a crash window at `t`, the instant it recovers
    /// (the furthest end of any overlapping crash window covering `t`).
    pub fn crash_end(&self, node: usize, t: SimTime) -> Option<SimTime> {
        let mut end: Option<SimTime> = None;
        if let Some(windows) = self.per_node.get(node) {
            for w in windows {
                if w.start > t {
                    break;
                }
                if t < w.end && w.kind == FaultKind::NodeCrash {
                    end = Some(end.map_or(w.end, |e| e.max(w.end)));
                }
            }
        }
        end
    }

    /// Sorted times of fatal events (spot preemptions).
    pub fn fatals(&self) -> &[SimTime] {
        &self.fatals
    }

    /// Silent-data-corruption events, sorted by time.
    pub fn sdc(&self) -> &[SdcEvent] {
        &self.sdc
    }

    /// All transient windows, for tests and reporting.
    pub fn windows(&self) -> impl Iterator<Item = &FaultWindow> {
        self.per_node.iter().flatten().chain(self.brownouts.iter())
    }

    fn max_factor(&self, node: usize, t: SimTime, pick: impl Fn(FaultKind) -> Option<f64>) -> f64 {
        let mut f = 1.0f64;
        if let Some(windows) = self.per_node.get(node) {
            for w in windows {
                if w.start > t {
                    break;
                }
                if t < w.end {
                    if let Some(x) = pick(w.kind) {
                        f = f.max(x);
                    }
                }
            }
        }
        f
    }
}

/// Draw a Poisson candidate stream at `rate × MAX_SCALE` events per hour
/// and accept each candidate with probability `scale / MAX_SCALE`.
fn thin_class(
    model: &FaultModel,
    rate_per_hour: f64,
    mean_secs: f64,
    mut rng: DetRng,
    horizon_secs: f64,
    mut emit: impl FnMut(SimTime, SimTime),
) {
    if rate_per_hour <= 0.0 {
        return;
    }
    let mean_interarrival = 3600.0 / (rate_per_hour * FaultModel::MAX_SCALE);
    let mut t = 0.0f64;
    loop {
        t += rng.exponential(mean_interarrival);
        if t >= horizon_secs || t.is_nan() {
            return;
        }
        let dur = rng.exponential(mean_secs.max(1e-9));
        let u = rng.uniform();
        if u * FaultModel::MAX_SCALE < model.scale {
            let start = SimTime::from_secs_f64(t);
            let end = SimTime::from_secs_f64(t + dur);
            emit(start, end.max(start + SimDur::from_nanos(1)));
        }
    }
}

/// SDC counterpart of [`thin_class`]: identical candidate/acceptance
/// structure (arrival, one auxiliary draw, acceptance uniform) so SDC
/// schedules nest across `scale` exactly like the fail-stop classes; the
/// auxiliary draw is the severity instead of a duration, keeping its full
/// f64 precision rather than round-tripping through a `SimTime`.
fn thin_sdc(
    model: &FaultModel,
    mut rng: DetRng,
    horizon_secs: f64,
    mut emit: impl FnMut(SimTime, f64),
) {
    if model.sdc_per_node_hour <= 0.0 {
        return;
    }
    let mean_interarrival = 3600.0 / (model.sdc_per_node_hour * FaultModel::MAX_SCALE);
    let mut t = 0.0f64;
    loop {
        t += rng.exponential(mean_interarrival);
        if t >= horizon_secs || t.is_nan() {
            return;
        }
        let severity = rng.exponential(model.sdc_mean_severity.max(1e-9));
        let u = rng.uniform();
        if u * FaultModel::MAX_SCALE < model.scale {
            emit(SimTime::from_secs_f64(t), severity);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon() -> SimDur {
        SimDur::from_secs_f64(3600.0)
    }

    #[test]
    fn zero_scale_is_empty() {
        let m = FaultModel::dcc().scaled(0.0);
        let s = FaultSchedule::generate(&m, 8, horizon(), 42);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.compute_factor(0, SimTime::from_secs(100)), 1.0);
        assert_eq!(s.net_factor(0, SimTime::from_secs(100)), 1.0);
        assert_eq!(s.io_factor(SimTime::from_secs(100)), 1.0);
        assert!(s.crash_end(0, SimTime::from_secs(100)).is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let m = FaultModel::ec2().scaled(2.0);
        let a = FaultSchedule::generate(&m, 4, horizon(), 7);
        let b = FaultSchedule::generate(&m, 4, horizon(), 7);
        assert_eq!(a, b);
        let c = FaultSchedule::generate(&m, 4, horizon(), 8);
        assert_ne!(a, c, "different seed must move the schedule");
    }

    #[test]
    fn schedules_nest_across_scales() {
        let base = FaultModel::dcc();
        let mut prev_len = 0usize;
        let mut prev: Vec<FaultWindow> = Vec::new();
        for scale in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let m = base.clone().scaled(scale);
            let s = FaultSchedule::generate(&m, 8, horizon(), 99);
            let windows: Vec<FaultWindow> = s.windows().copied().collect();
            for w in &prev {
                assert!(
                    windows.contains(w),
                    "scale {scale}: window {w:?} from a lower scale vanished"
                );
            }
            assert!(s.len() >= prev_len);
            prev = windows;
            prev_len = s.len();
        }
    }

    #[test]
    fn fatals_only_on_preemptible_platforms() {
        let h = SimDur::from_secs_f64(200.0 * 3600.0);
        let dcc = FaultSchedule::generate(&FaultModel::dcc().scaled(8.0), 8, h, 1);
        assert!(dcc.fatals().is_empty(), "dcc has no spot market");
        let ec2 = FaultSchedule::generate(&FaultModel::ec2().scaled(8.0), 8, h, 1);
        assert!(!ec2.fatals().is_empty(), "ec2 at max scale must preempt");
        assert!(ec2.fatals().windows(2).all(|w| w[0] <= w[1]), "sorted");
    }

    #[test]
    fn factors_reflect_windows() {
        let m = FaultModel::dcc().scaled(8.0);
        let s = FaultSchedule::generate(&m, 8, SimDur::from_secs_f64(100.0 * 3600.0), 3);
        let mut saw_steal = false;
        let mut saw_nic = false;
        for w in s.windows() {
            let mid = w.start + SimDur::from_nanos(w.end.since(w.start).0 / 2);
            match w.kind {
                FaultKind::StealStorm { factor } => {
                    assert!(s.compute_factor(w.node, mid) >= factor);
                    saw_steal = true;
                }
                FaultKind::NicDegrade { factor } => {
                    assert!(s.net_factor(w.node, mid) >= factor);
                    saw_nic = true;
                }
                FaultKind::NodeCrash => {
                    let end = s.crash_end(w.node, mid).expect("down node reports end");
                    assert!(end >= w.end);
                }
                FaultKind::NfsBrownout { factor } => {
                    assert!(s.io_factor(mid) >= factor);
                }
                FaultKind::Preemption | FaultKind::SilentFlip { .. } => {}
            }
        }
        assert!(saw_steal && saw_nic, "dcc at max scale shows both classes");
    }

    #[test]
    fn retry_closed_form() {
        let p = RetryPolicy::default();
        let issued = SimTime::from_secs(10);
        // Node already up: first attempt succeeds immediately.
        assert_eq!(p.first_success(issued, SimTime::from_secs(5)), Some(issued));
        // Node recovers shortly: success at the first attempt at/after it.
        let recovery = issued + SimDur::from_secs_f64(1.2);
        let got = p.first_success(issued, recovery).unwrap();
        assert!(got >= recovery);
        assert!(got.since(recovery) < SimDur::from_secs_f64(2.0));
        // Attempts are monotone in recovery time.
        let later = p
            .first_success(issued, recovery + SimDur::from_secs_f64(5.0))
            .unwrap();
        assert!(later >= got);
        // Retry budget exhausts for an unreachable recovery.
        let tight = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        };
        assert_eq!(
            tight.first_success(issued, SimTime::from_secs(10_000)),
            None
        );
    }

    #[test]
    fn presets_match_platforms() {
        assert!(FaultModel::vayu().preempt_per_node_hour == 0.0);
        assert!(FaultModel::dcc().preempt_per_node_hour == 0.0);
        assert!(FaultModel::ec2().preempt_per_node_hour > 0.0);
        assert!(FaultModel::dcc().nic_factor > FaultModel::ec2().nic_factor);
        assert!(FaultModel::vayu().nic_per_node_hour == 0.0);
        // SDC is opt-in: every fail-stop preset ships with rate 0.0, so
        // PR 2 experiments reproduce bit-identically.
        for m in [FaultModel::vayu(), FaultModel::dcc(), FaultModel::ec2()] {
            assert_eq!(m.sdc_per_node_hour, 0.0, "{}", m.name);
        }
        let v = FaultModel::vayu().with_platform_sdc();
        let d = FaultModel::dcc().with_platform_sdc();
        let e = FaultModel::ec2().with_platform_sdc();
        assert!(v.sdc_per_node_hour < d.sdc_per_node_hour);
        assert!(d.sdc_per_node_hour < e.sdc_per_node_hour);
    }

    #[test]
    fn sdc_events_are_deterministic_and_nested_across_scales() {
        let base = FaultModel::ec2().with_platform_sdc();
        let h = SimDur::from_secs_f64(400.0 * 3600.0);
        let a = FaultSchedule::generate(&base, 4, h, 11);
        let b = FaultSchedule::generate(&base, 4, h, 11);
        assert_eq!(a.sdc(), b.sdc());
        assert!(!a.sdc().is_empty(), "ec2 SDC preset over 400h must fire");
        assert!(a.sdc().windows(2).all(|w| w[0].t <= w[1].t), "sorted");
        assert!(a.sdc().iter().all(|e| e.severity > 0.0 && e.node < 4));
        let mut prev: Vec<SdcEvent> = Vec::new();
        for scale in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let s = FaultSchedule::generate(&base.clone().scaled(scale), 4, h, 11);
            for e in &prev {
                assert!(s.sdc().contains(e), "scale {scale}: SDC event vanished");
            }
            prev = s.sdc().to_vec();
        }
    }

    #[test]
    fn sdc_does_not_perturb_failstop_streams() {
        // Turning SDC on must leave every fail-stop window bit-identical:
        // the class draws on its own RNG stream.
        let h = SimDur::from_secs_f64(50.0 * 3600.0);
        let plain = FaultSchedule::generate(&FaultModel::ec2().scaled(4.0), 4, h, 5);
        let with_sdc =
            FaultSchedule::generate(&FaultModel::ec2().scaled(4.0).with_platform_sdc(), 4, h, 5);
        let a: Vec<FaultWindow> = plain.windows().copied().collect();
        let b: Vec<FaultWindow> = with_sdc.windows().copied().collect();
        assert_eq!(a, b);
        assert_eq!(plain.fatals(), with_sdc.fatals());
        assert!(plain.sdc().is_empty());
        assert!(!with_sdc.sdc().is_empty());
    }

    /// Property sweep (satellite): schedules generated from the same
    /// (rates, nodes, horizon, seed) nest whenever one scale dominates
    /// another — across several seeds, platforms and scale pairs.
    #[test]
    fn prop_generate_nests_when_rates_scale_up() {
        let h = SimDur::from_secs_f64(80.0 * 3600.0);
        for model in [
            FaultModel::dcc(),
            FaultModel::ec2().with_platform_sdc(),
            FaultModel::vayu().with_sdc(0.01, 0.5),
        ] {
            for seed in [1u64, 2, 3, 0xDEAD, 0xBEEF] {
                for (lo, hi) in [(0.25, 0.5), (0.5, 1.0), (1.0, 3.0), (3.0, 8.0)] {
                    let a = FaultSchedule::generate(&model.clone().scaled(lo), 6, h, seed);
                    let b = FaultSchedule::generate(&model.clone().scaled(hi), 6, h, seed);
                    assert!(a.len() <= b.len());
                    let big: Vec<FaultWindow> = b.windows().copied().collect();
                    for w in a.windows() {
                        assert!(big.contains(w), "{}/{seed}/{lo}->{hi}: {w:?}", model.name);
                    }
                    for f in a.fatals() {
                        assert!(b.fatals().contains(f));
                    }
                    for e in a.sdc() {
                        assert!(b.sdc().contains(e));
                    }
                }
            }
        }
    }

    /// Property sweep (satellite): `scaled` and `with_rates_scaled` never
    /// produce a negative rate and never flip `is_null` for positive
    /// multipliers.
    #[test]
    fn prop_scaling_never_negates_rates_or_flips_is_null() {
        let rates = |m: &FaultModel| {
            [
                m.crash_per_node_hour,
                m.nic_per_node_hour,
                m.steal_per_node_hour,
                m.brownout_per_hour,
                m.preempt_per_node_hour,
                m.sdc_per_node_hour,
            ]
        };
        for model in [
            FaultModel::none(),
            FaultModel::vayu(),
            FaultModel::dcc(),
            FaultModel::ec2().with_platform_sdc(),
        ] {
            let null_before = model.is_null();
            for f in [0.0, 1e-9, 0.5, 1.0, 7.3, 1e6, -1.0, -0.0] {
                let m = model.clone().with_rates_scaled(f);
                assert!(
                    rates(&m).iter().all(|r| *r >= 0.0 && !r.is_sign_negative()),
                    "{} x {f}: negative rate {:?}",
                    model.name,
                    rates(&m)
                );
                if f > 0.0 {
                    assert_eq!(m.is_null(), null_before, "{} x {f}", model.name);
                }
            }
            for s in [-3.0, 0.0, 0.5, 1.0, 8.0, 64.0, f64::INFINITY] {
                let m = model.clone().scaled(s);
                assert!((0.0..=FaultModel::MAX_SCALE).contains(&m.scale));
                assert!(rates(&m).iter().all(|r| *r >= 0.0));
            }
        }
    }

    /// The shared delay sequence is the single source of backoff truth:
    /// its prefix matches the hand-rolled recurrence bit for bit, and
    /// `first_success` attempts land exactly on its partial sums.
    #[test]
    fn delays_is_the_single_backoff_source() {
        let p = RetryPolicy::default();
        let got: Vec<f64> = p.delays().take(8).collect();
        let mut want = Vec::new();
        let mut d = p.timeout_secs.max(1e-9).min(p.max_delay_secs);
        for _ in 0..8 {
            want.push(d);
            d = (d * p.backoff).clamp(1e-9, p.max_delay_secs);
        }
        assert_eq!(got, want);
        // 1-based delay_before indexes the same sequence.
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(p.delay_before(i as u32 + 1), w);
        }
        assert_eq!(p.delay_before(0), want[0], "attempt 0 clamps to 1");
        // first_success lands on a partial sum of delays().
        let issued = SimTime::from_secs(0);
        let recovery = SimTime::from_secs_f64(5.0);
        let got = p.first_success(issued, recovery).unwrap();
        let mut t = issued;
        let mut sums = vec![t];
        for d in p.delays().take(6) {
            t += SimDur::from_secs_f64(d);
            sums.push(t);
        }
        assert!(
            sums.contains(&got),
            "{got:?} not on the delay grid {sums:?}"
        );
    }

    /// Regression (satellite): the backoff cap bounds every inter-attempt
    /// delay, so even degenerate multipliers/caps and very long fault
    /// windows cannot overflow or explode the sequence.
    #[test]
    fn backoff_cap_bounds_the_delay_sequence() {
        let issued = SimTime::from_secs(0);
        // A crazy multiplier with a finite cap: total wait is bounded by
        // (max_retries + 1) * max_delay.
        let p = RetryPolicy {
            timeout_secs: 1.0,
            backoff: 1e12,
            max_retries: 50,
            max_delay_secs: 10.0,
        };
        let got = p
            .first_success(issued, SimTime::from_secs(400))
            .expect("cap keeps retry attempts coming");
        assert!(got.as_secs_f64() <= 51.0 * 10.0 + 1.0);
        // Non-finite knobs are sanitized instead of poisoning SimTime.
        for bad in [
            RetryPolicy {
                backoff: f64::INFINITY,
                ..p
            },
            RetryPolicy {
                backoff: f64::NAN,
                ..p
            },
            RetryPolicy {
                max_delay_secs: f64::INFINITY,
                ..p
            },
            RetryPolicy {
                max_delay_secs: -1.0,
                ..p
            },
        ] {
            let t = bad.first_success(issued, SimTime::from_secs(60));
            if let Some(t) = t {
                assert!(t.as_secs_f64().is_finite());
                assert!(t.as_secs_f64() < 1e6, "delay sequence exploded: {t:?}");
            }
        }
        // Monotone growth still holds below the cap.
        let gentle = RetryPolicy::default();
        let a = gentle
            .first_success(issued, SimTime::from_secs_f64(3.0))
            .unwrap();
        let b = gentle
            .first_success(issued, SimTime::from_secs_f64(20.0))
            .unwrap();
        assert!(a <= b);
    }
}
