//! `cloudsim-bench` — benchmark harness for the reproduction study.
//!
//! * The `figures` binary (`cargo run -p cloudsim-bench --bin figures
//!   --release`) regenerates every figure and table of the paper as text
//!   and CSV.
//! * The Criterion benches (`cargo bench`) time the simulation pipelines
//!   behind each figure at reduced scale, plus ablation studies of the
//!   design choices (NUMA masking, HyperThreading, collective algorithms,
//!   eager thresholds) and raw engine throughput.

/// Shared helper: the reduced configuration the Criterion benches use so a
/// full `cargo bench` completes in minutes.
pub fn bench_config() -> cloudsim::ReproConfig {
    cloudsim::ReproConfig::quick()
}
