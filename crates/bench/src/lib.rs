//! `cloudsim-bench` — benchmark harness for the reproduction study.
//!
//! * The `figures` binary (`cargo run -p cloudsim-bench --bin figures
//!   --release`) regenerates every figure and table of the paper as text
//!   and CSV.
//! * The benches (`cargo bench`) time the simulation pipelines behind each
//!   figure at reduced scale, plus ablation studies of the design choices
//!   (NUMA masking, HyperThreading, collective algorithms, eager
//!   thresholds) and raw engine throughput. They are plain timing binaries
//!   (`harness = false`) so the workspace carries no external bench
//!   dependencies.

use std::time::Instant;

/// Shared helper: the reduced configuration the benches use so a full
/// `cargo bench` completes in minutes.
pub fn bench_config() -> cloudsim::ReproConfig {
    cloudsim::ReproConfig::quick()
}

/// Minimal timing loop: one warm-up call, then `iters` individually timed
/// calls. Prints and returns the *best* (minimum) per-iteration time in
/// seconds. Timing noise on shared/virtualized machines is one-sided — a
/// scheduler stall can only make an iteration slower, never faster — so
/// best-of-N is far more stable than the mean, which matters when CI gates
/// on these numbers. The closure's result is passed through
/// `std::hint::black_box` so the optimizer cannot elide the work.
pub fn bench_fn<O>(name: &str, iters: usize, mut f: impl FnMut() -> O) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        let dt = start.elapsed().as_secs_f64();
        total += dt;
        best = best.min(dt);
    }
    let mean = total / iters.max(1) as f64;
    println!(
        "{name:<48} {:>12.3} ms/iter best  (mean {:.3}, {iters} iters)",
        best * 1e3,
        mean * 1e3
    );
    best
}

/// Like [`bench_fn`] but also reports throughput for `elements` units of
/// work per iteration.
pub fn bench_throughput<O>(name: &str, iters: usize, elements: u64, f: impl FnMut() -> O) -> f64 {
    let per_iter = bench_fn(name, iters, f);
    if per_iter > 0.0 {
        println!("{name:<48} {:>12.0} elems/s", elements as f64 / per_iter);
    }
    per_iter
}

pub mod perfjson {
    //! Machine-readable bench trajectories (`BENCH_*.json`).
    //!
    //! The engine bench records its measured throughput here so CI can
    //! track a perf trajectory across commits and gate on regressions.
    //! The format is a small fixed schema written and parsed by hand — the
    //! workspace stays dependency-free — and every file carries a
    //! *calibration* number (a fixed pure-CPU loop timed on the same
    //! machine) so comparisons divide machine speed out.

    use std::time::Instant;

    /// One benchmark's measurement.
    #[derive(Debug, Clone, PartialEq)]
    pub struct BenchRecord {
        pub name: String,
        /// Simulated ops executed per iteration.
        pub total_ops: u64,
        pub iters: usize,
        pub sec_per_iter: f64,
        pub ops_per_sec: f64,
    }

    /// A prior measurement kept alongside the current one so the committed
    /// file shows a before/after pair (e.g. pre- vs post-optimization).
    #[derive(Debug, Clone, PartialEq)]
    pub struct BaselineBlock {
        /// Where the numbers came from, e.g. a commit hash.
        pub label: String,
        pub calib_ops_per_sec: f64,
        pub results: Vec<BenchRecord>,
    }

    /// The whole `BENCH_engine.json` payload.
    #[derive(Debug, Clone, PartialEq)]
    pub struct EngineBenchFile {
        /// What was measured (configs, seed) — changes invalidate baselines.
        pub fingerprint: String,
        /// Throughput of [`calibrate`]'s fixed loop on the measuring machine.
        pub calib_ops_per_sec: f64,
        pub results: Vec<BenchRecord>,
        /// Optional before-numbers preserved for before/after context.
        pub baseline: Option<BaselineBlock>,
    }

    /// A fixed pure-CPU calibration loop (splitmix64 mixing): its measured
    /// iterations/sec is a machine-speed proxy recorded next to every bench
    /// result, so `--check` can compare normalized numbers across machines.
    pub fn calibrate() -> f64 {
        const N: u64 = 20_000_000;
        // Best of three passes: like `bench_fn`, the minimum sheds
        // one-sided scheduler noise on shared machines.
        let mut best = f64::INFINITY;
        for pass in 0..3u64 {
            let mut acc = pass;
            let start = Instant::now();
            for i in 0..N {
                acc = acc.wrapping_add(cloudsim::sim_des::splitmix64(i ^ acc));
            }
            std::hint::black_box(acc);
            best = best.min(start.elapsed().as_secs_f64());
        }
        N as f64 / best
    }

    impl EngineBenchFile {
        /// Render as pretty-printed JSON.
        pub fn to_json(&self) -> String {
            let mut s = String::new();
            s.push_str("{\n");
            s.push_str("  \"schema\": \"bench-engine-v1\",\n");
            s.push_str(&format!(
                "  \"fingerprint\": \"{}\",\n",
                self.fingerprint.replace('"', "'")
            ));
            s.push_str(&format!(
                "  \"calib_ops_per_sec\": {:.1},\n",
                self.calib_ops_per_sec
            ));
            fn render_records(s: &mut String, indent: &str, results: &[BenchRecord]) {
                for (i, r) in results.iter().enumerate() {
                    s.push_str(&format!(
                        "{indent}{{\"name\": \"{}\", \"total_ops\": {}, \"iters\": {}, \
                         \"sec_per_iter\": {:.9}, \"ops_per_sec\": {:.1}}}{}\n",
                        r.name,
                        r.total_ops,
                        r.iters,
                        r.sec_per_iter,
                        r.ops_per_sec,
                        if i + 1 < results.len() { "," } else { "" }
                    ));
                }
            }
            s.push_str("  \"results\": [\n");
            render_records(&mut s, "    ", &self.results);
            if let Some(b) = &self.baseline {
                s.push_str("  ],\n");
                s.push_str("  \"baseline\": {\n");
                s.push_str(&format!(
                    "    \"label\": \"{}\",\n",
                    b.label.replace('"', "'")
                ));
                s.push_str(&format!(
                    "    \"calib_ops_per_sec\": {:.1},\n",
                    b.calib_ops_per_sec
                ));
                s.push_str("    \"results\": [\n");
                render_records(&mut s, "      ", &b.results);
                s.push_str("    ]\n  }\n}\n");
            } else {
                s.push_str("  ]\n}\n");
            }
            s
        }

        /// Parse a file produced by [`EngineBenchFile::to_json`]. Tolerant
        /// scanner for the fixed schema (no JSON dependency): it looks for
        /// the known keys and ignores everything else.
        pub fn parse(text: &str) -> EngineBenchFile {
            fn str_after(hay: &str, key: &str) -> Option<String> {
                let at = hay.find(key)? + key.len();
                let rest = &hay[at..];
                let open = rest.find('"')? + 1;
                let close = open + rest[open..].find('"')?;
                Some(rest[open..close].to_string())
            }
            fn num_after(hay: &str, key: &str) -> Option<f64> {
                let at = hay.find(key)? + key.len();
                let rest = hay[at..].trim_start_matches([':', ' ']);
                let end = rest
                    .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
                    .unwrap_or(rest.len());
                rest[..end].parse().ok()
            }
            fn records_in(text: &str) -> Vec<BenchRecord> {
                let mut results = Vec::new();
                for line in text.lines() {
                    let line = line.trim();
                    if !line.starts_with("{\"name\"") {
                        continue;
                    }
                    let (Some(name), Some(ops), Some(spi)) = (
                        str_after(line, "\"name\""),
                        num_after(line, "\"ops_per_sec\""),
                        num_after(line, "\"sec_per_iter\""),
                    ) else {
                        continue;
                    };
                    results.push(BenchRecord {
                        name,
                        total_ops: num_after(line, "\"total_ops\"").unwrap_or(0.0) as u64,
                        iters: num_after(line, "\"iters\"").unwrap_or(0.0) as usize,
                        sec_per_iter: spi,
                        ops_per_sec: ops,
                    });
                }
                results
            }
            // `to_json` always renders the optional baseline block last, so
            // splitting at its key cleanly separates the two record sets.
            let (main, base) = match text.split_once("\"baseline\"") {
                Some((m, b)) => (m, Some(b)),
                None => (text, None),
            };
            let fingerprint = str_after(main, "\"fingerprint\"").unwrap_or_default();
            let calib = num_after(main, "\"calib_ops_per_sec\"").unwrap_or(1.0);
            let baseline = base.map(|b| BaselineBlock {
                label: str_after(b, "\"label\"").unwrap_or_default(),
                calib_ops_per_sec: num_after(b, "\"calib_ops_per_sec\"").unwrap_or(1.0),
                results: records_in(b),
            });
            EngineBenchFile {
                fingerprint,
                calib_ops_per_sec: calib,
                results: records_in(main),
                baseline,
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn json_roundtrips() {
            let f = EngineBenchFile {
                fingerprint: "test fp".into(),
                calib_ops_per_sec: 123456789.5,
                results: vec![
                    BenchRecord {
                        name: "engine_throughput/np8".into(),
                        total_ops: 4792,
                        iters: 40,
                        sec_per_iter: 0.001234,
                        ops_per_sec: 3_883_306.3,
                    },
                    BenchRecord {
                        name: "engine_cg_smoke/np1024".into(),
                        total_ops: 3_500_000,
                        iters: 4,
                        sec_per_iter: 1.5,
                        ops_per_sec: 2_333_333.3,
                    },
                ],
                baseline: None,
            };
            let parsed = EngineBenchFile::parse(&f.to_json());
            assert_eq!(parsed.fingerprint, f.fingerprint);
            assert!((parsed.calib_ops_per_sec - f.calib_ops_per_sec).abs() < 1.0);
            assert_eq!(parsed.results.len(), 2);
            assert_eq!(parsed.results[0].name, "engine_throughput/np8");
            assert_eq!(parsed.results[1].total_ops, 3_500_000);
            assert!((parsed.results[1].ops_per_sec - 2_333_333.3).abs() < 1.0);
            assert_eq!(parsed.baseline, None);
        }

        #[test]
        fn baseline_block_roundtrips() {
            let f = EngineBenchFile {
                fingerprint: "test fp".into(),
                calib_ops_per_sec: 200_000_000.0,
                results: vec![BenchRecord {
                    name: "engine_cg_smoke/np1024".into(),
                    total_ops: 3_459_360,
                    iters: 4,
                    sec_per_iter: 0.4,
                    ops_per_sec: 8_648_400.0,
                }],
                baseline: Some(BaselineBlock {
                    label: "pre-optimization @ 712675a".into(),
                    calib_ops_per_sec: 180_000_000.0,
                    results: vec![BenchRecord {
                        name: "engine_cg_smoke/np1024".into(),
                        total_ops: 3_459_360,
                        iters: 2,
                        sec_per_iter: 0.95,
                        ops_per_sec: 3_641_431.6,
                    }],
                }),
            };
            let parsed = EngineBenchFile::parse(&f.to_json());
            // The baseline's records and calibration must not bleed into
            // the main section (`--check` gates on the main records only).
            assert_eq!(parsed.results.len(), 1);
            assert!((parsed.calib_ops_per_sec - 200_000_000.0).abs() < 1.0);
            let b = parsed.baseline.expect("baseline parsed");
            assert_eq!(b.label, "pre-optimization @ 712675a");
            assert!((b.calib_ops_per_sec - 180_000_000.0).abs() < 1.0);
            assert_eq!(b.results.len(), 1);
            assert!((b.results[0].ops_per_sec - 3_641_431.6).abs() < 1.0);
        }
    }
}
