//! `cloudsim-bench` — benchmark harness for the reproduction study.
//!
//! * The `figures` binary (`cargo run -p cloudsim-bench --bin figures
//!   --release`) regenerates every figure and table of the paper as text
//!   and CSV.
//! * The benches (`cargo bench`) time the simulation pipelines behind each
//!   figure at reduced scale, plus ablation studies of the design choices
//!   (NUMA masking, HyperThreading, collective algorithms, eager
//!   thresholds) and raw engine throughput. They are plain timing binaries
//!   (`harness = false`) so the workspace carries no external bench
//!   dependencies.

use std::time::Instant;

/// Shared helper: the reduced configuration the benches use so a full
/// `cargo bench` completes in minutes.
pub fn bench_config() -> cloudsim::ReproConfig {
    cloudsim::ReproConfig::quick()
}

/// Minimal timing loop: one warm-up call, then `iters` timed calls.
/// Prints mean per-iteration time; returns it in seconds. The closure's
/// result is passed through `std::hint::black_box` so the optimizer cannot
/// elide the work.
pub fn bench_fn<O>(name: &str, iters: usize, mut f: impl FnMut() -> O) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters.max(1) {
        std::hint::black_box(f());
    }
    let per_iter = start.elapsed().as_secs_f64() / iters.max(1) as f64;
    println!(
        "{name:<48} {:>12.3} ms/iter  ({iters} iters)",
        per_iter * 1e3
    );
    per_iter
}

/// Like [`bench_fn`] but also reports throughput for `elements` units of
/// work per iteration.
pub fn bench_throughput<O>(name: &str, iters: usize, elements: u64, f: impl FnMut() -> O) -> f64 {
    let per_iter = bench_fn(name, iters, f);
    if per_iter > 0.0 {
        println!("{name:<48} {:>12.0} elems/s", elements as f64 / per_iter);
    }
    per_iter
}
