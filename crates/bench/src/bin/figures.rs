//! Regenerate every figure and table of the paper.
//!
//! ```text
//! figures [--quick] [--seed N] [--csv DIR] [fig1 fig2 fig3 fig4 tab2 fig5 fig6 tab3 fig7 faultsweep recoverysweep schedsweep slotsched faultsched ablations arrivef arrivef-rerun | all]
//! ```
//!
//! With no experiment arguments, everything runs (the paper configuration
//! unless `--quick` is given). `--seed N` perturbs every noise and fault
//! stream (the default seed reproduces the committed reference numbers).
//! `--csv DIR` additionally writes one CSV per table into `DIR`.

use cloudsim::{figures, AsciiChart, ReproConfig, Table};
use std::io::Write as _;

/// Build a chart from a table whose first column is the x value and whose
/// remaining columns are numeric series (the OSU and speedup tables).
fn chart_of(t: &Table) -> Option<AsciiChart> {
    if t.rows.len() < 2 || t.headers.len() < 2 {
        return None;
    }
    let parse = |s: &str| s.parse::<f64>().ok();
    // Every cell in the first column and at least the next 2 columns must
    // be numeric.
    let xs: Option<Vec<f64>> = t.rows.iter().map(|r| parse(&r[0])).collect();
    let xs = xs?;
    let log = t.title.contains("OSU");
    let mut chart = AsciiChart::new(t.title.clone());
    if log {
        chart = chart.log_log();
    }
    let ncol = t.headers.len().min(5);
    for col in 1..ncol {
        let ys: Option<Vec<f64>> = t.rows.iter().map(|r| parse(&r[col])).collect();
        let ys = ys?;
        chart = chart.series(t.headers[col].clone(), xs.iter().cloned().zip(ys).collect());
    }
    Some(chart)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut plot = false;
    let mut seed: Option<u64> = None;
    let mut csv_dir: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--plot" => plot = true,
            "--seed" => {
                let v = it.next().and_then(|s| s.parse::<u64>().ok());
                seed = Some(v.unwrap_or_else(|| {
                    eprintln!("--seed requires an unsigned integer argument");
                    std::process::exit(2);
                }));
            }
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--csv requires a directory argument");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--quick] [--plot] [--seed N] [--csv DIR] [fig1 fig2 fig3 fig4 tab2 fig5 fig6 tab3 fig7 faultsweep recoverysweep schedsweep slotsched faultsched ablations arrivef arrivef-rerun | all]"
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }
    let mut cfg = if quick {
        ReproConfig::quick()
    } else {
        ReproConfig::paper()
    };
    if let Some(s) = seed {
        cfg = cfg.with_seed(s);
    }
    eprintln!(
        "# running with class {}, {} repeat(s), MetUM {} steps, Chaste {} steps, seed {:#x}",
        cfg.npb_class.letter(),
        cfg.repeats,
        cfg.metum_steps,
        cfg.chaste_steps,
        cfg.seed
    );

    let mut tables: Vec<Table> = Vec::new();
    for what in &wanted {
        match what.as_str() {
            "all" => {
                tables.extend(figures::all_figures(&cfg));
                tables.push(figures::faultsweep(&cfg));
                tables.push(figures::recoverysweep(&cfg));
                tables.extend(cloudsim::all_ablations(&cfg));
                tables.push(figures::schedsweep(&cfg));
                tables.push(figures::slot_capabilities(&cfg));
                tables.push(figures::faultsched(&cfg));
                tables.push(cloudsim::arrive_f_table(if quick { 30 } else { 80 }, 42));
                tables.push(cloudsim::arrive_f_rerun_table(
                    if quick { 60 } else { 120 },
                    42,
                ));
            }
            "fig1" => tables.push(figures::fig1_osu_bandwidth(&cfg)),
            "fig2" => tables.push(figures::fig2_osu_latency(&cfg)),
            "fig3" => tables.push(figures::fig3_npb_serial(&cfg)),
            "fig4" => tables.extend(figures::fig4_npb_speedups(&cfg)),
            "tab2" => tables.push(figures::tab2_npb_comm(&cfg)),
            "fig5" => tables.push(figures::fig5_chaste(&cfg)),
            "fig6" => tables.push(figures::fig6_metum(&cfg)),
            "tab3" => tables.push(figures::tab3_metum(&cfg)),
            "fig7" => tables.push(figures::fig7_load_balance(&cfg)),
            "faultsweep" => tables.push(figures::faultsweep(&cfg)),
            "recoverysweep" => tables.push(figures::recoverysweep(&cfg)),
            "schedsweep" => tables.push(figures::schedsweep(&cfg)),
            "slotsched" => tables.push(figures::slot_capabilities(&cfg)),
            "faultsched" => tables.push(figures::faultsched(&cfg)),
            "ablations" => tables.extend(cloudsim::all_ablations(&cfg)),
            "arrivef" => tables.push(cloudsim::arrive_f_table(if quick { 30 } else { 80 }, 42)),
            "arrivef-rerun" => tables.push(cloudsim::arrive_f_rerun_table(
                if quick { 60 } else { 120 },
                42,
            )),
            other => {
                eprintln!("unknown experiment '{other}'");
                std::process::exit(2);
            }
        }
    }

    for t in &tables {
        println!("{}", t.to_text());
        if plot {
            if let Some(chart) = chart_of(t) {
                println!("{}", chart.render());
            }
        }
    }
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        for t in &tables {
            let slug: String = t
                .title
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect::<String>()
                .split('_')
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join("_");
            let path = format!("{dir}/{}.csv", &slug[..slug.len().min(60)]);
            let mut f = std::fs::File::create(&path).expect("create csv");
            f.write_all(t.to_csv().as_bytes()).expect("write csv");
            eprintln!("# wrote {path}");
        }
    }
}
