//! Throughput of the real numerical kernels backing the workload models.

use cloudsim::numerics::{
    adi_heat_step, cg_solve, counting_sort, fft, generate_keys, penta_solve, thomas_solve, v_cycle,
    Csr, Grid3, C64,
};
use cloudsim_bench::{bench_fn, bench_throughput};

fn main() {
    // Sparse CG.
    let a = Csr::poisson_2d(64, 64);
    let b = vec![1.0; a.n];
    bench_throughput("numerics_cg/poisson64x64", 20, a.nnz() as u64, || {
        let mut x = vec![0.0; a.n];
        cg_solve(&a, &b, &mut x, 1e-8, 400).iterations
    });

    // FFT.
    for log_n in [10u32, 14] {
        let n = 1usize << log_n;
        let data: Vec<C64> = (0..n)
            .map(|i| C64::new((i as f64 * 0.01).sin(), 0.0))
            .collect();
        bench_throughput(&format!("numerics_fft/n{n}"), 20, n as u64, || {
            let mut d = data.clone();
            fft(&mut d, false);
            d[0].re
        });
    }

    // Multigrid V-cycle.
    let n = 33;
    let mut f = Grid3::zeros(n);
    for v in f.data.iter_mut() {
        *v = 1.0;
    }
    bench_fn("numerics_multigrid/vcycle33", 10, || {
        let mut u = Grid3::zeros(n);
        v_cycle(&mut u, &f, 2, 2)
    });

    // Line solvers.
    let n = 4096;
    let a1 = vec![-1.0; n];
    let b1 = vec![4.0; n];
    let cc = vec![-1.0; n];
    let e = vec![0.25; n];
    let f1 = vec![0.25; n];
    bench_throughput("numerics_line_solvers/thomas4096", 50, n as u64, || {
        let mut d = vec![1.0; n];
        thomas_solve(&a1, &b1, &cc, &mut d);
        d[0]
    });
    bench_throughput("numerics_line_solvers/penta4096", 50, n as u64, || {
        let mut d = vec![1.0; n];
        penta_solve(&e, &a1, &b1, &cc, &f1, &mut d);
        d[0]
    });
    bench_fn("numerics_line_solvers/adi64", 50, || {
        let mut u = vec![1.0; 64 * 64];
        adi_heat_step(&mut u, 64, 1e-4);
        u[0]
    });

    // IS counting sort.
    let keys = generate_keys(1 << 16, 1 << 14, 271828183);
    bench_throughput(
        "numerics_is_sort/counting_sort_64k",
        20,
        keys.len() as u64,
        || counting_sort(&keys, 1 << 14).len(),
    );
}
