//! Throughput of the real numerical kernels backing the workload models.

use cloudsim::numerics::{
    adi_heat_step, cg_solve, counting_sort, fft, generate_keys, penta_solve, thomas_solve,
    v_cycle, Csr, Grid3, C64,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_cg(c: &mut Criterion) {
    let mut g = c.benchmark_group("numerics_cg");
    let a = Csr::poisson_2d(64, 64);
    let b = vec![1.0; a.n];
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function("poisson64x64", |bch| {
        bch.iter(|| {
            let mut x = vec![0.0; a.n];
            cg_solve(&a, &b, &mut x, 1e-8, 400).iterations
        })
    });
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("numerics_fft");
    for log_n in [10u32, 14] {
        let n = 1usize << log_n;
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("n{n}"), |bch| {
            let data: Vec<C64> = (0..n).map(|i| C64::new((i as f64 * 0.01).sin(), 0.0)).collect();
            bch.iter(|| {
                let mut d = data.clone();
                fft(&mut d, false);
                d[0].re
            })
        });
    }
    g.finish();
}

fn bench_mg(c: &mut Criterion) {
    let mut g = c.benchmark_group("numerics_multigrid");
    g.sample_size(10);
    let n = 33;
    let mut f = Grid3::zeros(n);
    for v in f.data.iter_mut() {
        *v = 1.0;
    }
    g.bench_function("vcycle33", |bch| {
        bch.iter(|| {
            let mut u = Grid3::zeros(n);
            v_cycle(&mut u, &f, 2, 2)
        })
    });
    g.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("numerics_line_solvers");
    let n = 4096;
    let a = vec![-1.0; n];
    let b = vec![4.0; n];
    let cc = vec![-1.0; n];
    let e = vec![0.25; n];
    let f = vec![0.25; n];
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("thomas4096", |bch| {
        bch.iter(|| {
            let mut d = vec![1.0; n];
            thomas_solve(&a, &b, &cc, &mut d);
            d[0]
        })
    });
    g.bench_function("penta4096", |bch| {
        bch.iter(|| {
            let mut d = vec![1.0; n];
            penta_solve(&e, &a, &b, &cc, &f, &mut d);
            d[0]
        })
    });
    g.bench_function("adi64", |bch| {
        bch.iter(|| {
            let mut u = vec![1.0; 64 * 64];
            adi_heat_step(&mut u, 64, 1e-4);
            u[0]
        })
    });
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("numerics_is_sort");
    let keys = generate_keys(1 << 16, 1 << 14, 271828183);
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("counting_sort_64k", |bch| {
        bch.iter(|| counting_sort(&keys, 1 << 14).len())
    });
    g.finish();
}

criterion_group!(benches, bench_cg, bench_fft, bench_mg, bench_solvers, bench_sort);
criterion_main!(benches);
