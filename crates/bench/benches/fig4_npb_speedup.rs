//! Bench the Figure 4 pipeline: one parallel sweep point (CG at 16 ranks)
//! per platform, class S.

use cloudsim::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_cg_np16_classS");
    let w = Npb::new(Kernel::Cg, Class::S);
    for cluster in [presets::dcc(), presets::ec2(), presets::vayu()] {
        g.bench_function(cluster.name, |b| {
            b.iter(|| {
                cloudsim::Experiment::new(&w, &cluster, 16)
                    .repeats(1)
                    .run_once()
                    .unwrap()
                    .0
                    .elapsed_secs()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
