//! Bench the Figure 4 pipeline: one parallel sweep point (CG at 16 ranks)
//! per platform, class S.

use cloudsim::prelude::*;
use cloudsim_bench::bench_fn;

fn main() {
    let w = Npb::new(Kernel::Cg, Class::S);
    for cluster in [presets::dcc(), presets::ec2(), presets::vayu()] {
        bench_fn(&format!("fig4_cg_np16_classS/{}", cluster.name), 10, || {
            cloudsim::Experiment::new(&w, &cluster, 16)
                .repeats(1)
                .run_once()
                .unwrap()
                .0
                .elapsed_secs()
        });
    }
}
