//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * NUMA masking on/off (the paper's explanation for DCC's CG drop),
//! * HyperThreading packed vs spread (the EC2 vs EC2-4 story),
//! * collective payload scaling (the 4-byte allreduce signature),
//! * eager/rendezvous threshold sweep.

use cloudsim::prelude::*;
use cloudsim::sim_mpi::CollTopo;
use cloudsim::sim_net::{one_way_time, FabricParams};
use cloudsim_bench::bench_fn;

/// DCC with NUMA exposed instead of masked — what affinity support in the
/// hypervisor would buy.
fn dcc_numa_exposed() -> ClusterSpec {
    let mut c = presets::dcc();
    c.node.hypervisor.numa_masked = false;
    c
}

fn main() {
    // NUMA masking.
    let w = Npb::new(Kernel::Cg, Class::S);
    for (name, cluster) in [("masked", presets::dcc()), ("exposed", dcc_numa_exposed())] {
        bench_fn(&format!("ablation_numa_cg_np8/{name}"), 10, || {
            cloudsim::Experiment::new(&w, &cluster, 8)
                .repeats(1)
                .run_once()
                .unwrap()
                .0
                .elapsed_secs()
        });
    }

    // HyperThread packing.
    let ep = Npb::new(Kernel::Ep, Class::S);
    let ec2 = presets::ec2();
    for (name, strat) in [
        ("packed_2nodes_ht", Strategy::Block),
        ("spread_4nodes", Strategy::Spread { nodes: 4 }),
    ] {
        bench_fn(&format!("ablation_ht_ep_np32/{name}"), 10, || {
            cloudsim::Experiment::new(&ep, &ec2, 32)
                .strategy(strat)
                .repeats(1)
                .run_once()
                .unwrap()
                .0
                .elapsed_secs()
        });
    }

    // Collective cost model.
    let inter = FabricParams::gige_vswitch();
    let intra = FabricParams::shared_memory();
    for bytes in [4usize, 1024, 262144] {
        bench_fn(
            &format!("ablation_allreduce_cost_model/{bytes}B_np32"),
            1000,
            || {
                let topo = CollTopo {
                    inter: &inter,
                    intra: &intra,
                    np: 32,
                    ppn: 8,
                    nodes_used: 4,
                    cpu_factor: 1.0,
                };
                topo.cost(CollOp::Allreduce { bytes })
            },
        );
    }

    // Eager/rendezvous threshold sweep.
    for threshold in [4usize * 1024, 64 * 1024, 1024 * 1024] {
        let mut f = FabricParams::ten_gige_virt();
        f.eager_threshold = threshold;
        bench_fn(
            &format!("ablation_eager_threshold/{}k", threshold / 1024),
            1000,
            || (0..=20).map(|k| one_way_time(&f, 1usize << k)).sum::<f64>(),
        );
    }

    // End-to-end ablation report.
    let masked = cloudsim::Experiment::new(&w, &presets::dcc(), 8)
        .repeats(1)
        .run_once()
        .unwrap()
        .0
        .elapsed_secs();
    let exposed = cloudsim::Experiment::new(&w, &dcc_numa_exposed(), 8)
        .repeats(1)
        .run_once()
        .unwrap()
        .0
        .elapsed_secs();
    println!(
        "# ablation: DCC cg.S np=8 masked={masked:.3}s exposed={exposed:.3}s (masking costs {:.1}%)",
        100.0 * (masked / exposed - 1.0)
    );
}
