//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * NUMA masking on/off (the paper's explanation for DCC's CG drop),
//! * HyperThreading packed vs spread (the EC2 vs EC2-4 story),
//! * collective payload scaling (the 4-byte allreduce signature),
//! * eager/rendezvous threshold sweep.

use cloudsim::prelude::*;
use cloudsim::sim_mpi::{CollTopo, Op};
use cloudsim::sim_net::{one_way_time, FabricParams};
use criterion::{criterion_group, criterion_main, Criterion};

/// DCC with NUMA exposed instead of masked — what affinity support in the
/// hypervisor would buy.
fn dcc_numa_exposed() -> ClusterSpec {
    let mut c = presets::dcc();
    c.node.hypervisor.numa_masked = false;
    c
}

fn ablation_numa(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_numa_cg_np8");
    let w = Npb::new(Kernel::Cg, Class::S);
    for (name, cluster) in [("masked", presets::dcc()), ("exposed", dcc_numa_exposed())] {
        g.bench_function(name, |b| {
            b.iter(|| {
                cloudsim::Experiment::new(&w, &cluster, 8)
                    .repeats(1)
                    .run_once()
                    .unwrap()
                    .0
                    .elapsed_secs()
            })
        });
    }
    g.finish();
}

fn ablation_ht(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ht_ep_np32");
    let w = Npb::new(Kernel::Ep, Class::S);
    let cluster = presets::ec2();
    for (name, strat) in [
        ("packed_2nodes_ht", Strategy::Block),
        ("spread_4nodes", Strategy::Spread { nodes: 4 }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                cloudsim::Experiment::new(&w, &cluster, 32)
                    .strategy(strat)
                    .repeats(1)
                    .run_once()
                    .unwrap()
                    .0
                    .elapsed_secs()
            })
        });
    }
    g.finish();
}

fn ablation_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_allreduce_cost_model");
    let inter = FabricParams::gige_vswitch();
    let intra = FabricParams::shared_memory();
    for bytes in [4usize, 1024, 262144] {
        g.bench_function(format!("{bytes}B_np32"), |b| {
            b.iter(|| {
                let topo = CollTopo {
                    inter: &inter,
                    intra: &intra,
                    np: 32,
                    ppn: 8,
                    nodes_used: 4,
                    cpu_factor: 1.0,
                };
                topo.cost(CollOp::Allreduce { bytes })
            })
        });
    }
    g.finish();
}

fn ablation_eager(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_eager_threshold");
    for threshold in [4usize * 1024, 64 * 1024, 1024 * 1024] {
        g.bench_function(format!("{}k", threshold / 1024), |b| {
            let mut f = FabricParams::ten_gige_virt();
            f.eager_threshold = threshold;
            b.iter(|| {
                // Sweep a range of message sizes through the protocol
                // switch and sum the one-way times.
                (0..=20)
                    .map(|k| one_way_time(&f, 1usize << k))
                    .sum::<f64>()
            })
        });
    }
    g.finish();
}

/// End-to-end ablation as a plain (non-criterion) check: run a tiny job and
/// print how each knob moves elapsed time. Criterion ignores the output but
/// the numbers land in bench logs.
fn ablation_report(_c: &mut Criterion) {
    let w = Npb::new(Kernel::Cg, Class::S);
    let masked = cloudsim::Experiment::new(&w, &presets::dcc(), 8)
        .repeats(1)
        .run_once()
        .unwrap()
        .0
        .elapsed_secs();
    let exposed = cloudsim::Experiment::new(&w, &dcc_numa_exposed(), 8)
        .repeats(1)
        .run_once()
        .unwrap()
        .0
        .elapsed_secs();
    println!("# ablation: DCC cg.S np=8 masked={masked:.3}s exposed={exposed:.3}s (masking costs {:.1}%)",
        100.0 * (masked / exposed - 1.0));
    let _ = Op::Compute { flops: 0.0, bytes: 0.0 };
}

criterion_group!(
    benches,
    ablation_numa,
    ablation_ht,
    ablation_collectives,
    ablation_eager,
    ablation_report
);
criterion_main!(benches);
