//! Raw engine throughput: how many simulated MPI ops per second the DES
//! core sustains. Regression guard for the scheduler's O(log n) heap path.

use cloudsim::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn synthetic_job(np: usize, iters: usize) -> JobSpec {
    let programs = (0..np)
        .map(|r| {
            let mut ops = Vec::with_capacity(iters * 3);
            for i in 0..iters {
                ops.push(Op::Compute { flops: 1e6, bytes: 0.0 });
                let partner = (r as u32) ^ 1;
                if (partner as usize) < np {
                    ops.push(Op::Exchange {
                        partner,
                        send_bytes: 1024,
                        recv_bytes: 1024,
                        tag: (i % 4) as u32,
                    });
                }
                ops.push(Op::Coll(CollOp::Allreduce { bytes: 8 }));
            }
            ops
        })
        .collect();
    JobSpec {
        name: "engine-throughput".into(),
        programs,
        section_names: vec![],
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_throughput");
    for np in [8usize, 64] {
        let iters = 200;
        let job = synthetic_job(np, iters);
        let total_ops = job.total_ops() as u64;
        g.throughput(Throughput::Elements(total_ops));
        g.bench_function(format!("np{np}"), |b| {
            let cluster = presets::vayu();
            b.iter(|| {
                run_job(&job, &cluster, &SimConfig::default(), &mut NullSink)
                    .unwrap()
                    .ops_executed
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
