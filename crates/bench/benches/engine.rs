//! Raw engine throughput: how many simulated MPI ops per second the DES
//! core sustains. Regression guard for the scheduler's O(log n) heap path,
//! exercised through both the streamed and the materialized op paths.

use cloudsim::prelude::*;
use cloudsim_bench::bench_throughput;

fn synthetic_job(np: usize, iters: usize) -> JobSpec {
    let programs = (0..np)
        .map(|r| {
            let mut ops = Vec::with_capacity(iters * 3);
            for i in 0..iters {
                ops.push(Op::Compute {
                    flops: 1e6,
                    bytes: 0.0,
                });
                let partner = (r as u32) ^ 1;
                if (partner as usize) < np {
                    ops.push(Op::Exchange {
                        partner,
                        send_bytes: 1024,
                        recv_bytes: 1024,
                        tag: (i % 4) as u32,
                    });
                }
                ops.push(Op::Coll(CollOp::Allreduce { bytes: 8 }));
            }
            ops
        })
        .collect();
    JobSpec::from_programs("engine-throughput", programs, vec![])
}

fn main() {
    for np in [8usize, 64] {
        let iters = 200;
        let mut job = synthetic_job(np, iters);
        let total_ops = job.total_ops();
        let cluster = presets::vayu();
        bench_throughput(&format!("engine_throughput/np{np}"), 10, total_ops, || {
            run_job(&mut job, &cluster, &SimConfig::default(), &mut NullSink)
                .unwrap()
                .ops_executed
        });
    }
}
