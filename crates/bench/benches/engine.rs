//! Raw engine throughput: how many simulated MPI ops per second the DES
//! core sustains. Regression guard for the scheduler's hot loop — the
//! indexed channel tables, memoized collective layouts, compute-op fusion
//! and event-queue fast path all show up here first.
//!
//! Beyond the human-readable timing lines, this bench emits a
//! machine-readable trajectory file (`BENCH_engine.json` at the repo root
//! by default) and can gate CI on regressions against a committed
//! baseline:
//!
//! ```text
//! cargo bench -p cloudsim-bench --bench engine                  # full run
//! cargo bench -p cloudsim-bench --bench engine -- --smoke       # reduced iters
//! cargo bench -p cloudsim-bench --bench engine -- \
//!     --out /tmp/new.json --check BENCH_engine.json --threshold 0.25
//! ```
//!
//! `--check` compares *calibration-normalized* ops/sec (each file records a
//! fixed pure-CPU calibration loop's throughput measured on the same
//! machine), so a slower CI runner does not read as an engine regression.

use cloudsim::prelude::*;
use cloudsim_bench::bench_throughput;
use cloudsim_bench::perfjson::{calibrate, BenchRecord, EngineBenchFile};

fn synthetic_job(np: usize, iters: usize) -> JobSpec {
    let programs = (0..np)
        .map(|r| {
            let mut ops = Vec::with_capacity(iters * 3);
            for i in 0..iters {
                ops.push(Op::Compute {
                    flops: 1e6,
                    bytes: 0.0,
                });
                let partner = (r as u32) ^ 1;
                if (partner as usize) < np {
                    ops.push(Op::Exchange {
                        partner,
                        send_bytes: 1024,
                        recv_bytes: 1024,
                        tag: (i % 4) as u32,
                    });
                }
                ops.push(Op::Coll(CollOp::Allreduce { bytes: 8 }));
            }
            ops
        })
        .collect();
    JobSpec::from_programs("engine-throughput", programs, vec![])
}

/// A compute-heavy job: long runs of consecutive `Compute` ops per rank
/// punctuated by an allreduce — the shape the fusion fast path targets.
fn compute_heavy_job(np: usize, iters: usize, run_len: usize) -> JobSpec {
    let programs = (0..np)
        .map(|_| {
            let mut ops = Vec::with_capacity(iters * (run_len + 1));
            for _ in 0..iters {
                for _ in 0..run_len {
                    ops.push(Op::Compute {
                        flops: 1e5,
                        bytes: 0.0,
                    });
                }
                ops.push(Op::Coll(CollOp::Allreduce { bytes: 8 }));
            }
            ops
        })
        .collect();
    JobSpec::from_programs("engine-compute-heavy", programs, vec![])
}

struct Args {
    smoke: bool,
    out: Option<String>,
    check: Option<String>,
    threshold: f64,
}

/// Resolve a path against the workspace root. `cargo bench` runs with the
/// crate directory as CWD, so a bare `BENCH_engine.json` would otherwise
/// land in `crates/bench/` instead of the repo root.
fn workspace_path(p: &str) -> std::path::PathBuf {
    let path = std::path::Path::new(p);
    if path.is_absolute() || p.starts_with("./") || p.starts_with("../") {
        path.to_path_buf()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(path)
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: Some("BENCH_engine.json".to_string()),
        check: None,
        threshold: 0.25,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next(),
            "--no-out" => args.out = None,
            "--check" => args.check = it.next(),
            "--threshold" => {
                args.threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold needs a number")
            }
            "--bench" => {} // cargo bench passes this through
            other => eprintln!("engine bench: ignoring unknown arg {other:?}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut run = |name: &str, iters: usize, job: &mut JobSpec, cluster: &ClusterSpec| {
        let total_ops = job.total_ops();
        let per_iter = bench_throughput(name, iters, total_ops, || {
            run_job(job, cluster, &SimConfig::default(), &mut NullSink)
                .unwrap()
                .ops_executed
        });
        records.push(BenchRecord {
            name: name.to_string(),
            total_ops,
            iters,
            sec_per_iter: per_iter,
            ops_per_sec: total_ops as f64 / per_iter,
        });
    };

    let scale = if args.smoke { 1 } else { 4 };
    let vayu = presets::vayu();
    // Iteration counts are sized so one bench iteration takes tens of
    // milliseconds: sub-millisecond iterations are dominated by timer
    // granularity and scheduler noise on shared runners, and best-of-N
    // cannot rescue a measurement that short.
    for (np, loops) in [(8usize, 20_000), (64, 2_000)] {
        let mut job = synthetic_job(np, loops);
        run(
            &format!("engine_throughput/np{np}"),
            10 * scale,
            &mut job,
            &vayu,
        );
    }
    {
        let mut job = compute_heavy_job(16, 2_000, 40);
        run("engine_compute_heavy/np16", 10 * scale, &mut job, &vayu);
    }
    {
        // The paper-scale smoke: CG class S at np=1024 routes ~3.5M ops
        // through the engine per run. This is the configuration the
        // ISSUE-4 acceptance criterion (>= 2x ops/sec) is measured on.
        let w = Npb::new(Kernel::Cg, Class::S);
        let mut job = w.build(1024);
        // Fixed 6 iterations even in --smoke: each run is short (<0.5s)
        // but long enough that best-of-N needs several tries to dodge
        // scheduler noise on shared runners.
        run("engine_cg_smoke/np1024", 6, &mut job, &vayu);
    }

    {
        // Scheduler throughput: jobs scheduled per second through the
        // sim-sched DES (EASY + rack-aware + contention on the dcc fabric).
        // Pure discrete-event work — no MPI engine in the loop — so it
        // tracks the cost of reservations, placement and rate recomputes.
        use cloudsim::sim_net::ContentionParams;
        use cloudsim::sim_sched::{
            lublin_mix, simulate_site, Discipline, NodePool, PlacementPolicy, SiteConfig,
        };
        let dcc = presets::dcc();
        let n_jobs = 2_000usize;
        let jobs = lublin_mix(n_jobs, 32, 1.2, 42);
        let cfg = SiteConfig::new(
            NodePool::partition_of(&dcc, 32),
            PlacementPolicy::RackAware,
            Discipline::Easy,
            ContentionParams::for_fabric(&dcc.topology.inter),
        );
        let name = "sched_throughput/jobs2000";
        let iters = 10 * scale;
        let per_iter = bench_throughput(name, iters, n_jobs as u64, || {
            simulate_site(&jobs, &cfg).unwrap().outcomes.len()
        });
        records.push(BenchRecord {
            name: name.to_string(),
            total_ops: n_jobs as u64,
            iters,
            sec_per_iter: per_iter,
            ops_per_sec: n_jobs as f64 / per_iter,
        });
    }

    {
        // Fault-tolerant scheduler throughput: the same DES with a
        // crash-heavy seeded fault feed — kills, backoff requeues,
        // checkpoint restarts and repair-window carves all in the loop.
        // Tracks the overhead of the fault path against plain
        // sched_throughput.
        use cloudsim::sim_faults::FaultModel;
        use cloudsim::sim_net::ContentionParams;
        use cloudsim::sim_sched::{
            lublin_mix, simulate_site, CheckpointSpec, Discipline, NodePool, PlacementPolicy,
            RequeuePolicy, SiteConfig, SiteFaults,
        };
        let dcc = presets::dcc();
        let n_jobs = 2_000usize;
        let jobs = lublin_mix(n_jobs, 32, 1.2, 42);
        let model = FaultModel {
            name: "bench-crashy",
            scale: 1.0,
            crash_per_node_hour: 0.05,
            crash_mean_secs: 120.0,
            nic_per_node_hour: 0.05,
            nic_mean_secs: 300.0,
            nic_factor: 4.0,
            ..FaultModel::none()
        };
        let cfg = SiteConfig::new(
            NodePool::partition_of(&dcc, 32),
            PlacementPolicy::RackAware,
            Discipline::Easy,
            ContentionParams::for_fabric(&dcc.topology.inter),
        )
        .with_faults(
            SiteFaults::new(model, 42)
                .with_mttr(1200.0)
                .with_horizon(14.0 * 24.0 * 3600.0)
                .with_requeue(RequeuePolicy::default().with_checkpoint(CheckpointSpec {
                    interval: 300.0,
                    restore_cost: 30.0,
                })),
        );
        let name = "sched_faults_throughput/jobs2000";
        let iters = 10 * scale;
        let per_iter = bench_throughput(name, iters, n_jobs as u64, || {
            simulate_site(&jobs, &cfg).unwrap().outcomes.len()
        });
        records.push(BenchRecord {
            name: name.to_string(),
            total_ops: n_jobs as u64,
            iters,
            sec_per_iter: per_iter,
            ops_per_sec: n_jobs as f64 / per_iter,
        });
    }

    {
        // Slot-set primitive throughput: jobs walked through the interval
        // algebra per second. Each job truncates history, intersects its
        // whole window, carves out a proc set and splits the slot list —
        // the exact operation mix the slot-set engine performs per
        // scheduling decision, with none of the DES machinery around it.
        use cloudsim::sim_sched::{lublin_mix, ProcSet, SlotSet};
        let n_jobs = 10_000usize;
        let jobs = lublin_mix(n_jobs, 512, 1.2, 7);
        let name = "slotset_ops/jobs10k";
        let iters = 10 * scale;
        let per_iter = bench_throughput(name, iters, n_jobs as u64, || {
            let mut ss = SlotSet::new(0.0, ProcSet::range(0, 511));
            let mut placed = 0usize;
            for j in &jobs {
                ss.truncate_before(j.submit);
                let avail = ss.window_avail(j.submit, j.submit + j.walltime);
                if avail.len() >= j.nodes {
                    let procs = avail.take(j.nodes);
                    ss.sub_window(j.submit, j.submit + j.walltime, &procs);
                    placed += 1;
                }
            }
            placed
        });
        records.push(BenchRecord {
            name: name.to_string(),
            total_ops: n_jobs as u64,
            iters,
            sec_per_iter: per_iter,
            ops_per_sec: n_jobs as f64 / per_iter,
        });
    }

    {
        // Streaming scheduler throughput at trace scale: the same EASY +
        // rack-aware + contention site, fed by the lazy LublinMix source
        // through `simulate_site_stream` — flat memory, so the trace size
        // can grow to a million jobs. Load 0.7 keeps the queue bounded:
        // per-job cost is then size-independent and the three entries
        // gate O(n)-ness directly (ops/sec should stay flat with n).
        use cloudsim::sim_net::ContentionParams;
        use cloudsim::sim_sched::{
            simulate_site_stream, Discipline, LublinMix, NodePool, PlacementPolicy, SiteConfig,
        };
        let dcc = presets::dcc();
        let cfg = SiteConfig::new(
            NodePool::partition_of(&dcc, 32),
            PlacementPolicy::RackAware,
            Discipline::Easy,
            ContentionParams::for_fabric(&dcc.topology.inter),
        );
        // Iteration counts shrink with the trace: a 1M-job run takes
        // seconds, so best-of-3 is all the repetition the budget buys.
        for (n_jobs, iters) in [(10_000usize, 10 * scale), (100_000, 6), (1_000_000, 3)] {
            let name = format!("sched_stream_throughput/jobs{}k", n_jobs / 1000);
            let per_iter = bench_throughput(&name, iters, n_jobs as u64, || {
                simulate_site_stream(LublinMix::new(n_jobs, 32, 0.7, 42), &cfg, |_| {})
                    .unwrap()
                    .completed
            });
            records.push(BenchRecord {
                name,
                total_ops: n_jobs as u64,
                iters,
                sec_per_iter: per_iter,
                ops_per_sec: n_jobs as f64 / per_iter,
            });
        }
    }

    {
        // Sweep harness throughput: grid cells evaluated per second with
        // the worker count pinned to 2 (runner-independent), each cell a
        // 400-job streaming simulation digested into the order-independent
        // combiner — the exact shape `examples/sweep_grid.rs` ships.
        use cloudsim::sim_net::ContentionParams;
        use cloudsim::sim_sched::{
            simulate_site_stream, Discipline, LublinMix, NodePool, PlacementPolicy, SiteConfig,
        };
        use cloudsim::sim_sweep::{cell_seed, sweep, MergedDigest, SweepOpts};
        let dcc = presets::dcc();
        let cfg = SiteConfig::new(
            NodePool::partition_of(&dcc, 32),
            PlacementPolicy::RackAware,
            Discipline::Easy,
            ContentionParams::for_fabric(&dcc.topology.inter),
        );
        let n_cells = 48usize;
        let opts = SweepOpts::default().with_threads(2);
        let name = "sweep_cells_per_sec/cells48x2t";
        let iters = 10 * scale;
        let per_iter = bench_throughput(name, iters, n_cells as u64, || {
            let digest = sweep(
                n_cells,
                &opts,
                MergedDigest::new,
                |cell, acc: &mut MergedDigest| {
                    let load = 0.6 + 0.1 * (cell % 5) as f64;
                    let jobs = LublinMix::new(400, 32, load, cell_seed(0xBE7C, cell as u64));
                    let stats = simulate_site_stream(jobs, &cfg, |_| {}).unwrap();
                    acc.absorb(cell as u64, stats.makespan.to_bits());
                },
                |total, part| total.merge(part),
            );
            digest.value() as usize
        });
        records.push(BenchRecord {
            name: name.to_string(),
            total_ops: n_cells as u64,
            iters,
            sec_per_iter: per_iter,
            ops_per_sec: n_cells as f64 / per_iter,
        });
    }

    {
        // Advisor query latency: the cold path (full cache-miss
        // simulation through the service) vs the warm path (content-
        // addressed cache hit) — per-query latency p50/p99 across a
        // 48-query set, best-of-N passes per query. Warm hits are
        // sub-microsecond, so each warm sample times a 64-call loop and
        // divides. ISSUE-10 acceptance gates warm_p99 >= 50x faster
        // than cold_p99.
        use cloudsim::sim_advisor::{AdvisorService, PlatformId, Query, WorkloadId};
        use std::time::Instant;
        let mut queries = Vec::new();
        for kernel in [Kernel::Cg, Kernel::Mg, Kernel::Ep, Kernel::Is] {
            for class in [Class::S, Class::W] {
                for np in [4u32, 8] {
                    for platform in PlatformId::ALL {
                        queries.push(Query::new(WorkloadId::Npb { kernel, class }, platform, np));
                    }
                }
            }
        }
        let svc = AdvisorService::new();
        for q in &queries {
            svc.evaluate(q).expect("advisor warm-up evaluates");
        }
        let passes = 5 * scale;
        let mut cold = vec![f64::INFINITY; queries.len()];
        let mut warm = vec![f64::INFINITY; queries.len()];
        for _ in 0..passes {
            for (i, q) in queries.iter().enumerate() {
                let t = Instant::now();
                std::hint::black_box(svc.evaluate_uncached(q).expect("cold evaluate"));
                cold[i] = cold[i].min(t.elapsed().as_secs_f64());
            }
            for (i, q) in queries.iter().enumerate() {
                const K: u32 = 64;
                let t = Instant::now();
                for _ in 0..K {
                    std::hint::black_box(svc.evaluate(q).expect("warm evaluate"));
                }
                warm[i] = warm[i].min(t.elapsed().as_secs_f64() / f64::from(K));
            }
        }
        let pct = |xs: &[f64], p: f64| {
            let mut xs = xs.to_vec();
            xs.sort_by(f64::total_cmp);
            xs[((xs.len() - 1) as f64 * p).round() as usize]
        };
        for (label, secs) in [
            ("cold_p50", pct(&cold, 0.50)),
            ("cold_p99", pct(&cold, 0.99)),
            ("warm_p50", pct(&warm, 0.50)),
            ("warm_p99", pct(&warm, 0.99)),
        ] {
            let name = format!("advisor_query_latency/{label}");
            println!("{name:<48} {:>12.3} us/query best", secs * 1e6);
            records.push(BenchRecord {
                name,
                total_ops: 1,
                iters: passes,
                sec_per_iter: secs,
                ops_per_sec: 1.0 / secs,
            });
        }

        // Batched what-if throughput: the same 48 queries as a cold fleet
        // through the deterministic sweep harness, 2 workers (runner-
        // independent), fresh service each iteration.
        use cloudsim::sim_sweep::SweepOpts;
        let opts = SweepOpts::default().with_threads(2);
        let name = "advisor_fleet_throughput/q48x2t";
        let iters = 10 * scale;
        let n = queries.len() as u64;
        let per_iter = bench_throughput(name, iters, n, || {
            AdvisorService::new()
                .evaluate_fleet(&queries, &opts)
                .expect("fleet evaluates")
                .digest
        });
        records.push(BenchRecord {
            name: name.to_string(),
            total_ops: n,
            iters,
            sec_per_iter: per_iter,
            ops_per_sec: n as f64 / per_iter,
        });
    }

    let calib = calibrate();
    println!("{:<48} {calib:>12.0} calib-iters/s", "machine_calibration");
    let mut file = EngineBenchFile {
        fingerprint: "synthetic np8 x20000 / np64 x2000 exchange+allreduce; compute-heavy np16 \
                      x2000; cg.S np=1024 on vayu; SimConfig::default seed; sched easy+rack-aware \
                      2000 lublin jobs on dcc/32; sched-faults same mix + crashy feed seed 42; \
                      slotset 10000 lublin jobs on 512 procs; sched-stream 1e4/1e5/1e6 lublin \
                      jobs load 0.7 seed 42 on dcc/32; sweep 48-cell x400-job stream grid, 2 \
                      threads; advisor 48-query npb S/W np4/8 x3 platforms, warm loop K=64, \
                      fleet cold x2t"
            .to_string(),
        calib_ops_per_sec: calib,
        results: records,
        baseline: None,
    };

    if let Some(check) = &args.check {
        let check_path = workspace_path(check);
        let baseline = EngineBenchFile::parse(
            &std::fs::read_to_string(&check_path)
                .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", check_path.display())),
        );
        if baseline.fingerprint != file.fingerprint {
            // A config change invalidates the comparison; flag it loudly
            // instead of gating on apples-to-oranges numbers.
            eprintln!(
                "engine bench: baseline fingerprint mismatch ({}); \
                 regenerate {} with --out",
                baseline.fingerprint,
                check_path.display()
            );
            std::process::exit(1);
        }
        let mut failed = false;
        for r in &file.results {
            let Some(b) = baseline.results.iter().find(|b| b.name == r.name) else {
                println!("check: {} has no baseline entry, skipping", r.name);
                continue;
            };
            // Normalize by each file's calibration throughput so machine
            // speed divides out of the comparison.
            let cur = r.ops_per_sec / file.calib_ops_per_sec;
            let base = b.ops_per_sec / baseline.calib_ops_per_sec;
            let ratio = cur / base;
            let verdict = if ratio < 1.0 - args.threshold {
                failed = true;
                "REGRESSION"
            } else {
                "ok"
            };
            println!(
                "check: {:<32} normalized ratio {ratio:>6.3} ({verdict})",
                r.name
            );
        }
        if failed {
            eprintln!(
                "engine bench: throughput regressed more than {:.0}% vs {check}",
                args.threshold * 100.0
            );
            std::process::exit(1);
        }
    }

    if let Some(out) = &args.out {
        let out_path = workspace_path(out);
        // Preserve a baseline block already committed at the destination —
        // regenerating the file must not erase the before/after history.
        if file.baseline.is_none() {
            if let Ok(prev) = std::fs::read_to_string(&out_path) {
                file.baseline = EngineBenchFile::parse(&prev).baseline;
            }
        }
        std::fs::write(&out_path, file.to_json()).expect("write bench json");
        println!("wrote {}", out_path.display());
    }
}
