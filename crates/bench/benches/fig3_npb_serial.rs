//! Bench the Figure 3 pipeline: single-process NPB kernel simulations
//! (class S so one sample is a full run of all eight kernels).

use cloudsim::prelude::*;
use cloudsim_bench::bench_fn;

fn main() {
    for cluster in [presets::dcc(), presets::vayu()] {
        bench_fn(
            &format!("fig3_npb_serial_classS/{}", cluster.name),
            5,
            || {
                let mut total = 0.0;
                for k in Kernel::all() {
                    let w = Npb::new(k, Class::S);
                    total += cloudsim::Experiment::new(&w, &cluster, 1)
                        .repeats(1)
                        .run_once()
                        .unwrap()
                        .0
                        .elapsed_secs();
                }
                total
            },
        );
    }
}
