//! Bench the Figure 3 pipeline: single-process NPB kernel simulations
//! (class S so one Criterion sample is a full run of all eight kernels).

use cloudsim::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_npb_serial_classS");
    for cluster in [presets::dcc(), presets::vayu()] {
        g.bench_function(cluster.name, |b| {
            b.iter(|| {
                let mut total = 0.0;
                for k in Kernel::all() {
                    let w = Npb::new(k, Class::S);
                    let (res, _) = cloudsim::Experiment::new(&w, &cluster, 1)
                        .repeats(1)
                        .run_once()
                        .unwrap();
                    total += res.elapsed_secs();
                }
                total
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
