//! Bench the Figure 2 pipeline: OSU ping-pong latency simulation per
//! platform at the small-message size the paper highlights.

use cloudsim::presets;
use cloudsim::workloads::osu::run_latency;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_osu_latency_8b");
    for cluster in [presets::dcc(), presets::ec2(), presets::vayu()] {
        g.bench_function(cluster.name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_latency(&cluster, 8, seed).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
