//! Bench the Figure 2 pipeline: OSU ping-pong latency simulation per
//! platform at the small-message size the paper highlights.

use cloudsim::presets;
use cloudsim::workloads::osu::run_latency;
use cloudsim_bench::bench_fn;

fn main() {
    for cluster in [presets::dcc(), presets::ec2(), presets::vayu()] {
        let mut seed = 0u64;
        bench_fn(&format!("fig2_osu_latency_8b/{}", cluster.name), 20, || {
            seed += 1;
            run_latency(&cluster, 8, seed).unwrap()
        });
    }
}
