//! Bench the Table III pipeline: a fully-profiled MetUM run at 32 cores
//! with all per-section IPM statistics extracted.

use cloudsim::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab3_metum_ipm_np32");
    g.sample_size(10);
    let w = MetUm { timesteps: 4 };
    for cluster in [presets::vayu(), presets::dcc()] {
        g.bench_function(cluster.name, |b| {
            b.iter(|| {
                let (res, rep) = cloudsim::Experiment::new(&w, &cluster, 32)
                    .repeats(1)
                    .run_once()
                    .unwrap();
                (
                    res.comm_pct(),
                    rep.global.imbalance_pct(),
                    res.io_secs_max(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
