//! Bench the Table III pipeline: a fully-profiled MetUM run at 32 cores
//! with all per-section IPM statistics extracted.

use cloudsim::prelude::*;
use cloudsim_bench::bench_fn;

fn main() {
    let w = MetUm { timesteps: 4 };
    for cluster in [presets::vayu(), presets::dcc()] {
        bench_fn(&format!("tab3_metum_ipm_np32/{}", cluster.name), 5, || {
            let (res, rep) = cloudsim::Experiment::new(&w, &cluster, 32)
                .repeats(1)
                .run_once()
                .unwrap();
            (
                res.comm_pct(),
                rep.global.imbalance_pct(),
                res.io_secs_max(),
            )
        });
    }
}
