//! Bench the Figure 6 pipeline: a short MetUM run in each of the four
//! configurations (Vayu, DCC, EC2 packed, EC2-4 spread).

use cloudsim::prelude::*;
use cloudsim::workloads::metum::warmed_secs;
use cloudsim_bench::bench_fn;

fn main() {
    let w = MetUm { timesteps: 4 };
    let configs: Vec<(&str, ClusterSpec, Strategy)> = vec![
        ("vayu", presets::vayu(), Strategy::Block),
        ("dcc", presets::dcc(), Strategy::Block),
        (
            "ec2",
            presets::ec2(),
            Strategy::BlockMemoryAware {
                per_rank_bytes: w.memory_per_rank_bytes(32),
            },
        ),
        ("ec2-4", presets::ec2(), Strategy::Spread { nodes: 4 }),
    ];
    for (name, cluster, strat) in configs {
        bench_fn(&format!("fig6_metum_4steps_np32/{name}"), 5, || {
            let (_, rep) = cloudsim::Experiment::new(&w, &cluster, 32)
                .strategy(strat)
                .repeats(1)
                .run_once()
                .unwrap();
            warmed_secs(&rep)
        });
    }
}
