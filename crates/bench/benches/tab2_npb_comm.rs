//! Bench the Table II pipeline: IPM-instrumented %comm measurement for the
//! three communication-bound kernels at 32 ranks, class S.

use cloudsim::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab2_comm_pct_np32_classS");
    for k in [Kernel::Cg, Kernel::Ft, Kernel::Is] {
        let w = Npb::new(k, Class::S);
        g.bench_function(w.name(), |b| {
            let cluster = presets::dcc();
            b.iter(|| {
                cloudsim::Experiment::new(&w, &cluster, 32)
                    .repeats(1)
                    .run_once()
                    .unwrap()
                    .0
                    .comm_pct()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
