//! Bench the Table II pipeline: IPM-instrumented %comm measurement for the
//! three communication-bound kernels at 32 ranks, class S.

use cloudsim::prelude::*;
use cloudsim_bench::bench_fn;

fn main() {
    for k in [Kernel::Cg, Kernel::Ft, Kernel::Is] {
        let w = Npb::new(k, Class::S);
        let cluster = presets::dcc();
        bench_fn(
            &format!("tab2_comm_pct_np32_classS/{}", w.name()),
            10,
            || {
                cloudsim::Experiment::new(&w, &cluster, 32)
                    .repeats(1)
                    .run_once()
                    .unwrap()
                    .0
                    .comm_pct()
            },
        );
    }
}
