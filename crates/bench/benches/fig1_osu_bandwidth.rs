//! Bench the Figure 1 pipeline: OSU windowed-bandwidth simulation per
//! platform at the paper's peak-relevant message size.

use cloudsim::presets;
use cloudsim::workloads::osu::run_bandwidth;
use cloudsim_bench::bench_fn;

fn main() {
    for cluster in [presets::dcc(), presets::ec2(), presets::vayu()] {
        let mut seed = 0u64;
        bench_fn(
            &format!("fig1_osu_bandwidth_256k/{}", cluster.name),
            20,
            || {
                seed += 1;
                run_bandwidth(&cluster, 256 * 1024, seed).unwrap()
            },
        );
    }
}
