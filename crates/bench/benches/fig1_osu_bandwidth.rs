//! Bench the Figure 1 pipeline: OSU windowed-bandwidth simulation per
//! platform at the paper's peak-relevant message size.

use cloudsim::presets;
use cloudsim::workloads::osu::run_bandwidth;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_osu_bandwidth_256k");
    for cluster in [presets::dcc(), presets::ec2(), presets::vayu()] {
        g.bench_function(cluster.name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_bandwidth(&cluster, 256 * 1024, seed).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
