//! Bench the Figure 5 pipeline: a short Chaste run with the KSp section
//! profiled, on the two platforms the paper could run it on.

use cloudsim::prelude::*;
use cloudsim_bench::bench_fn;

fn main() {
    let w = Chaste {
        timesteps: 20,
        cg_iters: 45,
    };
    for cluster in [presets::vayu(), presets::dcc()] {
        bench_fn(
            &format!("fig5_chaste_20steps_np16/{}", cluster.name),
            5,
            || {
                let (_, rep) = cloudsim::Experiment::new(&w, &cluster, 16)
                    .repeats(1)
                    .run_once()
                    .unwrap();
                rep.section("KSp").unwrap().wall.mean
            },
        );
    }
}
