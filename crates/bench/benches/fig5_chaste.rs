//! Bench the Figure 5 pipeline: a short Chaste run with the KSp section
//! profiled, on the two platforms the paper could run it on.

use cloudsim::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_chaste_20steps_np16");
    g.sample_size(10);
    let w = Chaste { timesteps: 20, cg_iters: 45 };
    for cluster in [presets::vayu(), presets::dcc()] {
        g.bench_function(cluster.name, |b| {
            b.iter(|| {
                let (_, rep) = cloudsim::Experiment::new(&w, &cluster, 16)
                    .repeats(1)
                    .run_once()
                    .unwrap();
                rep.section("KSp").unwrap().wall.mean
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
