//! Bench the Figure 7 pipeline: extracting the per-rank compute/comm
//! breakdown of the ATM_STEP section.

use cloudsim::prelude::*;
use cloudsim::workloads::metum::SEC_ATM_STEP;
use cloudsim_bench::bench_fn;

fn main() {
    let w = MetUm { timesteps: 4 };
    for cluster in [presets::vayu(), presets::dcc()] {
        bench_fn(
            &format!("fig7_rank_breakdown_np32/{}", cluster.name),
            5,
            || {
                let (_, rep) = cloudsim::Experiment::new(&w, &cluster, 32)
                    .repeats(1)
                    .run_once()
                    .unwrap();
                rep.section_rank_breakdown[SEC_ATM_STEP as usize]
                    .iter()
                    .map(|(comp, comm)| comp + comm)
                    .sum::<f64>()
            },
        );
    }
}
