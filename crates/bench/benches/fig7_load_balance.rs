//! Bench the Figure 7 pipeline: extracting the per-rank compute/comm
//! breakdown of the ATM_STEP section.

use cloudsim::prelude::*;
use cloudsim::workloads::metum::SEC_ATM_STEP;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_rank_breakdown_np32");
    g.sample_size(10);
    let w = MetUm { timesteps: 4 };
    for cluster in [presets::vayu(), presets::dcc()] {
        g.bench_function(cluster.name, |b| {
            b.iter(|| {
                let (_, rep) = cloudsim::Experiment::new(&w, &cluster, 32)
                    .repeats(1)
                    .run_once()
                    .unwrap();
                rep.section_rank_breakdown[SEC_ATM_STEP as usize]
                    .iter()
                    .map(|(comp, comm)| comp + comm)
                    .sum::<f64>()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
