//! Indexed hot-path containers for the engine's matching state.
//!
//! The engine's inner loop matches point-to-point traffic on
//! `(source, dest, tag)` channels and synchronizes barriers keyed by a
//! sequence number. Both used to live in `std` `HashMap`s, which meant a
//! SipHash invocation per op on the hottest path in the simulator. These
//! replacements exploit what a general map cannot: one side of every
//! channel key is a *rank index*, dense in `0..np`, so the first lookup
//! level is an array index; and the set of distinct `(peer, tag)` pairs a
//! single rank ever matches on is tiny (a handful of neighbours × a
//! handful of tags), so the second level is a linear scan over a short
//! `Vec` — faster than any hash for these sizes, and with fully
//! deterministic iteration order as a bonus.

use crate::op::{Rank, Tag};
use sim_des::SimTime;
use std::collections::VecDeque;

/// Per-channel FIFO queues, indexed by an owning rank and then by
/// `(peer, tag)`. The "owner" is whichever key component is a dense rank
/// index: the destination for eager messages and posted receives, the
/// lower rank of the pair for exchanges.
#[derive(Debug)]
pub struct ChannelTable<T> {
    slots: Vec<Vec<Channel<T>>>,
}

#[derive(Debug)]
struct Channel<T> {
    peer: Rank,
    tag: Tag,
    q: VecDeque<T>,
}

impl<T> ChannelTable<T> {
    /// A table for `np` owning ranks, all channels empty.
    pub fn new(np: usize) -> Self {
        ChannelTable {
            slots: (0..np).map(|_| Vec::new()).collect(),
        }
    }

    /// The FIFO for `(owner, peer, tag)`, created empty if absent.
    pub fn queue_mut(&mut self, owner: usize, peer: Rank, tag: Tag) -> &mut VecDeque<T> {
        let chans = &mut self.slots[owner];
        // Split the find from the push to satisfy the borrow checker
        // without a second scan on the hit path.
        if let Some(i) = chans.iter().position(|c| c.peer == peer && c.tag == tag) {
            return &mut chans[i].q;
        }
        chans.push(Channel {
            peer,
            tag,
            q: VecDeque::new(),
        });
        &mut chans.last_mut().expect("just pushed").q
    }

    /// The FIFO for `(owner, peer, tag)` if it was ever created.
    pub fn get_mut(&mut self, owner: usize, peer: Rank, tag: Tag) -> Option<&mut VecDeque<T>> {
        self.slots[owner]
            .iter_mut()
            .find(|c| c.peer == peer && c.tag == tag)
            .map(|c| &mut c.q)
    }

    /// Whether the FIFO for `(owner, peer, tag)` is absent or empty.
    pub fn is_empty_channel(&self, owner: usize, peer: Rank, tag: Tag) -> bool {
        self.slots[owner]
            .iter()
            .find(|c| c.peer == peer && c.tag == tag)
            .is_none_or(|c| c.q.is_empty())
    }

    /// Drop every queued item, keeping channel allocations for reuse.
    pub fn clear(&mut self) {
        for chans in &mut self.slots {
            for c in chans {
                c.q.clear();
            }
        }
    }

    /// Whether every channel is empty (end-of-run invariant checks).
    pub fn all_empty(&self) -> bool {
        self.slots
            .iter()
            .all(|chans| chans.iter().all(|c| c.q.is_empty()))
    }
}

/// Arrival lists for sequence-numbered world barriers (checkpoints and
/// verification cuts). At most a couple of sequences are ever open at
/// once — ranks can only be one cut apart — so a short `Vec` beats a map
/// and iterates in a fixed order.
#[derive(Debug, Default)]
pub struct SeqBarrier {
    open: Vec<(u64, Vec<(Rank, SimTime)>)>,
}

impl SeqBarrier {
    pub fn new() -> Self {
        SeqBarrier::default()
    }

    /// Record `r`'s arrival at barrier `seq`; returns how many ranks have
    /// arrived, including this one.
    pub fn arrive(&mut self, seq: u64, r: Rank, t: SimTime) -> usize {
        if let Some(i) = self.open.iter().position(|(s, _)| *s == seq) {
            let v = &mut self.open[i].1;
            v.push((r, t));
            return v.len();
        }
        self.open.push((seq, vec![(r, t)]));
        1
    }

    /// Remove barrier `seq`, returning its arrivals in arrival order.
    pub fn take(&mut self, seq: u64) -> Option<Vec<(Rank, SimTime)>> {
        let i = self.open.iter().position(|(s, _)| *s == seq)?;
        Some(self.open.swap_remove(i).1)
    }

    /// Drop all open barriers (restart/rollback wipes in-flight state).
    pub fn clear(&mut self) {
        self.open.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_fifo_per_key() {
        let mut t: ChannelTable<u32> = ChannelTable::new(4);
        t.queue_mut(1, 0, 7).push_back(10);
        t.queue_mut(1, 0, 7).push_back(11);
        t.queue_mut(1, 2, 7).push_back(20);
        assert_eq!(t.get_mut(1, 0, 7).unwrap().pop_front(), Some(10));
        assert_eq!(t.get_mut(1, 0, 7).unwrap().pop_front(), Some(11));
        assert_eq!(t.get_mut(1, 0, 7).unwrap().pop_front(), None);
        assert_eq!(t.get_mut(1, 2, 7).unwrap().pop_front(), Some(20));
        assert!(t.get_mut(3, 0, 0).is_none());
    }

    #[test]
    fn empty_checks_cover_absent_and_drained() {
        let mut t: ChannelTable<u32> = ChannelTable::new(2);
        assert!(t.is_empty_channel(0, 1, 0));
        assert!(t.all_empty());
        t.queue_mut(0, 1, 0).push_back(1);
        assert!(!t.is_empty_channel(0, 1, 0));
        assert!(!t.all_empty());
        t.clear();
        assert!(t.is_empty_channel(0, 1, 0));
        assert!(t.all_empty());
    }

    #[test]
    fn seq_barrier_collects_in_arrival_order() {
        let mut b = SeqBarrier::new();
        assert_eq!(b.arrive(0, 2, SimTime(5)), 1);
        assert_eq!(b.arrive(1, 0, SimTime(9)), 1);
        assert_eq!(b.arrive(0, 1, SimTime(3)), 2);
        let got = b.take(0).unwrap();
        assert_eq!(got, vec![(2, SimTime(5)), (1, SimTime(3))]);
        assert!(b.take(0).is_none());
        assert!(b.take(1).is_some());
    }
}
