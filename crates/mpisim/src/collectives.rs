//! Analytic cost models for MPI collectives.
//!
//! Collectives are costed with classic round-based algorithm models
//! (recursive doubling, binomial trees, pairwise exchange) on a two-level
//! topology: with block placement, the first `log2(ppn)` rounds of a
//! log-structured collective pair ranks within a node (shared memory) and
//! the remaining rounds cross the interconnect — where all `ppn` ranks of a
//! node hit the NIC at once and serialize.
//!
//! This split is what produces the paper's signature effects: the jump in
//! %comm when a job first spans nodes (Table II: DCC at 16 processes), and
//! the dominance of small-message latency for the 4-byte allreduces in the
//! Chaste KSp solver and the MetUM Helmholtz solver.

use crate::op::CollOp;
use sim_net::{cost, FabricParams};

/// Per-byte cost of the local reduction arithmetic inside reduce-type
/// collectives (seconds/byte); a Nehalem core streams + adds at ~3 GB/s.
const REDUCE_GAMMA: f64 = 0.33e-9;

/// Inputs the collective models need about the job layout.
#[derive(Debug, Clone)]
pub struct CollTopo<'a> {
    /// Inter-node fabric.
    pub inter: &'a FabricParams,
    /// Intra-node fabric.
    pub intra: &'a FabricParams,
    /// Total ranks.
    pub np: usize,
    /// Largest number of ranks on any node (NIC sharers).
    pub ppn: usize,
    /// Number of nodes hosting ranks.
    pub nodes_used: usize,
    /// Worst per-rank CPU slowdown factor (>= 1; SMT sharing slows the
    /// software portion of communication too).
    pub cpu_factor: f64,
}

impl<'a> CollTopo<'a> {
    /// Split the `ceil(log2(np))` rounds of a log-structured collective into
    /// (intra-node rounds, inter-node rounds).
    pub fn rounds_split(&self) -> (u32, u32) {
        let total = ceil_log2(self.np);
        if self.nodes_used <= 1 {
            return (total, 0);
        }
        let intra = ceil_log2(self.ppn.min(self.np)).min(total);
        (intra, total - intra)
    }

    /// Cost of one intra-node round moving `bytes` per rank.
    fn intra_round(&self, bytes: usize) -> f64 {
        one_way_cpu(self.intra, bytes, self.cpu_factor)
    }

    /// Cost of one inter-node round moving `bytes` per rank, with all `ppn`
    /// ranks of a node serializing on the NIC.
    fn inter_round(&self, bytes: usize) -> f64 {
        let f = self.inter;
        cost::send_occupancy(f, bytes) * self.cpu_factor
            + f.latency
            + cost::shared_wire_time(f, bytes, self.ppn)
            + cost::recv_occupancy(f, bytes) * self.cpu_factor
            + rendezvous_extra(f, bytes)
    }

    /// Number of inter-node rounds a collective performs — the engine
    /// samples the inter-fabric jitter once per such round.
    pub fn inter_rounds(&self, op: CollOp) -> u32 {
        if self.nodes_used <= 1 {
            return 0;
        }
        match op {
            CollOp::Alltoall { .. } => (self.np - self.on_node_peers() - 1) as u32,
            _ => self.rounds_split().1,
        }
    }

    /// With block placement, how many of a rank's peers are on its node.
    fn on_node_peers(&self) -> usize {
        self.ppn.saturating_sub(1).min(self.np - 1)
    }

    /// Total analytic cost of a collective (seconds), excluding jitter.
    pub fn cost(&self, op: CollOp) -> f64 {
        if self.np <= 1 {
            return 0.0;
        }
        let (intra_r, inter_r) = self.rounds_split();
        match op {
            CollOp::Barrier => {
                // Dissemination barrier: 8-byte control messages.
                intra_r as f64 * self.intra_round(8) + inter_r as f64 * self.inter_round(8)
            }
            CollOp::Bcast { bytes, .. } => {
                intra_r as f64 * self.intra_round(bytes) + inter_r as f64 * self.inter_round(bytes)
            }
            CollOp::Reduce { bytes, .. } => {
                let gamma = bytes as f64 * REDUCE_GAMMA;
                intra_r as f64 * (self.intra_round(bytes) + gamma)
                    + inter_r as f64 * (self.inter_round(bytes) + gamma)
            }
            CollOp::Allreduce { bytes } => {
                // Recursive doubling: log2(np) rounds of the full payload.
                let gamma = bytes as f64 * REDUCE_GAMMA;
                intra_r as f64 * (self.intra_round(bytes) + gamma)
                    + inter_r as f64 * (self.inter_round(bytes) + gamma)
            }
            CollOp::Allgather { bytes_per_rank } => {
                // Recursive doubling with doubling payloads; the largest
                // payloads travel in the (later) inter-node rounds.
                let mut total = 0.0;
                let rounds = intra_r + inter_r;
                for k in 0..rounds {
                    let bytes = bytes_per_rank.saturating_mul(1 << k.min(40));
                    if k < intra_r {
                        total += self.intra_round(bytes);
                    } else {
                        total += self.inter_round(bytes);
                    }
                }
                total
            }
            CollOp::Alltoall { bytes_per_pair } => {
                // Pairwise exchange: np-1 rounds; `on_node_peers` of them are
                // intra-node, the rest cross the NIC with ppn sharers.
                let intra_peers = self.on_node_peers();
                let inter_peers = self.np - 1 - intra_peers;
                intra_peers as f64 * self.intra_round(bytes_per_pair)
                    + inter_peers as f64 * self.inter_round(bytes_per_pair)
            }
            CollOp::Gather { bytes_per_rank, .. } | CollOp::Scatter { bytes_per_rank, .. } => {
                // Binomial tree; data aggregates toward/from the root, so
                // round k carries 2^k * bytes_per_rank on the busiest link.
                let mut total = 0.0;
                let rounds = intra_r + inter_r;
                for k in 0..rounds {
                    let bytes = bytes_per_rank.saturating_mul(1 << k.min(40));
                    if k < intra_r {
                        total += self.intra_round(bytes);
                    } else {
                        total += self.inter_round(bytes);
                    }
                }
                total * 0.5 // tree levels overlap pairwise
            }
        }
    }
}

/// One-way point-to-point time with CPU-occupancy scaling.
fn one_way_cpu(f: &FabricParams, bytes: usize, cpu_factor: f64) -> f64 {
    cost::send_occupancy(f, bytes) * cpu_factor
        + f.latency
        + cost::wire_time(f, bytes)
        + cost::recv_occupancy(f, bytes) * cpu_factor
        + rendezvous_extra(f, bytes)
}

fn rendezvous_extra(f: &FabricParams, bytes: usize) -> f64 {
    if bytes > f.eager_threshold {
        f.rendezvous_overhead
    } else {
        0.0
    }
}

/// `ceil(log2(n))` for n >= 1.
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo<'a>(
        inter: &'a FabricParams,
        intra: &'a FabricParams,
        np: usize,
        ppn: usize,
    ) -> CollTopo<'a> {
        let nodes_used = np.div_ceil(ppn);
        CollTopo {
            inter,
            intra,
            np,
            ppn: ppn.min(np),
            nodes_used,
            cpu_factor: 1.0,
        }
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(64), 6);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let ib = FabricParams::qdr_infiniband();
        let shm = FabricParams::shared_memory();
        let t = topo(&ib, &shm, 1, 8);
        assert_eq!(t.cost(CollOp::Allreduce { bytes: 1024 }), 0.0);
    }

    #[test]
    fn rounds_split_examples() {
        let ib = FabricParams::qdr_infiniband();
        let shm = FabricParams::shared_memory();
        // 16 ranks, 8 per node: 3 intra + 1 inter.
        assert_eq!(topo(&ib, &shm, 16, 8).rounds_split(), (3, 1));
        // 64 ranks, 8 per node: 3 intra + 3 inter.
        assert_eq!(topo(&ib, &shm, 64, 8).rounds_split(), (3, 3));
        // 8 ranks on one node: all intra.
        assert_eq!(topo(&ib, &shm, 8, 8).rounds_split(), (3, 0));
    }

    #[test]
    fn allreduce_cost_jumps_when_job_spans_nodes() {
        // The 4-byte allreduce: the Chaste KSp signature operation.
        let ge = FabricParams::gige_vswitch();
        let shm = FabricParams::shared_memory();
        let within = topo(&ge, &shm, 8, 8).cost(CollOp::Allreduce { bytes: 4 });
        let across = topo(&ge, &shm, 16, 8).cost(CollOp::Allreduce { bytes: 4 });
        assert!(
            across > within * 10.0,
            "crossing GigE must dominate: {within} vs {across}"
        );
    }

    #[test]
    fn small_allreduce_latency_hierarchy_matches_paper() {
        let shm = FabricParams::shared_memory();
        let mk = |f: &FabricParams| topo(f, &shm, 32, 8).cost(CollOp::Allreduce { bytes: 4 }) * 1e6;
        let ib = mk(&FabricParams::qdr_infiniband());
        let tge = mk(&FabricParams::ten_gige_virt());
        let ge = mk(&FabricParams::gige_vswitch());
        // Paper: ratio of DCC/Vayu communication time on KSp was ~13, driven
        // by exactly these operations.
        assert!(ge / ib > 8.0, "DCC/Vayu 4B-allreduce ratio {}", ge / ib);
        assert!(tge > ib && ge > tge);
    }

    #[test]
    fn alltoall_scales_with_pairs_and_nic_sharing() {
        let ib = FabricParams::qdr_infiniband();
        let shm = FabricParams::shared_memory();
        let t16 = topo(&ib, &shm, 16, 8).cost(CollOp::Alltoall {
            bytes_per_pair: 64 * 1024,
        });
        let t32 = topo(&ib, &shm, 32, 8).cost(CollOp::Alltoall {
            bytes_per_pair: 64 * 1024,
        });
        assert!(t32 > t16, "more inter-node peers cost more");
    }

    #[test]
    fn alltoall_total_bytes_fixed_cost_shrinks_with_np() {
        // FT-style: total volume fixed, per-pair = total/np^2. Larger np =>
        // smaller messages => the latency term grows but bandwidth term
        // shrinks; at EC2-like latency the total should still shrink from 16
        // to 64 ranks (paper: FT recovers at high np on DCC too).
        let ge = FabricParams::gige_vswitch();
        let shm = FabricParams::shared_memory();
        let total = 512.0 * 256.0 * 256.0 * 16.0;
        let cost_at = |np: usize| {
            let per_pair = (total / (np * np) as f64) as usize;
            topo(&ge, &shm, np, 8).cost(CollOp::Alltoall {
                bytes_per_pair: per_pair,
            })
        };
        assert!(cost_at(64) < cost_at(16));
    }

    #[test]
    fn bcast_cheaper_than_allgather_same_payload() {
        let ib = FabricParams::qdr_infiniband();
        let shm = FabricParams::shared_memory();
        let t = topo(&ib, &shm, 32, 8);
        let b = t.cost(CollOp::Bcast {
            root: 0,
            bytes: 1 << 20,
        });
        let ag = t.cost(CollOp::Allgather {
            bytes_per_rank: 1 << 20,
        });
        assert!(b < ag);
    }

    #[test]
    fn cpu_factor_inflates_occupancy_not_wire() {
        let tge = FabricParams::ten_gige_virt();
        let shm = FabricParams::shared_memory();
        let mut t = topo(&tge, &shm, 32, 16);
        let base = t.cost(CollOp::Allreduce { bytes: 1024 });
        t.cpu_factor = 1.6;
        let slowed = t.cost(CollOp::Allreduce { bytes: 1024 });
        assert!(slowed > base);
        assert!(slowed < base * 1.6, "wire portion must not scale");
    }

    #[test]
    fn inter_rounds_counts() {
        let ib = FabricParams::qdr_infiniband();
        let shm = FabricParams::shared_memory();
        let t = topo(&ib, &shm, 64, 8);
        assert_eq!(t.inter_rounds(CollOp::Allreduce { bytes: 8 }), 3);
        assert_eq!(t.inter_rounds(CollOp::Alltoall { bytes_per_pair: 8 }), 56);
        let single = topo(&ib, &shm, 8, 8);
        assert_eq!(single.inter_rounds(CollOp::Allreduce { bytes: 8 }), 0);
    }
}
