//! `sim-mpi` — an MPI-like message-passing runtime over the cluster
//! simulator.
//!
//! Workloads compile to per-rank op *sources* ([`JobSpec`]); [`run_job`]
//! executes them on a [`sim_platform::ClusterSpec`] with eager/rendezvous
//! point-to-point semantics, analytic collective algorithms and per-node NIC
//! contention, emitting IPM-style profile events along the way. Op sources
//! are lazy by default ([`Program`] generators pulled one op at a time);
//! materialized `Vec<Op>` programs remain available through
//! [`JobSpec::from_programs`] for tests and validation fixtures.
//!
//! ```
//! use sim_mpi::{run_job, JobSpec, Op, CollOp, SimConfig, NullSink};
//! use sim_platform::presets;
//!
//! // Two ranks: a ping and an allreduce.
//! let mut job = JobSpec::from_programs(
//!     "demo",
//!     vec![
//!         vec![
//!             Op::Compute { flops: 1e6, bytes: 0.0 },
//!             Op::Send { to: 1, bytes: 1024, tag: 0 },
//!             Op::Coll(CollOp::Allreduce { bytes: 8 }),
//!         ],
//!         vec![
//!             Op::Recv { from: 0, bytes: 1024, tag: 0 },
//!             Op::Coll(CollOp::Allreduce { bytes: 8 }),
//!         ],
//!     ],
//!     vec![],
//! );
//! let result = run_job(&mut job, &presets::vayu(), &SimConfig::default(), &mut NullSink).unwrap();
//! assert!(result.elapsed_secs() > 0.0);
//! ```

pub mod channels;
pub mod collectives;
pub mod engine;
pub mod op;
pub mod prof;
pub mod result;

pub use collectives::{ceil_log2, CollTopo};
pub use engine::{run_job, Background, SimConfig, SimError};
pub use op::{
    BlockProgram, CollOp, CyclicProgram, Group, JobMeta, JobSpec, Op, OpSource, Program, Rank,
    ReqId, SectionId, Tag,
};
pub use prof::{IoKind, MpiKind, NullSink, ProfEvent, ProfSink};
pub use result::{RankTotals, SimResult};

#[cfg(test)]
mod tests {
    use super::*;
    use sim_platform::presets;

    fn run(mut job: JobSpec, cluster: &sim_platform::ClusterSpec) -> SimResult {
        run_job(&mut job, cluster, &SimConfig::default(), &mut NullSink).unwrap()
    }

    fn job(programs: Vec<Vec<Op>>) -> JobSpec {
        JobSpec::from_programs("t", programs, vec!["s0"])
    }

    #[test]
    fn lone_compute_takes_roofline_time() {
        let v = presets::vayu();
        let r = run(
            job(vec![vec![Op::Compute {
                flops: 2.4905e9,
                bytes: 0.0,
            }]]),
            &v,
        );
        // X5570 @ 2.93 GHz * 0.85 flops/cycle = 2.4905e9 flops/s -> ~1 s.
        assert!(
            (r.elapsed_secs() - 1.0).abs() < 0.02,
            "{}",
            r.elapsed_secs()
        );
        assert!(r.ranks[0].comp.as_secs_f64() > 0.99);
        assert_eq!(r.ranks[0].comm, sim_des::SimDur::ZERO);
    }

    #[test]
    fn ping_pong_round_trip_on_two_nodes() {
        let v = presets::vayu();
        // Force two nodes by using 9 ranks; ranks 0 and 8 are on different
        // nodes. Only they exchange.
        let mut progs = vec![vec![]; 9];
        progs[0] = vec![
            Op::Send {
                to: 8,
                bytes: 8,
                tag: 1,
            },
            Op::Recv {
                from: 8,
                bytes: 8,
                tag: 2,
            },
        ];
        progs[8] = vec![
            Op::Recv {
                from: 0,
                bytes: 8,
                tag: 1,
            },
            Op::Send {
                to: 0,
                bytes: 8,
                tag: 2,
            },
        ];
        let r = run(job(progs), &v);
        let rtt = r.elapsed_secs() * 1e6;
        // Two one-way IB messages: ~4-8 us.
        assert!((3.0..12.0).contains(&rtt), "rtt {rtt} us");
    }

    #[test]
    fn eager_send_does_not_block_sender() {
        let v = presets::vayu();
        // Rank 0 sends then computes; rank 1 computes a long time then
        // receives. Sender must finish long before receiver.
        let r = run(
            job(vec![
                vec![Op::Send {
                    to: 1,
                    bytes: 64,
                    tag: 0,
                }],
                vec![
                    Op::Compute {
                        flops: 2.5e9,
                        bytes: 0.0,
                    },
                    Op::Recv {
                        from: 0,
                        bytes: 64,
                        tag: 0,
                    },
                ],
            ]),
            &v,
        );
        assert!(r.ranks[0].wall.as_secs_f64() < 0.01);
        assert!(r.ranks[1].wall.as_secs_f64() > 0.9);
    }

    #[test]
    fn rendezvous_adds_handshake_latency_not_sender_blocking() {
        let v = presets::vayu();
        let below = v.topology.intra.eager_threshold; // intra-node message
        let above = below + 1;
        let mk = |bytes: usize| {
            job(vec![
                vec![Op::Send {
                    to: 1,
                    bytes,
                    tag: 0,
                }],
                vec![Op::Recv {
                    from: 0,
                    bytes,
                    tag: 0,
                }],
            ])
        };
        let t_eager = run(mk(below), &v).elapsed_secs();
        let t_rndv = run(mk(above), &v).elapsed_secs();
        // The protocol switch costs roughly the handshake overhead…
        let delta = t_rndv - t_eager;
        assert!(
            delta > v.topology.intra.rendezvous_overhead * 0.9,
            "delta {delta}"
        );
        // …but the sender still proceeds immediately (pipelining preserved).
        let r = run(mk(above), &v);
        assert!(r.ranks[0].wall.as_secs_f64() < r.ranks[1].wall.as_secs_f64());
    }

    #[test]
    fn fifo_matching_per_channel() {
        let v = presets::vayu();
        // Two eager sends on the same channel; receiver posts two recvs.
        // FIFO means both match and the run completes.
        let r = run(
            job(vec![
                vec![
                    Op::Send {
                        to: 1,
                        bytes: 16,
                        tag: 5,
                    },
                    Op::Send {
                        to: 1,
                        bytes: 32,
                        tag: 5,
                    },
                ],
                vec![
                    Op::Recv {
                        from: 0,
                        bytes: 16,
                        tag: 5,
                    },
                    Op::Recv {
                        from: 0,
                        bytes: 32,
                        tag: 5,
                    },
                ],
            ]),
            &v,
        );
        assert!(r.elapsed_secs() > 0.0);
    }

    #[test]
    fn exchange_synchronizes_both_ranks() {
        let v = presets::vayu();
        let r = run(
            job(vec![
                vec![
                    Op::Compute {
                        flops: 2.5e9,
                        bytes: 0.0,
                    },
                    Op::Exchange {
                        partner: 1,
                        send_bytes: 1024,
                        recv_bytes: 1024,
                        tag: 0,
                    },
                ],
                vec![Op::Exchange {
                    partner: 0,
                    send_bytes: 1024,
                    recv_bytes: 1024,
                    tag: 0,
                }],
            ]),
            &v,
        );
        // Rank 1 waits ~1 s inside the exchange.
        assert!(r.ranks[1].comm.as_secs_f64() > 0.9);
        // Both finish at the same time.
        assert_eq!(r.ranks[0].wall, r.ranks[1].wall);
    }

    #[test]
    fn collective_releases_all_at_max_entry_plus_cost() {
        let v = presets::vayu();
        let mut progs = vec![vec![Op::Coll(CollOp::Barrier)]; 4];
        progs[2].insert(
            0,
            Op::Compute {
                flops: 2.5e9,
                bytes: 0.0,
            },
        );
        let r = run(job(progs), &v);
        // All ranks end together, just after the slow rank's compute.
        let walls: Vec<f64> = r.ranks.iter().map(|t| t.wall.as_secs_f64()).collect();
        assert!(walls.iter().all(|w| (*w - walls[0]).abs() < 1e-9));
        assert!(walls[0] > 0.99 && walls[0] < 1.1);
        // Fast ranks accumulated ~1 s of comm (waiting in the barrier).
        assert!(r.ranks[0].comm.as_secs_f64() > 0.9);
        assert!(r.ranks[2].comm.as_secs_f64() < 0.01);
    }

    #[test]
    fn deadlock_detected() {
        let v = presets::vayu();
        let mut j = JobSpec::from_programs(
            "deadlock",
            vec![
                vec![Op::Recv {
                    from: 1,
                    bytes: 8,
                    tag: 0,
                }],
                vec![Op::Recv {
                    from: 0,
                    bytes: 8,
                    tag: 0,
                }],
            ],
            vec![],
        );
        // Validation rejects it first…
        assert!(matches!(
            run_job(&mut j, &v, &SimConfig::default(), &mut NullSink),
            Err(SimError::Validation(_))
        ));
        // …and with validation off the engine reports the deadlock.
        let cfg = SimConfig {
            validate: false,
            ..Default::default()
        };
        assert!(matches!(
            run_job(&mut j, &v, &cfg, &mut NullSink),
            Err(SimError::Deadlock(_))
        ));
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let d = presets::dcc();
        // 16 ranks on DCC span two nodes; the vSwitch jitter fires on ~30%
        // of the inter-node allreduce rounds, so seeds are observable.
        let mk = || job(vec![vec![Op::Coll(CollOp::Allreduce { bytes: 4 }); 50]; 16]);
        let a = run(mk(), &d);
        let b = run(mk(), &d);
        assert_eq!(a.elapsed, b.elapsed);
        // Different seed => (almost surely) different jitter.
        let cfg = SimConfig {
            seed: 99,
            ..Default::default()
        };
        let c = run_job(&mut mk(), &d, &cfg, &mut NullSink).unwrap();
        assert_ne!(a.elapsed, c.elapsed);
    }

    #[test]
    fn dcc_allreduce_costs_more_than_vayu_across_nodes() {
        let mk = |np: usize| {
            job(vec![
                vec![Op::Coll(CollOp::Allreduce { bytes: 4 }); 100];
                np
            ])
        };
        // 16 ranks = 2 nodes on both platforms.
        let v = run(mk(16), &presets::vayu());
        let d = run(mk(16), &presets::dcc());
        assert!(
            d.elapsed_secs() > v.elapsed_secs() * 10.0,
            "DCC {} vs Vayu {}",
            d.elapsed_secs(),
            v.elapsed_secs()
        );
    }

    #[test]
    fn io_charged_to_io_ledger() {
        let v = presets::vayu();
        let r = run(
            job(vec![vec![Op::FileRead {
                bytes: 1_600_000_000,
            }]]),
            &v,
        );
        assert!((4.0..6.0).contains(&r.ranks[0].io.as_secs_f64()));
        assert_eq!(r.ranks[0].comm, sim_des::SimDur::ZERO);
    }

    #[test]
    fn section_markers_are_free() {
        let v = presets::vayu();
        let r = run(
            job(vec![vec![
                Op::SectionEnter(0),
                Op::Compute {
                    flops: 1e6,
                    bytes: 0.0,
                },
                Op::SectionExit(0),
            ]]),
            &v,
        );
        let t = r.ranks[0];
        assert_eq!(t.other(), sim_des::SimDur::ZERO);
    }

    #[test]
    fn nic_serializes_concurrent_inter_node_sends() {
        let v = presets::vayu();
        // 9 ranks: ranks 0..8 on node 0, rank 8 on node 1. All of node 0's
        // ranks send 4 KB to rank 8 "simultaneously" — the shared NIC must
        // serialize them, so elapsed >> one isolated transfer.
        let mut progs: Vec<Vec<Op>> = (0..8)
            .map(|_| {
                vec![Op::Send {
                    to: 8,
                    bytes: 8192,
                    tag: 0,
                }]
            })
            .collect();
        progs.push(
            (0..8)
                .map(|s| Op::Recv {
                    from: s,
                    bytes: 8192,
                    tag: 0,
                })
                .collect(),
        );
        let r = run(job(progs), &v);
        let wire = sim_net::wire_time(&v.topology.inter, 8192);
        assert!(
            r.elapsed_secs() > wire * 8.0,
            "8 serialized sends {} vs 8x wire {}",
            r.elapsed_secs(),
            wire * 8.0
        );
    }

    #[test]
    fn time_conservation_wall_equals_parts() {
        // comp + comm + io == wall on every rank for a workload with no idle.
        let d = presets::dcc();
        let progs = vec![
            vec![
                Op::Compute {
                    flops: 1e8,
                    bytes: 0.0,
                },
                Op::Exchange {
                    partner: 1,
                    send_bytes: 2048,
                    recv_bytes: 2048,
                    tag: 0,
                },
                Op::FileRead { bytes: 1_000_000 },
                Op::Coll(CollOp::Allreduce { bytes: 8 }),
            ],
            vec![
                Op::Exchange {
                    partner: 0,
                    send_bytes: 2048,
                    recv_bytes: 2048,
                    tag: 0,
                },
                Op::Coll(CollOp::Allreduce { bytes: 8 }),
            ],
        ];
        let r = run(job(progs), &d);
        for t in &r.ranks {
            assert_eq!(t.other(), sim_des::SimDur::ZERO, "{t:?}");
        }
    }
}

#[cfg(test)]
mod nonblocking_tests {
    use super::*;
    use sim_platform::presets;

    fn run(mut job: JobSpec, cluster: &sim_platform::ClusterSpec) -> SimResult {
        run_job(&mut job, cluster, &SimConfig::default(), &mut NullSink).unwrap()
    }

    fn two_node_progs() -> (usize, usize) {
        // Ranks 0 and 8 are on different Vayu nodes under block placement.
        (0, 8)
    }

    #[test]
    fn irecv_wait_equals_recv_when_no_overlap() {
        let v = presets::vayu();
        let (a, b) = two_node_progs();
        let mk = |nonblocking: bool| {
            let mut progs = vec![vec![]; 9];
            progs[a] = vec![Op::Send {
                to: b as u32,
                bytes: 4096,
                tag: 0,
            }];
            progs[b] = if nonblocking {
                vec![
                    Op::Irecv {
                        from: a as u32,
                        bytes: 4096,
                        tag: 0,
                        req: 1,
                    },
                    Op::Wait { req: 1 },
                ]
            } else {
                vec![Op::Recv {
                    from: a as u32,
                    bytes: 4096,
                    tag: 0,
                }]
            };
            JobSpec::from_programs("t", progs, vec![])
        };
        let blocking = run(mk(false), &v);
        let nonblocking = run(mk(true), &v);
        assert_eq!(blocking.elapsed, nonblocking.elapsed);
    }

    #[test]
    fn overlap_hides_communication() {
        // Receiver posts the irecv, computes for ~the transfer time, then
        // waits: the wait should be nearly free, unlike the blocking
        // version where compute and transfer serialize at the recv.
        let d = presets::dcc();
        let big = 512 * 1024; // ~2.7 ms on the DCC fabric
        let compute = Op::Compute {
            flops: 2e7,
            bytes: 0.0,
        }; // ~10 ms
        let mk = |overlap: bool| {
            let mut progs = vec![vec![]; 9];
            progs[0] = vec![Op::Send {
                to: 8,
                bytes: big,
                tag: 0,
            }];
            progs[8] = if overlap {
                vec![
                    Op::Irecv {
                        from: 0,
                        bytes: big,
                        tag: 0,
                        req: 7,
                    },
                    compute,
                    Op::Wait { req: 7 },
                ]
            } else {
                vec![
                    compute,
                    Op::Recv {
                        from: 0,
                        bytes: big,
                        tag: 0,
                    },
                ]
            };
            JobSpec::from_programs("t", progs, vec![])
        };
        let serial = run(mk(false), &d);
        let overlapped = run(mk(true), &d);
        assert!(
            overlapped.elapsed < serial.elapsed,
            "overlap {} !< serial {}",
            overlapped.elapsed_secs(),
            serial.elapsed_secs()
        );
        // The receiver's comm time shrinks to ~the receive occupancy.
        assert!(overlapped.ranks[8].comm.as_secs_f64() < serial.ranks[8].comm.as_secs_f64() * 0.8);
    }

    #[test]
    fn isend_wait_is_cheap() {
        let v = presets::vayu();
        let mut progs = vec![vec![]; 9];
        progs[0] = vec![
            Op::Isend {
                to: 8,
                bytes: 1024,
                tag: 0,
                req: 3,
            },
            Op::Compute {
                flops: 1e7,
                bytes: 0.0,
            },
            Op::Wait { req: 3 },
        ];
        progs[8] = vec![Op::Recv {
            from: 0,
            bytes: 1024,
            tag: 0,
        }];
        let job = JobSpec::from_programs("t", progs, vec![]);
        let r = run(job, &v);
        // Sender's comm is just the send occupancy; the wait added nothing.
        assert!(r.ranks[0].comm.as_secs_f64() < 10e-6, "{:?}", r.ranks[0]);
    }

    #[test]
    fn wait_before_arrival_blocks_until_message() {
        let v = presets::vayu();
        let mut progs = vec![vec![]; 9];
        progs[0] = vec![
            Op::Compute {
                flops: 2.5e9,
                bytes: 0.0,
            }, // ~1 s
            Op::Send {
                to: 8,
                bytes: 64,
                tag: 0,
            },
        ];
        progs[8] = vec![
            Op::Irecv {
                from: 0,
                bytes: 64,
                tag: 0,
                req: 1,
            },
            Op::Wait { req: 1 },
        ];
        let job = JobSpec::from_programs("t", progs, vec![]);
        let r = run(job, &v);
        assert!(r.ranks[8].comm.as_secs_f64() > 0.9, "{:?}", r.ranks[8]);
    }

    #[test]
    fn validate_catches_request_misuse() {
        let mut dangling = JobSpec::from_programs(
            "t",
            vec![
                vec![Op::Isend {
                    to: 1,
                    bytes: 8,
                    tag: 0,
                    req: 1,
                }],
                vec![Op::Recv {
                    from: 0,
                    bytes: 8,
                    tag: 0,
                }],
            ],
            vec![],
        );
        assert!(dangling.validate().unwrap_err().contains("never waited"));
        let mut unknown = JobSpec::from_programs("t", vec![vec![Op::Wait { req: 9 }]], vec![]);
        assert!(unknown.validate().unwrap_err().contains("unknown request"));
        let mut reused = JobSpec::from_programs(
            "t",
            vec![
                vec![
                    Op::Isend {
                        to: 1,
                        bytes: 8,
                        tag: 0,
                        req: 1,
                    },
                    Op::Isend {
                        to: 1,
                        bytes: 8,
                        tag: 1,
                        req: 1,
                    },
                    Op::Wait { req: 1 },
                    Op::Wait { req: 1 },
                ],
                vec![
                    Op::Recv {
                        from: 0,
                        bytes: 8,
                        tag: 0,
                    },
                    Op::Recv {
                        from: 0,
                        bytes: 8,
                        tag: 1,
                    },
                ],
            ],
            vec![],
        );
        assert!(reused.validate().unwrap_err().contains("reused"));
    }

    #[test]
    fn pre_posted_irecv_matches_before_blocking_recv() {
        // Rank 8 posts an irecv then a blocking recv on the same channel;
        // two messages arrive: FIFO means the irecv gets the first one.
        let v = presets::vayu();
        let mut progs = vec![vec![]; 9];
        progs[0] = vec![
            Op::Send {
                to: 8,
                bytes: 100,
                tag: 5,
            },
            Op::Send {
                to: 8,
                bytes: 200,
                tag: 5,
            },
        ];
        progs[8] = vec![
            Op::Irecv {
                from: 0,
                bytes: 100,
                tag: 5,
                req: 1,
            },
            Op::Recv {
                from: 0,
                bytes: 200,
                tag: 5,
            },
            Op::Wait { req: 1 },
        ];
        let job = JobSpec::from_programs("t", progs, vec![]);
        let r = run(job, &v);
        assert!(r.elapsed_secs() > 0.0);
    }
}

#[cfg(test)]
mod group_tests {
    use super::*;
    use sim_platform::presets;

    fn run(mut job: JobSpec, cluster: &sim_platform::ClusterSpec) -> SimResult {
        run_job(&mut job, cluster, &SimConfig::default(), &mut NullSink).unwrap()
    }

    #[test]
    fn group_membership_and_size() {
        let g = Group::Strided {
            first: 2,
            count: 3,
            stride: 4,
        };
        assert_eq!(g.members(16).collect::<Vec<_>>(), vec![2, 6, 10]);
        assert_eq!(g.size(16), 3);
        assert!(g.contains(6, 16));
        assert!(!g.contains(4, 16));
        assert!(!g.contains(14, 16));
        assert_eq!(Group::World.members(3).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn row_allreduce_only_involves_the_row() {
        // 16 ranks on one Vayu node... use 2 nodes: 16 ranks, rows of 4.
        let v = presets::vayu();
        let row0 = Group::Strided {
            first: 0,
            count: 4,
            stride: 1,
        };
        let mut progs: Vec<Vec<Op>> = vec![vec![]; 16];
        // Only row 0 does a group allreduce; rank 15 computes a long time.
        for p in progs.iter_mut().take(4) {
            *p = vec![Op::GroupColl {
                group: row0,
                op: CollOp::Allreduce { bytes: 8 },
            }];
        }
        progs[15] = vec![Op::Compute {
            flops: 2.5e9,
            bytes: 0.0,
        }];
        let job = JobSpec::from_programs("g", progs, vec![]);
        let r = run(job, &v);
        // Row 0 finishes in microseconds — it never waits for rank 15.
        for m in 0..4 {
            assert!(
                r.ranks[m].wall.as_secs_f64() < 1e-3,
                "rank {m}: {:?}",
                r.ranks[m]
            );
        }
        assert!(r.ranks[15].wall.as_secs_f64() > 0.9);
    }

    #[test]
    fn intra_node_group_is_cheaper_than_world() {
        // On DCC at 16 ranks (2 nodes), a consecutive 8-rank group sits on
        // one node: its allreduce avoids the GigE entirely.
        let d = presets::dcc();
        let node0 = Group::Strided {
            first: 0,
            count: 8,
            stride: 1,
        };
        let mk = |world: bool| {
            let progs: Vec<Vec<Op>> = (0..16)
                .map(|r| {
                    if world {
                        vec![Op::Coll(CollOp::Allreduce { bytes: 8 }); 50]
                    } else if r < 8 {
                        vec![
                            Op::GroupColl {
                                group: node0,
                                op: CollOp::Allreduce { bytes: 8 }
                            };
                            50
                        ]
                    } else {
                        vec![]
                    }
                })
                .collect();
            JobSpec::from_programs("g", progs, vec![])
        };
        let world = run(mk(true), &d).elapsed_secs();
        let group = run(mk(false), &d).elapsed_secs();
        assert!(
            group < world / 5.0,
            "intra-node group {group} vs world {world}"
        );
    }

    #[test]
    fn strided_column_group_spans_nodes() {
        // Column group with stride 8 on Vayu's 8-core nodes: every member
        // is on a different node, so the allreduce pays inter-node latency.
        let v = presets::vayu();
        let col = Group::Strided {
            first: 0,
            count: 4,
            stride: 8,
        };
        let consecutive = Group::Strided {
            first: 0,
            count: 4,
            stride: 1,
        };
        let mk = |g: Group, members: Vec<u32>| {
            let progs: Vec<Vec<Op>> = (0..32)
                .map(|r| {
                    if members.contains(&(r as u32)) {
                        vec![
                            Op::GroupColl {
                                group: g,
                                op: CollOp::Allreduce { bytes: 8 }
                            };
                            20
                        ]
                    } else {
                        vec![]
                    }
                })
                .collect();
            JobSpec::from_programs("g", progs, vec![])
        };
        let spread = run(mk(col, vec![0, 8, 16, 24]), &v).elapsed_secs();
        let packed = run(mk(consecutive, vec![0, 1, 2, 3]), &v).elapsed_secs();
        assert!(spread > packed * 2.0, "spread {spread} packed {packed}");
    }

    #[test]
    fn validate_rejects_group_misuse() {
        // Non-member issuing the group collective.
        let g = Group::Strided {
            first: 0,
            count: 2,
            stride: 1,
        };
        let mut bad = JobSpec::from_programs(
            "g",
            vec![
                vec![Op::GroupColl {
                    group: g,
                    op: CollOp::Barrier,
                }],
                vec![Op::GroupColl {
                    group: g,
                    op: CollOp::Barrier,
                }],
                vec![Op::GroupColl {
                    group: g,
                    op: CollOp::Barrier,
                }],
            ],
            vec![],
        );
        assert!(bad.validate().is_err());
        // Missing member.
        let mut missing = JobSpec::from_programs(
            "g",
            vec![
                vec![Op::GroupColl {
                    group: g,
                    op: CollOp::Barrier,
                }],
                vec![],
            ],
            vec![],
        );
        assert!(missing.validate().is_err());
        // Group extends past np.
        let oob = Group::Strided {
            first: 0,
            count: 5,
            stride: 1,
        };
        let mut past = JobSpec::from_programs(
            "g",
            vec![
                vec![Op::GroupColl {
                    group: oob,
                    op: CollOp::Barrier,
                }],
                vec![Op::GroupColl {
                    group: oob,
                    op: CollOp::Barrier,
                }],
            ],
            vec![],
        );
        assert!(past.validate().is_err());
        // A correct 2-member group passes.
        let mut ok = JobSpec::from_programs(
            "g",
            vec![
                vec![Op::GroupColl {
                    group: g,
                    op: CollOp::Barrier,
                }],
                vec![Op::GroupColl {
                    group: g,
                    op: CollOp::Barrier,
                }],
                vec![],
            ],
            vec![],
        );
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn overlapping_groups_interleave_correctly() {
        // Rows {0,1} and {2,3} plus a world barrier: sequences per
        // communicator are tracked independently.
        let r0 = Group::Strided {
            first: 0,
            count: 2,
            stride: 1,
        };
        let r1 = Group::Strided {
            first: 2,
            count: 2,
            stride: 1,
        };
        let progs: Vec<Vec<Op>> = (0..4u32)
            .map(|r| {
                let g = if r < 2 { r0 } else { r1 };
                vec![
                    Op::GroupColl {
                        group: g,
                        op: CollOp::Allreduce { bytes: 8 },
                    },
                    Op::Coll(CollOp::Barrier),
                    Op::GroupColl {
                        group: g,
                        op: CollOp::Allreduce { bytes: 8 },
                    },
                ]
            })
            .collect();
        let mut job = JobSpec::from_programs("g", progs, vec![]);
        job.validate().unwrap();
        let r = run(job, &presets::vayu());
        assert!(r.elapsed_secs() > 0.0);
    }
}

#[cfg(test)]
mod fuzz {
    //! Property fuzzing of the engine: random programs generated from a
    //! global action script (which makes them deadlock-free by
    //! construction — every rank's program order is a subsequence of one
    //! total order, so the globally-earliest pending pairwise action always
    //! has both participants available).

    use super::*;
    use sim_des::DetRng;
    use sim_platform::presets;

    #[derive(Debug, Clone)]
    enum Action {
        Compute {
            rank: u8,
            flops: u32,
        },
        Message {
            src: u8,
            dst: u8,
            bytes: u32,
            tag: u8,
        },
        ExchangePair {
            a: u8,
            b: u8,
            bytes: u32,
            tag: u8,
        },
        NonBlockingMessage {
            src: u8,
            dst: u8,
            bytes: u32,
            tag: u8,
        },
        Allreduce {
            bytes: u32,
        },
        Barrier,
    }

    /// Draw one random action; pairwise actions always reference two
    /// distinct ranks.
    fn gen_action(rng: &mut DetRng, np: u8) -> Action {
        let pair = |rng: &mut DetRng| {
            let a = rng.index(np as usize) as u8;
            let mut b = rng.index(np as usize) as u8;
            while b == a {
                b = rng.index(np as usize) as u8;
            }
            (a, b)
        };
        match rng.index(6) {
            0 => Action::Compute {
                rank: rng.index(np as usize) as u8,
                flops: 1 + rng.index(49_999_999) as u32,
            },
            1 => {
                let (src, dst) = pair(rng);
                Action::Message {
                    src,
                    dst,
                    bytes: 1 + rng.index(199_999) as u32,
                    tag: rng.index(4) as u8,
                }
            }
            2 => {
                let (a, b) = pair(rng);
                Action::ExchangePair {
                    a,
                    b,
                    bytes: 1 + rng.index(199_999) as u32,
                    tag: rng.index(4) as u8,
                }
            }
            3 => {
                let (src, dst) = pair(rng);
                Action::NonBlockingMessage {
                    src,
                    dst,
                    bytes: 1 + rng.index(199_999) as u32,
                    tag: 4 + rng.index(4) as u8,
                }
            }
            4 => Action::Allreduce {
                bytes: 1 + rng.index(99_999) as u32,
            },
            _ => Action::Barrier,
        }
    }

    fn compile(np: u8, script: &[Action]) -> JobSpec {
        let mut programs: Vec<Vec<Op>> = vec![Vec::new(); np as usize];
        let mut next_req: Vec<u32> = vec![0; np as usize];
        for a in script {
            match a {
                Action::Compute { rank, flops } => {
                    programs[*rank as usize].push(Op::Compute {
                        flops: *flops as f64,
                        bytes: 0.0,
                    });
                }
                Action::Message {
                    src,
                    dst,
                    bytes,
                    tag,
                } => {
                    programs[*src as usize].push(Op::Send {
                        to: *dst as Rank,
                        bytes: *bytes as usize,
                        tag: *tag as Tag,
                    });
                    programs[*dst as usize].push(Op::Recv {
                        from: *src as Rank,
                        bytes: *bytes as usize,
                        tag: *tag as Tag,
                    });
                }
                Action::ExchangePair { a, b, bytes, tag } => {
                    for (me, other) in [(a, b), (b, a)] {
                        programs[*me as usize].push(Op::Exchange {
                            partner: *other as Rank,
                            send_bytes: *bytes as usize,
                            recv_bytes: *bytes as usize,
                            tag: *tag as Tag,
                        });
                    }
                }
                Action::NonBlockingMessage {
                    src,
                    dst,
                    bytes,
                    tag,
                } => {
                    let req = next_req[*dst as usize];
                    next_req[*dst as usize] += 1;
                    programs[*dst as usize].push(Op::Irecv {
                        from: *src as Rank,
                        bytes: *bytes as usize,
                        tag: *tag as Tag,
                        req,
                    });
                    programs[*src as usize].push(Op::Send {
                        to: *dst as Rank,
                        bytes: *bytes as usize,
                        tag: *tag as Tag,
                    });
                    programs[*dst as usize].push(Op::Wait { req });
                }
                Action::Allreduce { bytes } => {
                    for p in programs.iter_mut() {
                        p.push(Op::Coll(CollOp::Allreduce {
                            bytes: *bytes as usize,
                        }));
                    }
                }
                Action::Barrier => {
                    for p in programs.iter_mut() {
                        p.push(Op::Coll(CollOp::Barrier));
                    }
                }
            }
        }
        JobSpec::from_programs("fuzz", programs, vec![])
    }

    /// Any script-generated program validates, runs to completion on
    /// every platform, is deterministic, and conserves per-rank time.
    #[test]
    fn random_programs_run_everywhere() {
        for case in 0..48u64 {
            let mut rng = DetRng::new(0xF022_0001, case);
            let np = 2 + rng.index(5) as u8;
            let len = 1 + rng.index(39);
            let script: Vec<Action> = (0..len).map(|_| gen_action(&mut rng, np)).collect();
            let seed = rng.next_u64();
            let mut job = compile(np, &script);
            let v = job.validate();
            assert!(v.is_ok(), "case {case}: {v:?}");
            for cluster in [presets::vayu(), presets::dcc(), presets::ec2()] {
                let cfg = SimConfig {
                    seed,
                    ..Default::default()
                };
                let a = run_job(&mut job, &cluster, &cfg, &mut NullSink).unwrap();
                let b = run_job(&mut job, &cluster, &cfg, &mut NullSink).unwrap();
                assert_eq!(a.elapsed, b.elapsed, "nondeterministic on {}", cluster.name);
                for (i, t) in a.ranks.iter().enumerate() {
                    assert_eq!(
                        t.other(),
                        sim_des::SimDur::ZERO,
                        "rank {} leaks time on {}: {:?}",
                        i,
                        cluster.name,
                        t
                    );
                    assert!(t.comp <= t.wall && t.comm <= t.wall);
                }
                // Elapsed equals the max rank wall.
                let max_wall = a.ranks.iter().map(|t| t.wall).max().unwrap();
                assert_eq!(a.elapsed, max_wall);
            }
        }
    }
}
