//! Simulation results: per-rank time ledgers and aggregates.

use sim_des::{SimDur, Summary};
use sim_platform::Placement;

/// Where one rank's wallclock went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankTotals {
    /// Rank's total wallclock (its final clock value).
    pub wall: SimDur,
    /// Time inside compute chunks.
    pub comp: SimDur,
    /// Time inside MPI calls (wire + wait, IPM semantics).
    pub comm: SimDur,
    /// Time inside file I/O.
    pub io: SimDur,
    /// Time lost to faults: stalls on crashed nodes (including retry
    /// backoff) and kill-to-relaunch gaps after fatal faults. Zero on
    /// fault-free runs.
    pub fault: SimDur,
}

impl RankTotals {
    /// Idle/untracked remainder (section markers are free; should be ~0).
    pub fn other(&self) -> SimDur {
        self.wall
            .saturating_sub(self.comp)
            .saturating_sub(self.comm)
            .saturating_sub(self.io)
            .saturating_sub(self.fault)
    }
}

/// Outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Workload name, shared by refcount with the job's [`crate::JobMeta`]
    /// (deref-coerces to `&str` wherever consumers want one).
    pub job: std::sync::Arc<str>,
    /// Platform name.
    pub cluster: &'static str,
    /// Job wallclock: the maximum rank clock at completion.
    pub elapsed: SimDur,
    /// Per-rank ledgers.
    pub ranks: Vec<RankTotals>,
    /// The placement the job ran with.
    pub placement: Placement,
    /// Total ops the engine executed (diagnostics). Includes ops
    /// re-executed after a restart, excludes ops fast-forwarded past while
    /// recovering to the last checkpoint.
    pub ops_executed: u64,
    /// Number of fatal faults the job survived by restarting.
    pub restarts: u64,
    /// Detected corruptions recovered by ABFT rollback (no relaunch).
    pub rollbacks: u64,
    /// Recoveries that spliced a spare node in (ULFM-style shrink).
    pub shrinks: u64,
    /// Silent corruptions caught at a verification or checkpoint cut.
    pub sdc_detected: u64,
    /// Silent corruptions that escaped every detector: severity below the
    /// threshold at a cut, or no cut covered them before the job ended.
    pub sdc_undetected: u64,
}

impl SimResult {
    /// Job wallclock in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }

    /// Mean fraction of wallclock spent in MPI, in percent — IPM's "%comm".
    pub fn comm_pct(&self) -> f64 {
        let wall: f64 = self.ranks.iter().map(|r| r.wall.as_secs_f64()).sum();
        let comm: f64 = self.ranks.iter().map(|r| r.comm.as_secs_f64()).sum();
        if wall <= 0.0 {
            0.0
        } else {
            100.0 * comm / wall
        }
    }

    /// Mean fraction of wallclock spent in file I/O, in percent.
    pub fn io_pct(&self) -> f64 {
        let wall: f64 = self.ranks.iter().map(|r| r.wall.as_secs_f64()).sum();
        let io: f64 = self.ranks.iter().map(|r| r.io.as_secs_f64()).sum();
        if wall <= 0.0 {
            0.0
        } else {
            100.0 * io / wall
        }
    }

    /// Total I/O seconds on the slowest-I/O rank (Table III's "I/O (s)").
    pub fn io_secs_max(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| r.io.as_secs_f64())
            .fold(0.0, f64::max)
    }

    /// Summary of per-rank *compute* time — its imbalance is IPM's "%imbal".
    pub fn comp_summary(&self) -> Summary {
        Summary::of(
            &self
                .ranks
                .iter()
                .map(|r| r.comp.as_secs_f64())
                .collect::<Vec<_>>(),
        )
        .expect("at least one rank")
    }

    /// Summary of per-rank communication time.
    pub fn comm_summary(&self) -> Summary {
        Summary::of(
            &self
                .ranks
                .iter()
                .map(|r| r.comm.as_secs_f64())
                .collect::<Vec<_>>(),
        )
        .expect("at least one rank")
    }

    /// Total compute seconds summed over ranks.
    pub fn comp_total_secs(&self) -> f64 {
        self.ranks.iter().map(|r| r.comp.as_secs_f64()).sum()
    }

    /// Total communication seconds summed over ranks.
    pub fn comm_total_secs(&self) -> f64 {
        self.ranks.iter().map(|r| r.comm.as_secs_f64()).sum()
    }

    /// Total fault/recovery seconds summed over ranks.
    pub fn fault_total_secs(&self) -> f64 {
        self.ranks.iter().map(|r| r.fault.as_secs_f64()).sum()
    }

    /// Mean fraction of wallclock lost to faults and restarts, in percent.
    pub fn fault_pct(&self) -> f64 {
        let wall: f64 = self.ranks.iter().map(|r| r.wall.as_secs_f64()).sum();
        let fault: f64 = self.ranks.iter().map(|r| r.fault.as_secs_f64()).sum();
        if wall <= 0.0 {
            0.0
        } else {
            100.0 * fault / wall
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals(wall: f64, comp: f64, comm: f64, io: f64) -> RankTotals {
        RankTotals {
            wall: SimDur::from_secs_f64(wall),
            comp: SimDur::from_secs_f64(comp),
            comm: SimDur::from_secs_f64(comm),
            io: SimDur::from_secs_f64(io),
            fault: SimDur::ZERO,
        }
    }

    fn result(ranks: Vec<RankTotals>) -> SimResult {
        let np = ranks.len();
        let node = sim_platform::NodeSpec::new(
            sim_platform::CpuSpec::xeon_x5570(false),
            sim_platform::HypervisorModel::bare_metal(),
            24.0,
        );
        SimResult {
            job: "t".into(),
            cluster: "vayu",
            elapsed: ranks.iter().map(|r| r.wall).max().unwrap(),
            placement: sim_platform::Placement::place(&node, 8, np, sim_platform::Strategy::Block)
                .unwrap(),
            ranks,
            ops_executed: 0,
            restarts: 0,
            rollbacks: 0,
            shrinks: 0,
            sdc_detected: 0,
            sdc_undetected: 0,
        }
    }

    #[test]
    fn comm_pct_is_mean_over_ranks() {
        let r = result(vec![
            totals(10.0, 8.0, 2.0, 0.0),
            totals(10.0, 4.0, 6.0, 0.0),
        ]);
        assert!((r.comm_pct() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn other_never_negative() {
        let t = totals(5.0, 3.0, 3.0, 3.0);
        assert_eq!(t.other(), SimDur::ZERO);
    }

    #[test]
    fn fault_time_is_accounted_not_other() {
        let mut t = totals(10.0, 4.0, 3.0, 1.0);
        t.fault = SimDur::from_secs_f64(2.0);
        assert_eq!(t.other(), SimDur::ZERO);
        let r = result(vec![t]);
        assert!((r.fault_total_secs() - 2.0).abs() < 1e-9);
        assert!((r.fault_pct() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn io_max_takes_worst_rank() {
        let r = result(vec![
            totals(10.0, 5.0, 0.0, 5.0),
            totals(10.0, 9.0, 0.0, 1.0),
        ]);
        assert!((r.io_secs_max() - 5.0).abs() < 1e-9);
    }
}
