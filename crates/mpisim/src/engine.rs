//! The rank scheduler: executes a [`JobSpec`] against a platform model.
//!
//! Each rank is a cursor over its op *source* plus a clock: the engine pulls
//! the next op on demand ([`crate::op::OpSource::next_op`]) instead of
//! indexing into a materialized slice, so a streamed job never holds its
//! full trace in memory. The driver repeatedly picks the minimum-clock
//! *ready* rank and executes one op. A rank that blocks (recv, exchange,
//! wait, collective) is completed by its peer's progress, never by
//! re-examining the op, so no op needs to be cached across a block.
//! Interactions (messages, collectives, exchanges) only ever move other
//! ranks' clocks forward, and point-to-point matching is FIFO per
//! `(source, dest, tag)` channel, so this greedy order is causally correct
//! and deterministic.
//!
//! Time accounting follows IPM's semantics: a rank's wait inside a blocking
//! call counts as communication time — IPM cannot tell wire time from wait
//! time either, and the paper's %comm numbers include both.

use crate::collectives::CollTopo;
use crate::op::{CollOp, Group, JobMeta, JobSpec, Op, OpSource, Rank, ReqId, SectionId, Tag};
use crate::prof::{IoKind, MpiKind, ProfEvent, ProfSink};
use crate::result::{RankTotals, SimResult};
use sim_des::{DetRng, EventQueue, SimDur, SimTime};
use sim_net::{cost, SerialResource};
use sim_platform::{ClusterSpec, Placement, PlacementError, RankRates, Strategy};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Errors a simulation can produce.
#[derive(Debug)]
pub enum SimError {
    /// The ranks could not be placed on the cluster.
    Placement(PlacementError),
    /// The job failed structural validation.
    Validation(String),
    /// All live ranks are blocked and nothing can make progress.
    Deadlock(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Placement(e) => write!(f, "placement failed: {e}"),
            SimError::Validation(e) => write!(f, "job validation failed: {e}"),
            SimError::Deadlock(e) => write!(f, "simulation deadlocked: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<PlacementError> for SimError {
    fn from(e: PlacementError) -> Self {
        SimError::Placement(e)
    }
}

/// Simulation configuration: where and how to run a job.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed for all noise models (jitter); two runs with the same seed
    /// are bit-identical.
    pub seed: u64,
    /// Placement strategy.
    pub strategy: Strategy,
    /// Validate the job's structure before running (cheap; on by default).
    pub validate: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC10D_51B1,
            strategy: Strategy::Block,
            validate: true,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Status {
    Ready,
    BlockedRecv {
        from: Rank,
        tag: Tag,
        bytes: usize,
        posted: SimTime,
    },
    BlockedExchange {
        posted: SimTime,
    },
    BlockedWait {
        req: ReqId,
        posted: SimTime,
    },
    BlockedColl {
        posted: SimTime,
    },
    Done,
}

struct RankState {
    clock: SimTime,
    /// Ops pulled from this rank's source so far (diagnostics only).
    issued: u64,
    status: Status,
    /// Outstanding non-blocking requests.
    requests: HashMap<ReqId, ReqState>,
    comp: SimDur,
    comm: SimDur,
    io: SimDur,
    /// Per-communicator collective sequence counters.
    coll_count: HashMap<Group, u64>,
    /// Monotone generation for lazy heap invalidation.
    gen: u64,
    rng: DetRng,
    /// End of this rank's most recent file operation (I/O concurrency).
    io_until: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct EagerMsg {
    arrival: SimTime,
    bytes: usize,
    /// Receive-side occupancy (seconds) computed from the route's fabric at
    /// send time.
    recv_occ: f64,
}

/// State of a non-blocking request on its owning rank.
#[derive(Debug, Clone, Copy)]
enum ReqState {
    /// Operation finished (or will finish) at `complete_at`.
    Done {
        complete_at: SimTime,
        bytes: u64,
        kind: MpiKind,
    },
    /// An `Irecv` still waiting for its message.
    RecvPending,
}

#[derive(Debug, Clone, Copy)]
struct ExchangeArrival {
    rank: Rank,
    entry: SimTime,
    send_bytes: usize,
}

struct CollState {
    op: CollOp,
    arrived: Vec<(Rank, SimTime)>,
}

type ChannelKey = (Rank, Rank, Tag);

/// Run `job` on `cluster`. Profile events stream into `sink`.
///
/// Takes `&mut` because op sources are cursors: they are rewound on entry
/// (so one job can be run repeatedly, per the paper's min-of-N methodology)
/// and consumed as the engine pulls ops on demand.
pub fn run_job(
    job: &mut JobSpec,
    cluster: &ClusterSpec,
    cfg: &SimConfig,
    sink: &mut dyn ProfSink,
) -> Result<SimResult, SimError> {
    if cfg.validate {
        job.validate().map_err(SimError::Validation)?;
    }
    let np = job.np();
    assert!(np > 0, "empty job");
    let placement = cluster.place(np, cfg.strategy)?;
    let rates = cluster.rank_rates(&placement);
    job.rewind();
    Engine::new(&job.meta, &mut job.sources, cluster, placement, rates, cfg).run(sink)
}

struct Engine<'a> {
    meta: &'a JobMeta,
    sources: &'a mut [OpSource],
    cluster: &'a ClusterSpec,
    placement: Placement,
    rates: Vec<RankRates>,
    /// Per-rank CPU slowdown for the software side of messaging (>= 1).
    cpu_factor: Vec<f64>,
    ranks: Vec<RankState>,
    ready: EventQueue<(usize, u64)>,
    /// In-flight messages, FIFO per channel.
    eager: HashMap<ChannelKey, VecDeque<EagerMsg>>,
    /// Posted-but-unmatched non-blocking receives, FIFO per channel.
    irecvs: HashMap<ChannelKey, VecDeque<(usize, ReqId, SimTime)>>,
    /// First-arrived halves of exchanges, FIFO per unordered pair + tag.
    exchanges: HashMap<(Rank, Rank, Tag), VecDeque<ExchangeArrival>>,
    /// Open collectives keyed by (communicator, per-communicator sequence).
    colls: HashMap<(Group, u64), CollState>,
    /// Per-node NIC egress resources.
    nics: Vec<SerialResource>,
    /// RNG for collective-level jitter.
    coll_rng: DetRng,
    done: usize,
    ops_executed: u64,
}

impl<'a> Engine<'a> {
    fn new(
        meta: &'a JobMeta,
        sources: &'a mut [OpSource],
        cluster: &'a ClusterSpec,
        placement: Placement,
        rates: Vec<RankRates>,
        cfg: &SimConfig,
    ) -> Self {
        let np = meta.np;
        let solo_rate = cluster.node.flops_rate(1);
        let cpu_factor = rates
            .iter()
            .map(|r| (solo_rate / r.flops_rate).max(1.0))
            .collect();
        let mut ready = EventQueue::new();
        let ranks = (0..np)
            .map(|r| {
                ready.push(SimTime::ZERO, (r, 0));
                RankState {
                    clock: SimTime::ZERO,
                    issued: 0,
                    status: Status::Ready,
                    requests: HashMap::new(),
                    comp: SimDur::ZERO,
                    comm: SimDur::ZERO,
                    io: SimDur::ZERO,
                    coll_count: HashMap::new(),
                    gen: 0,
                    rng: DetRng::new(cfg.seed, r as u64),
                    io_until: SimTime::ZERO,
                }
            })
            .collect();
        Engine {
            meta,
            sources,
            cluster,
            nics: vec![SerialResource::new(); placement.ranks_per_node.len()],
            placement,
            rates,
            cpu_factor,
            ranks,
            ready,
            eager: HashMap::new(),
            irecvs: HashMap::new(),
            exchanges: HashMap::new(),
            colls: HashMap::new(),
            coll_rng: DetRng::new(cfg.seed, np as u64 + 0x1000),
            done: 0,
            ops_executed: 0,
        }
    }

    fn run(mut self, sink: &mut dyn ProfSink) -> Result<SimResult, SimError> {
        let np = self.meta.np;
        loop {
            let Some((_, (r, gen))) = self.ready.pop() else {
                if self.done == np {
                    break;
                }
                return Err(SimError::Deadlock(self.deadlock_report()));
            };
            if self.ranks[r].gen != gen || self.ranks[r].status != Status::Ready {
                continue; // stale heap entry
            }
            self.step(r, sink);
        }
        let elapsed = self
            .ranks
            .iter()
            .map(|r| r.clock)
            .max()
            .unwrap_or(SimTime::ZERO);
        debug_assert!(
            self.eager.values().all(|q| q.is_empty()),
            "eager messages left unreceived"
        );
        let ranks = self
            .ranks
            .iter()
            .map(|r| RankTotals {
                wall: r.clock.since(SimTime::ZERO),
                comp: r.comp,
                comm: r.comm,
                io: r.io,
            })
            .collect();
        Ok(SimResult {
            job: self.meta.name.clone(),
            cluster: self.cluster.name,
            elapsed: elapsed.since(SimTime::ZERO),
            ranks,
            placement: self.placement,
            ops_executed: self.ops_executed,
        })
    }

    fn deadlock_report(&self) -> String {
        let mut blocked: Vec<String> = Vec::new();
        for (r, st) in self.ranks.iter().enumerate() {
            if st.status != Status::Done {
                blocked.push(format!(
                    "rank {r} after op {} in {:?}",
                    st.issued, st.status
                ));
                if blocked.len() >= 4 {
                    break;
                }
            }
        }
        blocked.join("; ")
    }

    /// Mark a rank ready at its (possibly new) clock.
    fn make_ready(&mut self, r: usize) {
        let st = &mut self.ranks[r];
        st.status = Status::Ready;
        st.gen += 1;
        self.ready.push(st.clock, (r, st.gen));
    }

    fn step(&mut self, r: usize, sink: &mut dyn ProfSink) {
        // Pull the next op on demand. A blocked rank is completed by its
        // peer's progress (never by re-reading the op), so the cursor can
        // advance as soon as the op is issued.
        let Some(op) = self.sources[r].next_op() else {
            self.ranks[r].status = Status::Done;
            self.done += 1;
            return;
        };
        self.ops_executed += 1;
        self.ranks[r].issued += 1;
        match op {
            Op::Compute { flops, bytes } => self.do_compute(r, flops, bytes, sink),
            Op::Send { to, bytes, tag } => self.do_send(r, to as usize, bytes, tag, sink),
            Op::Recv { from, bytes, tag } => self.do_recv(r, from as usize, bytes, tag, sink),
            Op::Isend {
                to,
                bytes,
                tag,
                req,
            } => self.do_isend(r, to as usize, bytes, tag, req, sink),
            Op::Irecv {
                from,
                bytes,
                tag,
                req,
            } => self.do_irecv(r, from as usize, bytes, tag, req),
            Op::Wait { req } => self.do_wait(r, req, sink),
            Op::Exchange {
                partner,
                send_bytes,
                recv_bytes,
                tag,
            } => self.do_exchange(r, partner as usize, send_bytes, recv_bytes, tag, sink),
            Op::Coll(c) => self.do_coll(r, Group::World, c, sink),
            Op::GroupColl { group, op } => self.do_coll(r, group, op, sink),
            Op::FileRead { bytes } => self.do_io(r, IoKind::Read, bytes, sink),
            Op::FileWrite { bytes } => self.do_io(r, IoKind::Write, bytes, sink),
            Op::SectionEnter(id) => self.do_section(r, id, true, sink),
            Op::SectionExit(id) => self.do_section(r, id, false, sink),
        }
    }

    fn do_compute(&mut self, r: usize, flops: f64, bytes: f64, sink: &mut dyn ProfSink) {
        let start = self.ranks[r].clock;
        let base = self.rates[r].compute_time(flops, bytes);
        let jitter = {
            let jp = self.rates[r].jitter;
            jp.sample(&mut self.ranks[r].rng)
        };
        let dur = SimDur::from_secs_f64(base + jitter);
        let st = &mut self.ranks[r];
        st.clock += dur;
        st.comp += dur;
        sink.on_event(
            r,
            ProfEvent::Compute {
                start,
                end: st.clock,
            },
        );
        self.make_ready(r);
    }

    fn do_section(&mut self, r: usize, id: SectionId, enter: bool, sink: &mut dyn ProfSink) {
        let t = self.ranks[r].clock;
        sink.on_event(
            r,
            if enter {
                ProfEvent::SectionEnter { id, t }
            } else {
                ProfEvent::SectionExit { id, t }
            },
        );
        self.make_ready(r);
    }

    fn do_io(&mut self, r: usize, kind: IoKind, bytes: u64, sink: &mut dyn ProfSink) {
        let start = self.ranks[r].clock;
        // Concurrency: ranks whose last I/O interval is still open at `start`
        // are sharing the filesystem servers with us.
        let concurrent = 1 + self
            .ranks
            .iter()
            .enumerate()
            .filter(|(i, st)| *i != r && st.io_until > start)
            .count();
        let secs = match kind {
            IoKind::Read => self.cluster.fs.read_time(bytes, concurrent),
            IoKind::Write => self.cluster.fs.write_time(bytes, concurrent),
        };
        let dur = SimDur::from_secs_f64(secs);
        let st = &mut self.ranks[r];
        st.clock += dur;
        st.io += dur;
        st.io_until = st.clock;
        sink.on_event(
            r,
            ProfEvent::Io {
                kind,
                bytes,
                start,
                end: st.clock,
            },
        );
        self.make_ready(r);
    }

    fn do_send(&mut self, s: usize, d: usize, bytes: usize, tag: Tag, sink: &mut dyn ProfSink) {
        let route = self
            .cluster
            .topology
            .route(self.rates[s].node, self.rates[d].node);
        let fabric = route.fabric;
        let start = self.ranks[s].clock;
        // All sends are non-blocking: the sender pays its CPU occupancy and
        // proceeds while the NIC drains the payload. Payloads over the eager
        // threshold pay the rendezvous handshake as extra delivery latency —
        // real MPI overlaps rendezvous transfers the same way once receive
        // buffers are pre-posted, which every workload in the study does.
        let occ = SimDur::from_secs_f64(cost::send_occupancy(fabric, bytes) * self.cpu_factor[s]);
        let depart = start + occ;
        let wire_end = if route.inter_node {
            let wire = SimDur::from_secs_f64(cost::wire_time(fabric, bytes));
            let (_, end) = self.nics[self.rates[s].node].acquire(depart, wire);
            end
        } else {
            depart + SimDur::from_secs_f64(cost::wire_time(fabric, bytes))
        };
        let rndv_extra = if bytes > fabric.eager_threshold {
            fabric.rendezvous_overhead
        } else {
            0.0
        };
        let jitter = fabric.jitter.sample(&mut self.ranks[s].rng);
        let arrival = wire_end
            + SimDur::from_secs_f64(fabric.latency + route.extra_latency + rndv_extra + jitter);
        let recv_occ = cost::recv_occupancy(fabric, bytes) * self.cpu_factor[d];
        let st = &mut self.ranks[s];
        st.clock = depart;
        st.comm += occ;
        sink.on_event(
            s,
            ProfEvent::Mpi {
                kind: MpiKind::Send,
                bytes: bytes as u64,
                start,
                end: depart,
            },
        );
        self.make_ready(s);
        self.deliver(
            s as Rank,
            d as Rank,
            tag,
            EagerMsg {
                arrival,
                bytes,
                recv_occ,
            },
            sink,
        );
    }

    fn deliver(&mut self, s: Rank, d: Rank, tag: Tag, msg: EagerMsg, sink: &mut dyn ProfSink) {
        let dr = d as usize;
        // Pre-posted non-blocking receives match first (they were posted
        // before the receiver could have blocked on the same channel).
        if let Some(q) = self.irecvs.get_mut(&(s, d, tag)) {
            if let Some((rank, req, posted)) = q.pop_front() {
                debug_assert_eq!(rank, dr);
                let complete_at = posted.max(msg.arrival) + SimDur::from_secs_f64(msg.recv_occ);
                self.fulfil_request(
                    rank,
                    req,
                    complete_at,
                    msg.bytes as u64,
                    MpiKind::Recv,
                    sink,
                );
                return;
            }
        }
        if let Status::BlockedRecv {
            from,
            tag: rtag,
            posted,
            ..
        } = self.ranks[dr].status
        {
            if from == s && rtag == tag {
                // Channel FIFO: the blocked recv must take the oldest queued
                // message; only complete directly if the queue is empty.
                let empty = self.eager.get(&(s, d, tag)).is_none_or(|q| q.is_empty());
                if empty {
                    self.complete_recv(dr, posted, msg, sink);
                    return;
                }
            }
        }
        self.eager.entry((s, d, tag)).or_default().push_back(msg);
    }

    fn complete_recv(&mut self, d: usize, posted: SimTime, msg: EagerMsg, sink: &mut dyn ProfSink) {
        let occ = msg.recv_occ;
        let end = posted.max(msg.arrival) + SimDur::from_secs_f64(occ);
        let st = &mut self.ranks[d];
        let wait = end.since(posted);
        st.clock = end;
        st.comm += wait;
        sink.on_event(
            d,
            ProfEvent::Mpi {
                kind: MpiKind::Recv,
                bytes: msg.bytes as u64,
                start: posted,
                end,
            },
        );
        self.make_ready(d);
    }

    fn do_recv(&mut self, d: usize, s: usize, bytes: usize, tag: Tag, sink: &mut dyn ProfSink) {
        let posted = self.ranks[d].clock;
        let key = (s as Rank, d as Rank, tag);
        if let Some(q) = self.eager.get_mut(&key) {
            if let Some(msg) = q.pop_front() {
                self.complete_recv(d, posted, msg, sink);
                return;
            }
        }
        self.ranks[d].status = Status::BlockedRecv {
            from: s as Rank,
            tag,
            bytes,
            posted,
        };
    }

    fn do_isend(
        &mut self,
        s: usize,
        d: usize,
        bytes: usize,
        tag: Tag,
        req: ReqId,
        sink: &mut dyn ProfSink,
    ) {
        // Wire behaviour is identical to a blocking send (sends are already
        // asynchronous); the request completes as soon as the sender's
        // buffer is reusable, i.e. immediately after the CPU occupancy.
        self.do_send(s, d, bytes, tag, sink);
        let complete_at = self.ranks[s].clock;
        let prev = self.ranks[s].requests.insert(
            req,
            ReqState::Done {
                complete_at,
                bytes: bytes as u64,
                kind: MpiKind::Send,
            },
        );
        debug_assert!(prev.is_none(), "request {req} reused before wait");
    }

    fn do_irecv(&mut self, d: usize, s: usize, _bytes: usize, tag: Tag, req: ReqId) {
        let posted = self.ranks[d].clock;
        let key = (s as Rank, d as Rank, tag);
        // A message may already be buffered.
        if let Some(msg) = self.eager.get_mut(&key).and_then(|q| q.pop_front()) {
            let complete_at = posted.max(msg.arrival) + SimDur::from_secs_f64(msg.recv_occ);
            let prev = self.ranks[d].requests.insert(
                req,
                ReqState::Done {
                    complete_at,
                    bytes: msg.bytes as u64,
                    kind: MpiKind::Recv,
                },
            );
            debug_assert!(prev.is_none(), "request {req} reused before wait");
        } else {
            self.irecvs
                .entry(key)
                .or_default()
                .push_back((d, req, posted));
            let prev = self.ranks[d].requests.insert(req, ReqState::RecvPending);
            debug_assert!(prev.is_none(), "request {req} reused before wait");
        }
        self.make_ready(d);
    }

    /// Mark a pending request complete; if its owner is blocked waiting on
    /// it, finish the wait.
    fn fulfil_request(
        &mut self,
        rank: usize,
        req: ReqId,
        complete_at: SimTime,
        bytes: u64,
        kind: MpiKind,
        sink: &mut dyn ProfSink,
    ) {
        if let Status::BlockedWait {
            req: waiting,
            posted,
        } = self.ranks[rank].status
        {
            if waiting == req {
                self.ranks[rank].requests.remove(&req);
                let end = posted.max(complete_at);
                let st = &mut self.ranks[rank];
                st.clock = end;
                st.comm += end.since(posted);
                sink.on_event(
                    rank,
                    ProfEvent::Mpi {
                        kind,
                        bytes,
                        start: posted,
                        end,
                    },
                );
                self.make_ready(rank);
                return;
            }
        }
        self.ranks[rank].requests.insert(
            req,
            ReqState::Done {
                complete_at,
                bytes,
                kind,
            },
        );
    }

    fn do_wait(&mut self, r: usize, req: ReqId, sink: &mut dyn ProfSink) {
        let now = self.ranks[r].clock;
        match self.ranks[r].requests.get(&req) {
            Some(ReqState::Done {
                complete_at,
                bytes,
                kind,
            }) => {
                let (complete_at, bytes, kind) = (*complete_at, *bytes, *kind);
                self.ranks[r].requests.remove(&req);
                let end = now.max(complete_at);
                let st = &mut self.ranks[r];
                st.clock = end;
                st.comm += end.since(now);
                sink.on_event(
                    r,
                    ProfEvent::Mpi {
                        kind,
                        bytes,
                        start: now,
                        end,
                    },
                );
                self.make_ready(r);
            }
            Some(ReqState::RecvPending) => {
                self.ranks[r].status = Status::BlockedWait { req, posted: now };
            }
            None => panic!("rank {r}: wait on unknown request {req}"),
        }
    }

    fn do_exchange(
        &mut self,
        r: usize,
        partner: usize,
        send_bytes: usize,
        recv_bytes: usize,
        tag: Tag,
        sink: &mut dyn ProfSink,
    ) {
        let entry = self.ranks[r].clock;
        let lo = (r.min(partner)) as Rank;
        let hi = (r.max(partner)) as Rank;
        let key = (lo, hi, tag);
        if let Some(other) = self.exchanges.get_mut(&key).and_then(|q| q.pop_front()) {
            // Both halves present: complete the exchange.
            let o = other.rank as usize;
            debug_assert_eq!(o, partner, "exchange partner mismatch");
            let route = self
                .cluster
                .topology
                .route(self.rates[r].node, self.rates[o].node);
            let fabric = route.fabric;
            let start = entry.max(other.entry);
            let occ_r = cost::send_occupancy(fabric, send_bytes) * self.cpu_factor[r];
            let occ_o = cost::send_occupancy(fabric, other.send_bytes) * self.cpu_factor[o];
            let (end_r_wire, end_o_wire) = if route.inter_node {
                let wr = SimDur::from_secs_f64(cost::wire_time(fabric, send_bytes));
                let wo = SimDur::from_secs_f64(cost::wire_time(fabric, other.send_bytes));
                let (_, er) =
                    self.nics[self.rates[r].node].acquire(start + SimDur::from_secs_f64(occ_r), wr);
                let (_, eo) =
                    self.nics[self.rates[o].node].acquire(start + SimDur::from_secs_f64(occ_o), wo);
                (er, eo)
            } else {
                (
                    start + SimDur::from_secs_f64(occ_r + cost::wire_time(fabric, send_bytes)),
                    start
                        + SimDur::from_secs_f64(occ_o + cost::wire_time(fabric, other.send_bytes)),
                )
            };
            let jitter = fabric.jitter.sample(&mut self.ranks[lo as usize].rng);
            let rndv = if send_bytes.max(other.send_bytes) > fabric.eager_threshold {
                fabric.rendezvous_overhead
            } else {
                0.0
            };
            let tail = SimDur::from_secs_f64(
                fabric.latency
                    + route.extra_latency
                    + jitter
                    + rndv
                    + cost::recv_occupancy(fabric, recv_bytes.max(other.send_bytes))
                        * self.cpu_factor[r].max(self.cpu_factor[o]),
            );
            let end = end_r_wire.max(end_o_wire) + tail;
            for (who, t_entry, b) in [
                (r, entry, send_bytes as u64),
                (o, other.entry, other.send_bytes as u64),
            ] {
                let st = &mut self.ranks[who];
                st.clock = end;
                st.comm += end.since(t_entry);
                sink.on_event(
                    who,
                    ProfEvent::Mpi {
                        kind: MpiKind::Sendrecv,
                        bytes: b,
                        start: t_entry,
                        end,
                    },
                );
                self.make_ready(who);
            }
        } else {
            self.exchanges
                .entry(key)
                .or_default()
                .push_back(ExchangeArrival {
                    rank: r as Rank,
                    entry,
                    send_bytes,
                });
            self.ranks[r].status = Status::BlockedExchange { posted: entry };
        }
    }

    fn do_coll(&mut self, r: usize, group: Group, op: CollOp, sink: &mut dyn ProfSink) {
        let np = self.meta.np;
        let members = group.size(np);
        if members <= 1 {
            // Degenerate single-rank collective: free.
            self.make_ready(r);
            return;
        }
        let entry = self.ranks[r].clock;
        let counter = self.ranks[r].coll_count.entry(group).or_insert(0);
        let seq = *counter;
        *counter += 1;
        let state = self.colls.entry((group, seq)).or_insert_with(|| CollState {
            op,
            arrived: Vec::with_capacity(members),
        });
        debug_assert_eq!(state.op, op, "collective sequence mismatch at #{seq}");
        state.arrived.push((r as Rank, entry));
        if state.arrived.len() < members {
            self.ranks[r].status = Status::BlockedColl { posted: entry };
            return;
        }
        // Last arrival: cost the collective and release everybody.
        let state = self.colls.remove(&(group, seq)).expect("collective state");
        let max_entry = state.arrived.iter().map(|(_, t)| *t).max().unwrap_or(entry);
        // Layout of the group's members: NIC sharers and node span.
        let mut per_node: HashMap<usize, usize> = HashMap::new();
        let mut cpu_factor = 1.0_f64;
        for m in group.members(np) {
            *per_node.entry(self.rates[m as usize].node).or_insert(0) += 1;
            cpu_factor = cpu_factor.max(self.cpu_factor[m as usize]);
        }
        let ppn = per_node.values().copied().max().unwrap_or(1);
        let topo = CollTopo {
            inter: &self.cluster.topology.inter,
            intra: &self.cluster.topology.intra,
            np: members,
            ppn,
            nodes_used: per_node.len(),
            cpu_factor,
        };
        let mut secs = topo.cost(op);
        for _ in 0..topo.inter_rounds(op) {
            secs += self
                .cluster
                .topology
                .inter
                .jitter
                .sample(&mut self.coll_rng);
        }
        let end = max_entry + SimDur::from_secs_f64(secs);
        let kind = match op {
            CollOp::Barrier => MpiKind::Barrier,
            CollOp::Bcast { .. } => MpiKind::Bcast,
            CollOp::Reduce { .. } => MpiKind::Reduce,
            CollOp::Allreduce { .. } => MpiKind::Allreduce,
            CollOp::Allgather { .. } => MpiKind::Allgather,
            CollOp::Alltoall { .. } => MpiKind::Alltoall,
            CollOp::Gather { .. } => MpiKind::Gather,
            CollOp::Scatter { .. } => MpiKind::Scatter,
        };
        let bytes = op.bytes_per_rank(members);
        for (who, t_entry) in state.arrived {
            let w = who as usize;
            let st = &mut self.ranks[w];
            st.clock = end;
            st.comm += end.since(t_entry);
            sink.on_event(
                w,
                ProfEvent::Mpi {
                    kind,
                    bytes,
                    start: t_entry,
                    end,
                },
            );
            self.make_ready(w);
        }
    }
}

#[cfg(test)]
mod engine_tests {
    //! White-box tests of engine mechanics not reachable from the public
    //! workload suites.

    use super::*;
    use crate::op::{CollOp, JobSpec, Op};
    use crate::prof::NullSink;
    use sim_platform::presets;

    fn job(programs: Vec<Vec<Op>>) -> JobSpec {
        JobSpec::from_programs("t", programs, vec![])
    }

    #[test]
    fn concurrent_reads_share_the_nfs_server() {
        // Two DCC ranks read 1 GB "at the same time": the shared NFS server
        // serves them at half rate each, so both take ~2x the solo time.
        let d = presets::dcc();
        let solo = run_job(
            &mut job(vec![vec![Op::FileRead { bytes: 1 << 30 }]]),
            &d,
            &SimConfig::default(),
            &mut NullSink,
        )
        .unwrap()
        .elapsed_secs();
        let both = run_job(
            &mut job(vec![
                vec![Op::FileRead { bytes: 1 << 30 }],
                vec![Op::FileRead { bytes: 1 << 30 }],
            ]),
            &d,
            &SimConfig::default(),
            &mut NullSink,
        )
        .unwrap()
        .elapsed_secs();
        assert!(
            (1.8..2.2).contains(&(both / solo)),
            "solo {solo} both {both}"
        );
    }

    #[test]
    fn lustre_absorbs_concurrent_readers() {
        let v = presets::vayu();
        let solo = run_job(
            &mut job(vec![vec![Op::FileRead { bytes: 1 << 30 }]]),
            &v,
            &SimConfig::default(),
            &mut NullSink,
        )
        .unwrap()
        .elapsed_secs();
        let both = run_job(
            &mut job(vec![
                vec![Op::FileRead { bytes: 1 << 30 }],
                vec![Op::FileRead { bytes: 1 << 30 }],
            ]),
            &v,
            &SimConfig::default(),
            &mut NullSink,
        )
        .unwrap()
        .elapsed_secs();
        assert!(
            both / solo < 1.2,
            "striped fs must absorb 2 readers: {both} vs {solo}"
        );
    }

    #[test]
    fn fat_tree_extra_hop_observable() {
        // Vayu leaf radix is 16: ranks on nodes 0 and 15 share a leaf;
        // nodes 0 and 16 cross the spine and pay two extra hops.
        let v = presets::vayu();
        let mk = |peer_node: usize| {
            let np = peer_node * 8 + 1;
            let mut progs = vec![vec![]; np];
            progs[0] = vec![Op::Send {
                to: (np - 1) as u32,
                bytes: 8,
                tag: 0,
            }];
            progs[np - 1] = vec![Op::Recv {
                from: 0,
                bytes: 8,
                tag: 0,
            }];
            job(progs)
        };
        let same_leaf = run_job(&mut mk(15), &v, &SimConfig::default(), &mut NullSink)
            .unwrap()
            .elapsed_secs();
        let cross_leaf = run_job(&mut mk(16), &v, &SimConfig::default(), &mut NullSink)
            .unwrap()
            .elapsed_secs();
        let delta = cross_leaf - same_leaf;
        assert!(
            (0.5e-6..0.8e-6).contains(&delta),
            "spine hops should add ~0.6us: {delta}"
        );
    }

    #[test]
    fn single_rank_jobs_run_all_op_kinds() {
        let v = presets::vayu();
        let r = run_job(
            &mut job(vec![vec![
                Op::Compute {
                    flops: 1e6,
                    bytes: 1e6,
                },
                Op::Coll(CollOp::Allreduce { bytes: 8 }),
                Op::Coll(CollOp::Alltoall { bytes_per_pair: 64 }),
                Op::FileRead { bytes: 1000 },
                Op::FileWrite { bytes: 1000 },
            ]]),
            &v,
            &SimConfig::default(),
            &mut NullSink,
        )
        .unwrap();
        // Single-rank collectives are free.
        assert_eq!(r.ranks[0].comm, sim_des::SimDur::ZERO);
        assert!(r.ranks[0].io.as_secs_f64() > 0.0);
    }

    #[test]
    fn zero_byte_messages_cost_only_overheads() {
        let v = presets::vayu();
        let mut progs = vec![vec![]; 9];
        progs[0] = vec![Op::Send {
            to: 8,
            bytes: 0,
            tag: 0,
        }];
        progs[8] = vec![Op::Recv {
            from: 0,
            bytes: 0,
            tag: 0,
        }];
        let r = run_job(&mut job(progs), &v, &SimConfig::default(), &mut NullSink).unwrap();
        let t = r.elapsed_secs();
        assert!(t > 0.0 && t < 10e-6, "zero-byte send took {t}");
    }

    #[test]
    fn empty_program_rank_finishes_at_time_zero() {
        let v = presets::vayu();
        let r = run_job(
            &mut job(vec![
                vec![Op::Compute {
                    flops: 1e6,
                    bytes: 0.0,
                }],
                vec![],
            ]),
            &v,
            &SimConfig::default(),
            &mut NullSink,
        )
        .unwrap();
        assert_eq!(r.ranks[1].wall, sim_des::SimDur::ZERO);
        assert!(r.ranks[0].wall.0 > 0);
    }
}
